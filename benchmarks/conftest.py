"""Shared fixtures and report plumbing for the paper-reproduction benches.

Every bench regenerates one table or figure of the paper at harness scale
(shape-preserving scaled workloads; see DESIGN.md §4) and writes its
rendered report under ``benchmarks/results/``.  Run with::

    pytest benchmarks/ --benchmark-only

Shape assertions live in the tests; the absolute numbers land in the
report files and in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Persist a rendered table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def report():
    return save_report


@pytest.fixture(scope="session")
def table1_grid():
    """Standard & adaptive runs of every kernel at 1/4/8 procs (traced).

    Session-scoped: Table 1, the §5.4 benches, and the speedup checks all
    read from this grid, so the expensive sweep runs once.
    """
    from repro.bench import BENCH_CALIBRATED, run_experiment

    grid = {}
    for app_name, factory in BENCH_CALIBRATED.items():
        for nprocs in (1, 4, 8):
            for adaptive in (False, True):
                grid[(app_name, nprocs, adaptive)] = run_experiment(
                    factory, nprocs=nprocs, adaptive=adaptive
                )
    return grid


@pytest.fixture(autouse=True)
def _benchmark_marker(benchmark):
    """Make every bench test count as a benchmark so the documented
    ``pytest benchmarks/ --benchmark-only`` invocation runs all of them
    (shape assertions included), not only the fixture-using reports."""
    yield
