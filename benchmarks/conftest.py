"""Shared fixtures and report plumbing for the paper-reproduction benches.

Every bench regenerates one table or figure of the paper at harness scale
(shape-preserving scaled workloads; see DESIGN.md §4) and writes its
rendered report under ``benchmarks/results/``.  Run with::

    pytest benchmarks/ --benchmark-only

Shape assertions live in the tests; the absolute numbers land in the
report files and in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Persist a rendered table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session")
def report():
    return save_report


@pytest.fixture(scope="session")
def table1_grid():
    """Standard & adaptive runs of every kernel at 1/4/8 procs (traced).

    Session-scoped: Table 1, the §5.4 benches, and the speedup checks all
    read from this grid, so the expensive sweep runs once.

    The grid runs through :func:`repro.api.sweep`: set
    ``REPRO_BENCH_JOBS`` to shard the 24 cells across worker processes
    (the merged results are bitwise-identical to serial execution), and
    ``REPRO_BENCH_NO_CACHE=1`` to bypass the content-addressed result
    cache under ``benchmarks/results/cache/``.
    """
    import os

    from repro.api import spec_from_preset, sweep
    from repro.apps import APP_NAMES
    from repro.exec import ResultCache

    cells = [
        (app_name, nprocs, adaptive)
        for app_name in APP_NAMES
        for nprocs in (1, 4, 8)
        for adaptive in (False, True)
    ]
    specs = [
        spec_from_preset("bench", app_name, nprocs, calibrated=True,
                         adaptive=adaptive,
                         label=f"{app_name}-{nprocs}{'-adpt' if adaptive else ''}")
        for app_name, nprocs, adaptive in cells
    ]
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = (
        None if os.environ.get("REPRO_BENCH_NO_CACHE")
        else ResultCache(root=pathlib.Path(__file__).parent / "results" / "cache")
    )
    outcome = sweep(specs, jobs=jobs, cache=cache)
    return dict(zip(cells, outcome.results))


@pytest.fixture(autouse=True)
def _benchmark_marker(benchmark):
    """Make every bench test count as a benchmark so the documented
    ``pytest benchmarks/ --benchmark-only`` invocation runs all of them
    (shape assertions included), not only the fixture-using reports."""
    yield
