"""§5.3 headline — "using a reasonable grace period (3 seconds), the
system supports rates of adapt events of several adaptations per minute
without significant performance degradation."

Sweeps the adaptation rate (alternating leave/join of the end pid at
increasing frequency) on a calibrated Jacobi and reports the overhead
relative to the event-free adaptive run.  Asserted shape: overhead grows
with the rate, and moderate rates stay under a modest fraction of the
runtime.
"""

import pytest

from repro.bench import format_table, make_jacobi
from repro.bench.harness import run_experiment
from repro.cluster import PeriodicAlternator

FACTORY = lambda: make_jacobi(500, 220)  # ~4.7 s at 8 procs, plenty of points


def rate_run(gap):
    def install(rt):
        PeriodicAlternator(
            rt, selector="end", gap=gap, grace=1e9, start_delay=0.2
        ).install()

    return run_experiment(FACTORY, nprocs=8, adaptive=True, events=install)


@pytest.fixture(scope="module")
def sweep():
    baseline = run_experiment(FACTORY, nprocs=8, adaptive=True)
    runs = {gap: rate_run(gap) for gap in (2.0, 1.0, 0.5, 0.25)}
    return baseline, runs


def test_rate_report(sweep, report):
    baseline, runs = sweep
    rows = [["(no events)", 0, 0.0, baseline.runtime_seconds, 0.0]]
    for gap, res in runs.items():
        rate_per_min = res.adaptations / res.runtime_seconds * 60.0
        overhead = (res.runtime_seconds - baseline.runtime_seconds) / baseline.runtime_seconds
        rows.append([f"gap {gap}s", res.adaptations, rate_per_min,
                     res.runtime_seconds, overhead * 100.0])
    report(
        "adaptation_rate",
        format_table(
            ["scenario", "adaptations", "rate (/min)", "runtime (s)", "overhead (%)"],
            rows,
            title="§5.3: runtime vs adaptation rate (Jacobi, 8 procs, normal leaves)",
        ),
    )


def test_overhead_grows_with_rate(sweep):
    baseline, runs = sweep
    times = [runs[gap].runtime_seconds for gap in (2.0, 1.0, 0.5, 0.25)]
    assert times[0] >= baseline.runtime_seconds * 0.999
    # monotone within jitter of where events land
    assert times[-1] > times[0]


def test_moderate_rates_tolerable(sweep):
    """Several adaptations per minute => small overhead.  Our scaled runs
    compress the paper's minutes into seconds, so 'several per minute'
    maps to the slowest sweep point; the claim is that its overhead is
    far from doubling the runtime."""
    baseline, runs = sweep
    res = runs[2.0]
    overhead = (res.runtime_seconds - baseline.runtime_seconds) / baseline.runtime_seconds
    assert res.adaptations >= 2
    assert overhead < 0.35


def test_every_leave_was_normal(sweep):
    _baseline, runs = sweep
    for res in runs.values():
        assert not res.migrations
        for rec in res.adapt_records:
            assert not rec.urgent_leaves
