"""§4.3 — fault tolerance by adaptation-point checkpointing.

The paper gives the design but no measurements; this bench characterizes
the cost model: a checkpoint = GC + master collecting the pages it lacks
+ a libckpt disk write of the whole image.  Assertions pin the structure:
cost grows with the shared-memory size, collection traffic concentrates
on the master's downlink, and slaves never write anything.
"""

import pytest

from repro.bench import format_table, make_jacobi
from repro.bench.harness import run_experiment


def ckpt_run(n, interval=0.15):
    return run_experiment(
        lambda: make_jacobi(n, 24),
        nprocs=4,
        adaptive=True,
        runtime_kwargs={"checkpoint_interval": interval},
    )


@pytest.fixture(scope="module")
def runs():
    return {n: ckpt_run(n) for n in (352, 704, 1408)}


def test_checkpoint_report(runs, report):
    rows = []
    for n, res in runs.items():
        mgr = res.runtime.ckpt_mgr
        ck = mgr.checkpoints[0]
        rows.append(
            [n, len(mgr.checkpoints), ck.total_pages, ck.image_bytes,
             ck.write_seconds]
        )
    report(
        "checkpoint",
        format_table(
            ["jacobi n", "checkpoints", "pages", "image bytes", "disk write (s)"],
            rows,
            title="§4.3: adaptation-point checkpointing cost (Jacobi, 4 procs)",
        ),
    )


def test_checkpoints_taken_periodically(runs):
    for n, res in runs.items():
        assert len(res.runtime.ckpt_mgr.checkpoints) >= 1


def test_cost_grows_with_problem_size(runs):
    writes = [res.runtime.ckpt_mgr.checkpoints[0].write_seconds for res in runs.values()]
    assert writes == sorted(writes)
    assert writes[-1] > 2 * writes[0]


def test_master_only_writes(runs):
    """Slaves have no process state at adaptation points, so only the
    master's image is written — the checkpoint holds everything."""
    res = runs[704]
    ck = res.runtime.ckpt_mgr.checkpoints[0]
    assert ck.total_pages == res.runtime.space.total_pages
    assert ck.image_bytes > ck.total_pages * 4096


def test_collection_concentrates_on_master_link(runs):
    """The page collection is an all-to-one into the master."""
    res = runs[1408]
    snap = res.traffic
    assert snap.per_link_bytes["down0"] > snap.per_link_bytes["down1"]
