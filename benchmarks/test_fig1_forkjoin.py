"""Figure 1 — the OpenMP fork/join execution model.

Demonstrates the pseudo-code of Figure 1 going through the full pipeline:
a ``#pragma OMP for`` construct is lowered by the compiler into a
Tmk_fork/Tmk_join phase whose partitioning code re-executes at every
fork, while sequential code runs only on the master.  The trace must show
the strict fork -> (parallel work on all pids) -> join sequence.
"""

from repro.bench import format_table
from repro.cluster import NodePool
from repro.config import SystemConfig
from repro.network import Switch
from repro.openmp import OmpProgram, ParallelFor, compile_openmp
from repro.simcore import Simulator
from repro.dsm import TmkRuntime

MAX = 12


def build_run(nprocs):
    sim = Simulator(trace=True)
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = TmkRuntime(sim, cfg, pool.add_nodes(nprocs), materialized=False)
    executed = []
    sequential = []

    def body(ctx, lo, hi, args):
        executed.append((ctx.pid, lo, hi))
        yield from ctx.compute(1e-4 * (hi - lo))

    def seq_block(ctx):
        sequential.append(ctx.pid)
        yield from ctx.compute(1e-4)

    def driver(omp):
        yield from omp.serial(seq_block)  # executed sequentially, master only
        yield from omp.parallel_for("loop")  # iterations divided among all
        yield from omp.serial(seq_block)

    prog = OmpProgram("figure1", [ParallelFor("loop", MAX, body)], driver)
    rt.run(compile_openmp(prog))
    return sim, executed, sequential


def test_figure1_model(report):
    sim, executed, sequential = build_run(nprocs=3)
    # sequential code: master only
    assert sequential == [0, 0]
    # the loop's iterations are divided among all processes
    covered = sorted(i for pid, lo, hi in executed for i in range(lo, hi))
    assert covered == list(range(MAX))
    assert sorted({pid for pid, _, _ in executed}) == [0, 1, 2]
    # trace shows fork before join
    forks = sim.tracer.select(category="tmk", subject="fork")
    joins = sim.tracer.select(category="tmk", subject="join")
    assert len(forks) == len(joins) == 1
    assert forks[0].time <= joins[0].time

    rows = [
        [pid, f"[{lo}, {hi})", hi - lo]
        for pid, lo, hi in sorted(executed)
    ]
    report(
        "fig1_forkjoin",
        format_table(
            ["pid", "iterations", "count"],
            rows,
            title=f"Figure 1: one parallel-for construct of {MAX} iterations on 3 processes",
        ),
    )


def test_partitioning_reexecuted_at_every_fork():
    """The degree of parallelism may change at every new fork (§2)."""
    for nprocs in (1, 2, 4):
        _, executed, _ = build_run(nprocs)
        per_pid = {}
        for pid, lo, hi in executed:
            per_pid[pid] = per_pid.get(pid, 0) + hi - lo
        assert len(per_pid) == nprocs
        assert sum(per_pid.values()) == MAX
