"""Figure 2 — the three adaptation timelines.

(a) a (normal) join: the request waits until the next adaptation point;
(b) a normal leave: the adaptation point is reached within the grace
    period, the process terminates there;
(c) an urgent leave: the grace period expires first, the process is
    migrated to another node and multiplexed there (idling the other
    t-2 nodes) until a normal leave at the next adaptation point.

Each scenario runs a calibrated Jacobi and the trace is rendered as a
timeline; assertions pin the event ordering the figure depicts.
"""

import pytest

from repro.bench import make_jacobi
from repro.bench.harness import run_experiment


def timeline(result):
    tracer = result.runtime.sim.tracer
    return [(r.time, r.subject, r.detail) for r in tracer.select(category="adapt")]


def render(events):
    return "\n".join(f"t={t:9.4f}s  {s:<18} {d}" for t, s, d in events)


@pytest.fixture(scope="module")
def scenarios():
    out = {}
    # (a) join: submit early; absorbed at an adaptation point after setup
    out["join"] = run_experiment(
        lambda: make_jacobi(350, 40),
        nprocs=3,
        extra_nodes=1,
        adaptive=True,
        trace=True,
        events=lambda rt: rt.sim.schedule(0.01, lambda: rt.submit_join(3)),
    )
    # (b) normal leave: long grace, next adaptation point well inside it
    out["normal_leave"] = run_experiment(
        lambda: make_jacobi(350, 40),
        nprocs=3,
        adaptive=True,
        trace=True,
        events=lambda rt: rt.sim.schedule(
            0.05, lambda: rt.submit_leave(2, grace=3.0)
        ),
    )
    # (c) urgent leave: adaptation points ~0.9 s apart, grace only 0.15 s
    out["urgent_leave"] = run_experiment(
        lambda: make_jacobi(1400, 8),
        nprocs=3,
        adaptive=True,
        trace=True,
        events=lambda rt: rt.sim.schedule(
            0.5, lambda: rt.submit_leave(2, grace=0.15)
        ),
    )
    return out


def test_fig2_report(scenarios, report):
    parts = []
    for name, res in scenarios.items():
        parts.append(f"--- Figure 2 timeline: {name} ---")
        parts.append(render(timeline(res)))
        parts.append("")
    report("fig2_timelines", "\n".join(parts))


def test_join_waits_for_adaptation_point(scenarios):
    events = dict()
    for t, s, d in timeline(scenarios["join"]):
        events.setdefault(s, t)
    assert events["join_request"] < events["join_ready"] < events["adaptation_end"]
    res = scenarios["join"]
    assert res.adaptations == 1
    assert res.adapt_records[0].nprocs_after == 4


def test_normal_leave_inside_grace(scenarios):
    res = scenarios["normal_leave"]
    names = [s for _, s, _ in timeline(res)]
    assert "leave_request" in names
    assert "adaptation_end" in names
    # the grace never expired: no migration, no freeze
    assert "grace_expired" not in names
    assert "migrated" not in names
    assert res.migrations == []
    req_t = next(t for t, s, _ in timeline(res) if s == "leave_request")
    done_t = next(t for t, s, _ in timeline(res) if s == "adaptation_end")
    assert done_t - req_t < 3.0  # within the grace period


def test_urgent_leave_migrates_then_dissolves(scenarios):
    res = scenarios["urgent_leave"]
    names = [s for _, s, _ in timeline(res)]
    for expected in ("leave_request", "grace_expired", "freeze", "migrated",
                     "unfreeze", "urgent_leave", "adaptation_begin",
                     "adaptation_end"):
        assert expected in names, f"missing {expected} in urgent timeline"
    order = [s for _, s, _ in timeline(res)]
    assert order.index("grace_expired") < order.index("migrated")
    assert order.index("migrated") < order.index("adaptation_begin")
    assert len(res.migrations) == 1
    # multiplexing window: between migration and the adaptation point
    t_mig = next(t for t, s, _ in timeline(res) if s == "migrated")
    t_adapt = next(t for t, s, _ in timeline(res) if s == "adaptation_begin")
    assert t_adapt > t_mig  # the multiplexed phase exists
    assert res.adapt_records[-1].urgent_leaves


def test_urgent_costlier_than_normal(scenarios):
    """Figure 2's point: urgent leaves add migration + multiplexing on top
    of the normal-leave processing."""
    normal = scenarios["normal_leave"]
    urgent = scenarios["urgent_leave"]
    mig = urgent.migrations[0]
    # the migration alone (spawn + image copy) dwarfs the normal leave's
    # adaptation-point processing
    normal_cost = normal.adapt_records[0].duration
    assert mig.total_seconds > 5 * normal_cost
