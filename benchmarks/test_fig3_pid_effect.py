"""Figure 3 — the effect of the leaving process id on data re-distribution.

The analytic model reproduces the figure's numbers exactly: with block
partitioning and the shift reassignment, a leave of end-process 7 moves
1/2 of the data space, a leave of middle-process 3 moves 2/7 ≈ 30 %.

The simulation side measures the actual post-leave re-distribution
traffic of a calibrated Jacobi (the pages re-fetched because their block
moved to a different node) for end vs middle leavers, plus the swap-last
strategy ablation §7 hints at.
"""

from fractions import Fraction

import pytest

from repro.bench import FIGURE3_MOVED, format_table, make_jacobi
from repro.bench.harness import run_experiment
from repro.core import CompactShift, SwapLast, moved_fraction


class TestAnalytic:
    def test_end_leave_moves_half(self):
        assert moved_fraction(8, [7]) == Fraction(1, 2)
        assert float(moved_fraction(8, [7])) == FIGURE3_MOVED["end"]

    def test_middle_leave_moves_two_sevenths(self):
        got = moved_fraction(8, [3])
        assert got == Fraction(2, 7)
        assert abs(float(got) - FIGURE3_MOVED["middle"]) < 0.02

    def test_middle_always_moves_less_than_end(self):
        for n in range(4, 17):
            assert moved_fraction(n, [n // 2]) < moved_fraction(n, [n - 1])

    def test_swap_last_ablation(self):
        """§7: 'better process id reassignment strategies offer room for
        improvement' — swap-last relocates the whole end block into the
        hole, moving *more* data for a middle leave than the shift."""
        shift = moved_fraction(8, [3], CompactShift())
        swap = moved_fraction(8, [3], SwapLast())
        assert swap > shift


def _leave_run(leaver_pid, strategy):
    def install(rt):
        node = rt.team.node_of(leaver_pid)
        rt.sim.schedule(0.05, lambda: rt.submit_leave(node, grace=60.0))

    return run_experiment(
        lambda: make_jacobi(704, 24),  # 8 rows/page: aligned blocks at 8 procs
        nprocs=8,
        adaptive=True,
        events=install,
        runtime_kwargs={"strategy": strategy},
    )


@pytest.fixture(scope="module")
def leave_runs():
    return {
        ("end", "shift"): _leave_run(7, CompactShift()),
        ("middle", "shift"): _leave_run(3, CompactShift()),
        ("middle", "swap"): _leave_run(3, SwapLast()),
    }


def _redistribution_bytes(res):
    """(whole-run traffic, adaptation-window traffic, max link bytes).

    The three scenarios run the identical program and leave at the same
    time; whole-run traffic differences therefore isolate the lazy
    re-distribution that follows the re-partitioning."""
    rec = res.adapt_records[0]
    return res.traffic.bytes, rec.traffic_bytes, rec.max_link_bytes


def test_fig3_report(leave_runs, report):
    rows = []
    for (leaver, strategy), res in leave_runs.items():
        total, adapt_traffic, max_link = _redistribution_bytes(res)
        analytic = {
            ("end", "shift"): float(moved_fraction(8, [7], CompactShift())),
            ("middle", "shift"): float(moved_fraction(8, [3], CompactShift())),
            ("middle", "swap"): float(moved_fraction(8, [3], SwapLast())),
        }[(leaver, strategy)]
        rows.append(
            [leaver, strategy, f"{analytic:.3f}", res.adaptations,
             total, adapt_traffic, max_link, f"{res.runtime_seconds:.3f}"]
        )
    report(
        "fig3_pid_effect",
        format_table(
            ["leaver", "strategy", "analytic moved frac", "adapts",
             "run traffic(B)", "adapt traffic(B)", "max link(B)", "runtime(s)"],
            rows,
            title="Figure 3: leaving-pid effect on data re-distribution (Jacobi, 8->7)",
        ),
    )


def test_all_leaves_complete_correctly(leave_runs):
    for key, res in leave_runs.items():
        assert res.adaptations == 1, key
        assert res.adapt_records[0].nprocs_after == 7, key


def test_end_leave_redistributes_more_than_middle(leave_runs):
    """Figure 3's headline: the end leave moves up to 50% of the data
    space, the middle leave only ~30% — identical programs, so whole-run
    traffic isolates the difference."""
    end_total, _, _ = _redistribution_bytes(leave_runs[("end", "shift")])
    mid_total, _, _ = _redistribution_bytes(leave_runs[("middle", "shift")])
    assert end_total > mid_total
