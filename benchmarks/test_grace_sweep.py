"""§3 design knob — the grace period and the normal/urgent crossover.

"If the computation can reach the next adaptation point within a
specifiable time limit, termed the grace period, we let the leave events
take effect there ... [otherwise] the process is migrated."

Sweeping the grace period on a workload with ~0.5 s between adaptation
points exposes the crossover exactly where the paper places it: below the
inter-point gap, leaves go urgent (spawn + image copy + multiplexing);
above it, they are normal and an order of magnitude cheaper.  The owner,
meanwhile, gets the machine back *sooner* with a short grace — the trade
the grace period tunes.
"""

import pytest

from repro.bench import format_table, make_jacobi
from repro.bench.harness import run_experiment

FACTORY = lambda: make_jacobi(1000, 14)  # ~1.3 s between adaptation points
#: spawn (0.6-0.8 s) + ~1.5 s image copy: what an urgent leave costs
MIGRATION_SECONDS = 2.2
GRACES = (0.05, 0.2, 0.6, 1.5, 3.0)


def grace_run(grace):
    req = {}

    def install(rt):
        rt.sim.schedule(
            0.7, lambda: req.setdefault("r", rt.submit_leave(2, grace=grace))
        )

    res = run_experiment(
        FACTORY, nprocs=3, adaptive=True, events=install
    )
    r = req["r"]
    freed_at = r.migrated_at if r.was_urgent else r.completed_at
    return {
        "res": res,
        "urgent": r.was_urgent,
        "node_freed_after": freed_at - r.submitted_at,
        "leave_completed_after": r.completed_at - r.submitted_at,
    }


@pytest.fixture(scope="module")
def sweep():
    return {g: grace_run(g) for g in GRACES}


def test_grace_report(sweep, report):
    rows = []
    for grace, out in sweep.items():
        rows.append([
            grace,
            "urgent (migrated)" if out["urgent"] else "normal",
            out["node_freed_after"],
            out["leave_completed_after"],
            out["res"].runtime_seconds,
        ])
    report(
        "grace_sweep",
        format_table(
            ["grace (s)", "leave kind", "node freed after (s)",
             "team shrunk after (s)", "runtime (s)"],
            rows,
            title="§3: grace period vs normal/urgent crossover "
                  "(Jacobi 1000, ~1.3 s adaptation-point spacing)",
        ),
    )


def test_crossover_at_adaptation_point_spacing(sweep):
    """Grace below the inter-point gap (~1.3 s here) => urgent;
    above => normal."""
    assert sweep[0.05]["urgent"]
    assert sweep[0.2]["urgent"]
    assert sweep[0.6]["urgent"]
    assert not sweep[1.5]["urgent"]
    assert not sweep[3.0]["urgent"]


def test_normal_leaves_make_the_run_faster(sweep):
    """Urgent leaves pay migration + multiplexing; a sufficient grace
    avoids all of it."""
    urgent_runtime = sweep[0.05]["res"].runtime_seconds
    normal_runtime = sweep[3.0]["res"].runtime_seconds
    assert normal_runtime < urgent_runtime


def test_urgency_is_bounded_by_migration_not_the_program(sweep):
    """An urgent leave frees the node after grace + spawn + image copy,
    regardless of the program; a normal leave frees it at the next
    adaptation point.  With points ~1.3 s apart — i.e. faster than a
    migration — the normal leave wins on *both* metrics, which is exactly
    why the paper prefers it and treats migration as the backup
    (§5.3: "processing of the joins and normal leaves is a few seconds
    faster than the direct cost of migration")."""
    for grace in (0.05, 0.2):
        out = sweep[grace]
        assert out["node_freed_after"] == pytest.approx(
            grace + MIGRATION_SECONDS, rel=0.25
        )
    # urgency would only pay off if adaptation points were rarer than a
    # migration; here they are not, so the normal leave frees the node
    # sooner as well
    assert sweep[3.0]["node_freed_after"] < sweep[0.05]["node_freed_after"]


def test_reasonable_grace_always_normal(sweep):
    """The paper's 'reasonable grace period (3 seconds)' guarantees normal
    leaves for these kernels (§5.3)."""
    out = sweep[3.0]
    assert not out["urgent"]
    assert not out["res"].migrations
