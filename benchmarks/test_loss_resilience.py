"""Extension — UDP loss resilience.

The testbed spoke UDP (§5.1); real deployments lose packets.  This bench
sweeps a seeded data-plane loss rate on a calibrated kernel and verifies
the protocol's behaviour is *graceful*: runtime grows with the loss rate
(retransmission latency), traffic grows (duplicates), correctness never
wavers — and the lossless run is byte-identical to the no-loss-model run
(the reliability layer is pay-for-use).
"""

import pytest

from repro.bench import format_table, make_gauss
from repro.bench.harness import run_experiment
from repro.config import NetworkParams, SystemConfig

RATES = (0.0, 0.02, 0.05, 0.10)


def lossy_run(rate):
    cfg = SystemConfig(network=NetworkParams(loss_rate=rate))
    return run_experiment(lambda: make_gauss(256), nprocs=4, cfg=cfg)


@pytest.fixture(scope="module")
def sweep():
    return {rate: lossy_run(rate) for rate in RATES}


def test_loss_report(sweep, report):
    rows = []
    for rate, res in sweep.items():
        dropped = res.runtime.switch.loss.dropped if res.runtime.switch.loss else 0
        rows.append([
            f"{rate:.0%}", res.runtime_seconds, res.messages, dropped,
        ])
    report(
        "loss_resilience",
        format_table(
            ["loss rate", "runtime (s)", "messages", "dropped"],
            rows,
            title="Extension: data-plane packet loss vs runtime (Gauss 256, 4 procs)",
        ),
    )


def test_runtime_degrades_gracefully(sweep):
    times = [sweep[r].runtime_seconds for r in RATES]
    assert times == sorted(times)
    # even 10% loss costs well under a 2x slowdown
    assert times[-1] < 2.0 * times[0]


def test_duplicates_add_messages(sweep):
    assert sweep[0.10].messages > sweep[0.0].messages


def test_drop_counters_track_rate(sweep):
    d5 = sweep[0.05].runtime.switch.loss.dropped
    d10 = sweep[0.10].runtime.switch.loss.dropped
    assert 0 < d5 < d10


def test_reliability_layer_pay_for_use(sweep):
    """rate=0 must be identical to a config with no loss model at all."""
    plain = run_experiment(lambda: make_gauss(256), nprocs=4)
    zero = sweep[0.0]
    assert zero.runtime_seconds == pytest.approx(plain.runtime_seconds, rel=1e-12)
    assert zero.messages == plain.messages
    assert zero.traffic.bytes == plain.traffic.bytes
