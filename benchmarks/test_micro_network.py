"""§5.1 micro-benchmarks — the calibration anchors.

The simulated network/DSM must land on the testbed measurements:
1-byte round trip 126 µs, lock acquisition 178–272 µs, diff fetch
313–1 544 µs (by size), full page transfer 1 308 µs.
"""

import pytest

from repro.bench import MICRO, format_table
from repro.cluster import NodePool
from repro.config import SystemConfig
from repro.dsm import Protocol, SharedArray, TmkProgram, TmkRuntime
from repro.network import Message, Switch
from repro.simcore import Simulator


def fresh(nprocs=2):
    sim = Simulator()
    cfg = SystemConfig()
    switch = Switch(sim, cfg.network)
    pool = NodePool(sim, switch)
    rt = TmkRuntime(sim, cfg, pool.add_nodes(nprocs), materialized=True)
    return sim, rt


def measure_rtt():
    sim = Simulator()
    switch = Switch(sim)
    nics = [switch.attach(i) for i in range(2)]
    out = {}

    def client():
        t0 = sim.now
        yield nics[0].request(Message("ping", src=0, dst=1, size_bytes=1))
        out["rtt"] = sim.now - t0

    def server():
        msg = yield nics[1].inbox.recv()
        nics[1].send(msg.reply("pong", size_bytes=1))

    sim.process(client())
    sim.process(server())
    sim.run()
    return out["rtt"]


def measure_page_and_diffs():
    """One remote page fetch; then diff fetches of two sizes."""
    sim, rt = fresh(2)
    seg = rt.malloc("x", shape=(2, 512), dtype="float64")  # 2 pages
    arr = SharedArray(seg)
    out = {}

    def writer(ctx, pid, nprocs, args):
        if pid == 0:
            yield from ctx.access(arr.seg, writes=arr.full())
            arr.view(ctx)[:] = 1.0

    def page_fetch(ctx, pid, nprocs, args):
        if pid == 1:
            t0 = ctx.sim.now
            yield from ctx.access(arr.seg, reads=arr.rows(0, 1))
            out["page"] = ctx.sim.now - t0

    def small_write(ctx, pid, nprocs, args):
        if pid == 0:
            yield from ctx.access(arr.seg, writes=[(0, 8)])
            arr.view(ctx)[0, 0] = 2.0

    def small_diff(ctx, pid, nprocs, args):
        if pid == 1:
            t0 = ctx.sim.now
            yield from ctx.access(arr.seg, reads=arr.rows(0, 1))
            out["diff_small"] = ctx.sim.now - t0

    def big_write(ctx, pid, nprocs, args):
        if pid == 0:
            yield from ctx.access(arr.seg, writes=arr.rows(0, 1))
            # every byte of the page must change for a full-page diff
            import numpy as np

            arr.view(ctx)[0] = np.random.default_rng(3).random(512) + 5.0

    def big_diff(ctx, pid, nprocs, args):
        if pid == 1:
            t0 = ctx.sim.now
            yield from ctx.access(arr.seg, reads=arr.rows(0, 1))
            out["diff_full"] = ctx.sim.now - t0

    def driver(api):
        for phase in ("w", "pf", "sw", "sd", "bw", "bd"):
            yield from api.fork_join(phase)

    rt.run(
        TmkProgram(
            {
                "w": writer, "pf": page_fetch, "sw": small_write,
                "sd": small_diff, "bw": big_write, "bd": big_diff,
            },
            driver,
            "micro",
        )
    )
    return out


def measure_lock():
    sim, rt = fresh(2)
    out = {}

    def region(ctx, pid, nprocs, args):
        if pid == 1:
            t0 = ctx.sim.now
            yield from ctx.lock(1)
            out["lock"] = ctx.sim.now - t0
            ctx.unlock(1)

    def driver(api):
        yield from api.fork_join("r")

    rt.run(TmkProgram({"r": region}, driver, "lock-micro"))
    return out["lock"]


@pytest.fixture(scope="module")
def micro():
    vals = measure_page_and_diffs()
    vals["rtt"] = measure_rtt()
    vals["lock"] = measure_lock()
    return vals


def test_micro_report(micro, report):
    rows = [
        ["1-byte round trip", micro["rtt"] * 1e6, MICRO.rtt_1byte * 1e6],
        ["lock acquisition", micro["lock"] * 1e6,
         f"{MICRO.lock_min*1e6:.0f}-{MICRO.lock_max*1e6:.0f}"],
        ["small diff fetch", micro["diff_small"] * 1e6, MICRO.diff_min * 1e6],
        ["full-page diff fetch", micro["diff_full"] * 1e6, MICRO.diff_max * 1e6],
        ["page transfer", micro["page"] * 1e6, MICRO.page_transfer * 1e6],
    ]
    report(
        "micro_network",
        format_table(
            ["operation", "simulated (us)", "paper (us)"],
            rows,
            title="Micro-benchmarks (§5.1)",
        ),
    )


def test_rtt(micro):
    assert micro["rtt"] == pytest.approx(MICRO.rtt_1byte, rel=0.01)


def test_page_transfer(micro):
    assert micro["page"] == pytest.approx(MICRO.page_transfer, rel=0.02)


def test_lock_in_published_window(micro):
    assert MICRO.lock_min * 0.95 <= micro["lock"] <= MICRO.lock_max * 1.05


def test_diff_range(micro):
    assert micro["diff_small"] == pytest.approx(MICRO.diff_min, rel=0.15)
    assert micro["diff_full"] == pytest.approx(MICRO.diff_max, rel=0.15)
    assert micro["diff_small"] < micro["diff_full"]
