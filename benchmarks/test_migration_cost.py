"""§5.3 — the cost of adaptation by migration alone.

The paper's what-if: if every leave were an urgent leave, its direct cost
is (i) creating the process on the new host (0.6–0.8 s) plus (ii) moving
the process image at ≈ 8.1 MB/s: Jacobi ≈ 6.7 s, 3D-FFT ≈ 6.13 s,
Gauss ≈ 6.9 s, NBF ≈ 7.66 s.

The model check uses the paper-size kernels (no simulation needed for the
direct cost: image = mapped shared pages + runtime overhead); an actual
simulated urgent leave at harness scale confirms the components add up
and that migration dwarfs a normal leave.
"""

import pytest

from repro.apps import PAPER
from repro.bench import MICRO, MIGRATION_COST, format_table, make_jacobi
from repro.bench.harness import run_experiment
from repro.config import SystemConfig


def paper_scale_migration_seconds(app_name: str) -> tuple:
    """(min, max) direct migration cost for the paper-size kernel."""
    cfg = SystemConfig()
    wl = PAPER[app_name].make()
    # a long-running process has mapped essentially the whole shared space
    import repro.dsm as dsm
    from repro.simcore import Simulator
    from repro.network import Switch
    from repro.cluster import NodePool

    sim = Simulator()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = dsm.TmkRuntime(sim, cfg, pool.add_nodes(1), materialized=False)
    wl.allocate(rt)
    image = (
        rt.space.total_pages * cfg.dsm.page_size
        + cfg.migration.image_overhead_bytes
    )
    copy = cfg.migration.copy_time(image)
    return (
        cfg.migration.spawn_time_min + copy,
        cfg.migration.spawn_time_max + copy,
    )


def test_migration_cost_report(report):
    rows = []
    for app in ("jacobi", "fft3d", "gauss", "nbf"):
        lo, hi = paper_scale_migration_seconds(app)
        rows.append([app, lo, hi, MIGRATION_COST[app]])
    report(
        "migration_cost",
        format_table(
            ["app", "model min (s)", "model max (s)", "paper (s)"],
            rows,
            title="§5.3: direct cost of migration (spawn + image at 8.1 MB/s), paper sizes",
        ),
    )


@pytest.mark.parametrize("app", ["jacobi", "fft3d", "gauss", "nbf"])
def test_paper_scale_migration_in_range(app):
    """The model's migration cost brackets the published number within the
    uncertainty of which arrays the 1999 codes kept in shared memory."""
    lo, hi = paper_scale_migration_seconds(app)
    published = MIGRATION_COST[app]
    assert lo * 0.4 <= published <= hi * 2.6, (
        f"{app}: model range [{lo:.2f}, {hi:.2f}] vs paper {published}"
    )


def test_simulated_urgent_leave_components():
    """An actual urgent leave decomposes exactly as §5.3 describes."""
    res = run_experiment(
        lambda: make_jacobi(1400, 8),
        nprocs=3,
        adaptive=True,
        events=lambda rt: rt.sim.schedule(0.5, lambda: rt.submit_leave(2, grace=0.15)),
    )
    assert len(res.migrations) == 1
    mig = res.migrations[0]
    assert MICRO.spawn_min <= mig.spawn_seconds <= MICRO.spawn_max
    assert mig.copy_seconds == pytest.approx(
        mig.image_bytes / MICRO.migration_rate, rel=0.01
    )


def test_migration_much_costlier_than_normal_leave():
    """The paper's conclusion: normal leaves (a few tens of ms of protocol
    work at this scale) beat migration (≥ 0.6 s spawn alone)."""
    normal = run_experiment(
        lambda: make_jacobi(700, 30),
        nprocs=4,
        adaptive=True,
        events=lambda rt: rt.sim.schedule(0.2, lambda: rt.submit_leave(3, grace=60.0)),
    )
    urgent = run_experiment(
        lambda: make_jacobi(1400, 8),
        nprocs=3,
        adaptive=True,
        events=lambda rt: rt.sim.schedule(0.5, lambda: rt.submit_leave(2, grace=0.15)),
    )
    normal_cost = normal.adapt_records[0].duration
    urgent_cost = urgent.migrations[0].total_seconds
    assert urgent_cost > 10 * normal_cost
