"""Ablation — why lazy release consistency (the paper's DSM choice).

The paper's substrate decision (§2, §7: "The use of TreadMarks allows
automatic distribution and communication of data") rests on LRC beating
the classic Li–Hudak write-invalidate SVM ([15]).  This bench runs the
evaluation kernels under both protocols and measures the difference:

* false-sharing kernels (Jacobi's unaligned rows) ping-pong pages under
  write-invalidate; LRC's twins/diffs move only the changed bytes;
* every kernel pays SC's synchronous invalidation latency on each
  ownership change; LRC defers all coherence to synchronization points.
"""

import pytest

from repro.apps import APP_NAMES
from repro.bench import BENCH_CALIBRATED, format_table, make_jacobi
from repro.bench.harness import run_experiment
from repro.dsm import ScRuntime, TmkRuntime


def sc_experiment(factory, nprocs):
    """run_experiment with the SC runtime swapped in."""
    from repro.cluster import NodePool
    from repro.config import SystemConfig
    from repro.network import Switch
    from repro.simcore import Simulator

    sim = Simulator()
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = ScRuntime(sim, cfg, pool.add_nodes(nprocs), materialized=False)
    app = factory()
    app.do_collect = False
    result = rt.run(app.program(rt))
    return result


SMALL = {
    "jacobi": lambda: make_jacobi(350, 20),
    "gauss": None,  # taken from BENCH_CALIBRATED below
}


@pytest.fixture(scope="module")
def protocol_grid():
    grid = {}
    for app_name in APP_NAMES:
        factory = BENCH_CALIBRATED[app_name]
        lrc = run_experiment(factory, nprocs=8)
        sc = sc_experiment(factory, nprocs=8)
        grid[app_name] = (lrc, sc)
    return grid


def test_protocol_report(protocol_grid, report):
    rows = []
    for app_name, (lrc, sc) in protocol_grid.items():
        rows.append([
            app_name,
            lrc.runtime_seconds, sc.runtime_seconds,
            lrc.megabytes, sc.traffic.megabytes,
            lrc.messages, sc.traffic.messages,
            f"x{sc.runtime_seconds / lrc.runtime_seconds:.2f}",
        ])
    report(
        "sc_baseline",
        format_table(
            ["app", "LRC t(s)", "SC t(s)", "LRC MB", "SC MB",
             "LRC msgs", "SC msgs", "SC/LRC time"],
            rows,
            title="Ablation: TreadMarks LRC vs Li-Hudak write-invalidate (8 procs)",
        ),
    )


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_lrc_never_slower(protocol_grid, app_name):
    lrc, sc = protocol_grid[app_name]
    assert lrc.runtime_seconds <= sc.runtime_seconds * 1.02, (
        f"{app_name}: LRC {lrc.runtime_seconds:.2f}s vs SC "
        f"{sc.runtime_seconds:.2f}s"
    )


def test_false_sharing_kernel_suffers_most(protocol_grid):
    """Jacobi (unaligned rows) is the poster child for LRC."""
    ratios = {
        app: sc.runtime_seconds / lrc.runtime_seconds
        for app, (lrc, sc) in protocol_grid.items()
    }
    assert ratios["jacobi"] == max(ratios.values())
    assert ratios["jacobi"] > 1.3


def test_sc_moves_more_bytes_under_false_sharing(protocol_grid):
    lrc, sc = protocol_grid["jacobi"]
    assert sc.traffic.bytes > lrc.traffic.bytes
