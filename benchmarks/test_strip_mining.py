"""§7 ablation — compiler-controlled adaptation-point frequency.

"The compiler can control the frequency of adaptation points by
transformations similar to loop tiling or strip mining."

Strip-mining a long parallel construct multiplies the adaptation points:
leave requests are serviced sooner (urgent migrations avoided entirely
within the strips' reach), at the cost of extra fork/join rounds.  This
bench quantifies both sides of the trade on a long-region kernel.
"""

import pytest

from repro.bench import format_table
from repro.bench.harness import run_experiment
from repro.openmp import OmpProgram, ParallelFor, compile_openmp, strip_mine

REGION_SECONDS = 8.0  # aggregate work per construct (~2 s/region on 4 procs)
N_ITER = 300
ROUNDS = 3


def make_factory(strips):
    def factory():
        from repro.apps.base import AppKernel

        class LongRegion(AppKernel):
            name = f"long-region-x{strips}"

            def allocate(self, rt):
                from repro.dsm import Protocol

                self.shared(rt, "data", (512, 512), "float64", Protocol.SINGLE_WRITER)

            def loops(self):
                return [ParallelFor("work", N_ITER, self._body)]

            def _body(self, ctx, lo, hi, args):
                arr = self.arrays["data"]
                span = max(1, (hi - lo))
                rows = arr.nrows
                rlo = min(lo * rows // N_ITER, rows - 1)
                rhi = min(max(rlo + 1, hi * rows // N_ITER), rows)
                yield from ctx.access(arr.seg, writes=arr.rows(rlo, rhi))
                yield from ctx.compute(span * REGION_SECONDS / N_ITER)

            def driver(self, omp):
                for r in range(ROUNDS):
                    yield from omp.parallel_for("work", r)

            def reference(self):
                return {}

        app = LongRegion()
        program = app.program.__func__  # keep AppKernel API

        # wrap program() so the compiled output is strip-mined
        orig_program = app.program

        def mined_program(rt, adaptable=True):
            app.allocate(rt)
            prog = OmpProgram(app.name, app.loops(), app.driver, adaptable)
            if strips > 1:
                prog = strip_mine(prog, "work", strips)
            return compile_openmp(prog)

        app.program = mined_program
        return app

    return factory


def leave_latency_run(strips, grace):
    req = {}

    def install(rt):
        rt.sim.schedule(0.5, lambda: req.setdefault("r", rt.submit_leave(
            rt.team.node_of(3), grace=grace)))

    res = run_experiment(
        make_factory(strips), nprocs=4, adaptive=True, events=install
    )
    r = req["r"]
    return res, r.completed_at - r.submitted_at, r.was_urgent


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for strips in (1, 4, 16):
        out[strips] = leave_latency_run(strips, grace=1.0)
    return out


def test_strip_mining_report(sweep, report):
    rows = []
    for strips, (res, latency, urgent) in sweep.items():
        rows.append([
            strips,
            res.forks,
            latency,
            "urgent (migrated)" if urgent else "normal",
            res.runtime_seconds,
        ])
    report(
        "strip_mining",
        format_table(
            ["strips", "forks", "leave latency (s)", "leave kind", "runtime (s)"],
            rows,
            title="§7 ablation: strip mining vs adaptation-point frequency "
                  f"(3 regions of {REGION_SECONDS:.0f}s aggregate work on 4 procs, grace 1s)",
        ),
    )


def test_unmined_long_region_forces_urgent_leave(sweep):
    res, latency, urgent = sweep[1]
    assert urgent, "a ~2s region with a 1s grace must expire into migration"
    assert res.migrations


def test_mined_region_avoids_migration(sweep):
    res, latency, urgent = sweep[16]
    assert not urgent
    assert not res.migrations


def test_more_strips_bound_leave_latency(sweep):
    """A normal leave waits at most one strip: the latency bound shrinks
    with the strip count (the measured value bounces within one strip)."""
    latencies = {s: lat for s, (_res, lat, _u) in sweep.items()}
    region = REGION_SECONDS / 4  # per-proc region duration
    assert latencies[1] > 1.0  # grace expired: urgent path
    assert latencies[4] <= region / 4 + 0.1
    assert latencies[16] <= region / 16 + 0.1
    assert max(latencies[4], latencies[16]) < latencies[1]


def test_strip_overhead_is_modest(sweep):
    """The extra fork/joins cost well under the migration they replace."""
    t1 = sweep[1][0].runtime_seconds
    t16 = sweep[16][0].runtime_seconds
    # the un-mined run pays a full migration + multiplexing, so the mined
    # run should actually be no slower overall
    assert t16 <= t1 * 1.05
