"""Table 1 — execution times and network traffic, standard vs adaptive,
with no adapt events.

Published claims reproduced here (at shape-preserving scaled workloads):

1. the adaptive system's runtime equals the standard system's (zero
   overhead for supporting adaptivity);
2. network traffic (pages / MB / messages / diffs) is *identical*;
3. both systems speed up from 1 to 4 to 8 nodes;
4. diffs are non-zero only for Jacobi (unaligned rows), zero for
   Gauss / 3D-FFT / NBF (page-aligned single-writer data).
"""

import pytest

from repro.bench import TABLE1, format_table, speedup
from repro.apps import APP_NAMES


def _rows(table1_grid):
    rows = []
    for app in APP_NAMES:
        for nprocs in (8, 4, 1):
            std = table1_grid[(app, nprocs, False)]
            adp = table1_grid[(app, nprocs, True)]
            rows.append(
                [
                    app,
                    nprocs,
                    std.runtime_seconds,
                    adp.runtime_seconds,
                    std.pages,
                    std.megabytes,
                    std.messages,
                    std.diffs,
                ]
            )
    return rows


def test_table1_report(table1_grid, report, benchmark):
    headers = ["app", "nodes", "t_std(s)", "t_adpt(s)", "pages", "MB", "messages", "diffs"]
    rows = _rows(table1_grid)
    report(
        "table1",
        format_table(
            headers,
            rows,
            title="Table 1 (scaled workloads): runtimes and traffic, no adapt events",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(rows) == 12


@pytest.mark.parametrize("app", APP_NAMES)
@pytest.mark.parametrize("nprocs", [1, 4, 8])
def test_adaptive_overhead_is_nil(table1_grid, app, nprocs):
    """Headline Table 1 claim: identical traffic, same runtime."""
    std = table1_grid[(app, nprocs, False)]
    adp = table1_grid[(app, nprocs, True)]
    assert adp.traffic.messages == std.traffic.messages
    assert adp.traffic.bytes == std.traffic.bytes
    assert adp.traffic.pages == std.traffic.pages
    assert adp.traffic.diffs == std.traffic.diffs
    assert adp.runtime_seconds == pytest.approx(std.runtime_seconds, rel=1e-9)
    assert adp.adaptations == 0


@pytest.mark.parametrize("app", APP_NAMES)
def test_speedup_shape(table1_grid, app):
    """More nodes => faster, and 1-node runs produce zero network traffic,
    exactly as Table 1's 1-node rows report."""
    t1 = table1_grid[(app, 1, False)].runtime_seconds
    t4 = table1_grid[(app, 4, False)].runtime_seconds
    t8 = table1_grid[(app, 8, False)].runtime_seconds
    assert t1 > t4 > t8
    one = table1_grid[(app, 1, False)]
    assert one.traffic.messages == 0
    assert one.traffic.pages == 0
    # every kernel keeps gaining from 4 to 8 nodes, as in Table 1; the
    # absolute speedup is smaller at harness scale because per-page fixed
    # costs do not shrink with the problem (documented in EXPERIMENTS.md)
    s4, s8 = t1 / t4, t1 / t8
    assert s8 > s4 >= 1.0
    paper_s8 = speedup(app, 8)
    assert 1.2 <= s8 <= 8.0, (
        f"{app}: simulated 8-node speedup {s8:.2f} vs paper {paper_s8:.2f}"
    )


@pytest.mark.parametrize("app", APP_NAMES)
def test_diff_signature_matches_paper(table1_grid, app):
    """Diffs only where the paper reports them (Jacobi)."""
    res = table1_grid[(app, 8, False)]
    paper_diffs = TABLE1[(app, 8)].diffs
    if paper_diffs == 0:
        assert res.diffs == 0
    else:
        assert res.diffs > 0


def test_traffic_ordering_matches_paper(table1_grid):
    """Per-iteration traffic intensity ordering: FFT's transpose makes it
    the most communication-heavy kernel per unit of computation, as in
    Table 1 (779 MB for its shortest runtime)."""
    intensity = {
        app: table1_grid[(app, 8, False)].megabytes
        / table1_grid[(app, 8, False)].runtime_seconds
        for app in APP_NAMES
    }
    assert intensity["fft3d"] == max(intensity.values())


@pytest.mark.parametrize("app", APP_NAMES)
def test_more_nodes_more_traffic(table1_grid, app):
    """Table 1: traffic grows with the node count for every kernel."""
    mb4 = table1_grid[(app, 4, False)].megabytes
    mb8 = table1_grid[(app, 8, False)].megabytes
    assert mb8 > mb4 > 0
