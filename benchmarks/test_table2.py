"""Table 2 — average cost of repeated adaptations between n and n-1
processes, for n = 8 and n = 6, with the leaver at the *end* (highest
pid) or in the *middle* of the pid space.

Published claims reproduced (at scaled workloads):

1. adaptation costs are finite and small relative to the run;
2. **adaptation with 8 processes is always cheaper than with 6** — the
   leaver's partition shrinks with the team and its drain spreads over
   more links (§5.4);
3. costs are reported per the paper's methodology: adaptive runtime vs
   the interpolated non-adaptive reference at the run's average node
   count, divided by the number of adaptations.
"""

from __future__ import annotations

import pytest

from repro.apps import APP_NAMES
from repro.bench import (
    TABLE2,
    adaptation_delay,
    format_table,
    make_fft3d,
    make_gauss,
    make_jacobi,
    make_nbf,
    nonadaptive_times,
)
from repro.bench.harness import run_experiment
from repro.cluster import PeriodicAlternator

#: Longer-running variants so several adaptations land inside one run.
FACTORIES = {
    "jacobi": lambda: make_jacobi(500, 150),
    "gauss": lambda: make_gauss(512, 500),
    "fft3d": lambda: make_fft3d(32, 16, 16, 60),
    "nbf": lambda: make_nbf(8192, 16, 100),
}

CONFIGS = [(n, leaver) for n in (8, 6) for leaver in ("end", "middle")]


def _alternating_run(app_name: str, nprocs: int, leaver: str):
    def install(runtime):
        PeriodicAlternator(
            runtime,
            selector=leaver,
            gap=0.3,
            max_events=4,
            grace=1e9,  # always normal leaves, as in the paper's Table 2
            start_delay=0.2,
        ).install()

    return run_experiment(
        FACTORIES[app_name], nprocs=nprocs, adaptive=True, events=install
    )


@pytest.fixture(scope="module")
def table2_grid():
    grid = {}
    refs = {}
    for app in APP_NAMES:
        refs[app] = nonadaptive_times(FACTORIES[app], [5, 6, 7, 8])
        for nprocs, leaver in CONFIGS:
            grid[(app, nprocs, leaver)] = _alternating_run(app, nprocs, leaver)
    return grid, refs


def _avg_cost(result, refs, nprocs):
    per_adapt, _total = adaptation_delay(result, refs, start_nprocs=nprocs)
    return per_adapt


def test_table2_report(table2_grid, report, benchmark):
    grid, refs = table2_grid
    rows = []
    for leaver in ("end", "middle"):
        for app in APP_NAMES:
            row = [leaver, app]
            for nprocs in (8, 6):
                res = grid[(app, nprocs, leaver)]
                cost = _avg_cost(res, refs[app], nprocs)
                direct = (
                    sum(r.duration for r in res.adapt_records) / len(res.adapt_records)
                    if res.adapt_records
                    else 0.0
                )
                paper = TABLE2[(app, leaver, nprocs)].seconds
                row += [res.adaptations, cost, direct, paper]
            rows.append(row)
    report(
        "table2",
        format_table(
            [
                "leaver", "app",
                "n8 events", "n8 delay/adapt(s)", "n8 direct(s)", "n8 paper(s)",
                "n6 events", "n6 delay/adapt(s)", "n6 direct(s)", "n6 paper(s)",
            ],
            rows,
            title="Table 2 (scaled workloads): average cost per adaptation",
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert rows


@pytest.mark.parametrize("app", APP_NAMES)
@pytest.mark.parametrize("leaver", ["end", "middle"])
def test_adaptations_happen_and_team_recovers(table2_grid, app, leaver):
    grid, _refs = table2_grid
    for nprocs in (8, 6):
        res = grid[(app, nprocs, leaver)]
        assert res.adaptations == 4
        assert res.adapt_records[0].nprocs_before == nprocs
        # alternating leave/join returns the team to full strength
        assert res.adapt_records[-1].nprocs_after == nprocs


@pytest.mark.parametrize("app", APP_NAMES)
@pytest.mark.parametrize("leaver", ["end", "middle"])
def test_eight_procs_cheaper_than_six(table2_grid, app, leaver):
    """The paper's highlighted Table 2 result, via the direct per-record
    cost (leave-drain + GC + bookkeeping duration)."""
    grid, _refs = table2_grid
    res8 = grid[(app, 8, leaver)]
    res6 = grid[(app, 6, leaver)]
    direct8 = sum(r.duration for r in res8.adapt_records) / len(res8.adapt_records)
    direct6 = sum(r.duration for r in res6.adapt_records) / len(res6.adapt_records)
    assert direct8 < direct6, (
        f"{app}/{leaver}: adaptation at 8 procs ({direct8:.4f}s) should be "
        f"cheaper than at 6 procs ({direct6:.4f}s)"
    )


@pytest.mark.parametrize("app", APP_NAMES)
def test_adaptation_cost_small_relative_to_run(table2_grid, app):
    """Moderate adaptation rates are affordable (§5.3): the total
    adaptation overhead stays well under the run length."""
    grid, refs = table2_grid
    res = grid[(app, 8, "end")]
    _per, total_delay = adaptation_delay(res, refs[app], start_nprocs=8)
    assert total_delay < 0.5 * res.runtime_seconds
