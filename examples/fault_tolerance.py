#!/usr/bin/env python
"""Fault tolerance (§4.3): checkpoint at adaptation points, then recover.

Three phases:

1. run an iterative kernel with periodic checkpointing and "crash" the
   whole NOW mid-run (power flicker);
2. recover on a *different* cluster from the latest checkpoint — because
   checkpoints are taken at adaptation points, only the master's image
   plus the garbage-collected shared pages are saved;
3. fail-stop a single slave node mid-run and let the *live* runtime
   detect it via heartbeats and recover in place: rebuild the team from
   survivors plus an idle spare, reload the checkpoint, and replay.

The kernel keeps its iteration counter in shared memory, so a restarted
driver resumes where the checkpoint left off.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.cluster import NodePool
from repro.config import SystemConfig
from repro.core import AdaptiveRuntime, restore_checkpoint
from repro.dsm import SharedArray, TmkProgram
from repro.network import Switch
from repro.simcore import Simulator

N_ITER = 60
SHAPE = (128, 64)


def build(rt, label):
    seg = rt.malloc("grid", shape=SHAPE, dtype="float64")
    meta = rt.malloc("meta", shape=(4,), dtype="int64")
    arr, ctr = SharedArray(seg), SharedArray(meta)

    def init(ctx, pid, nprocs, args):
        if pid == 0:
            yield from ctx.access(arr.seg, writes=arr.full())
            yield from ctx.access(ctr.seg, writes=ctr.full())
            if ctx.materialized:
                arr.view(ctx)[:] = 0.0
                ctr.view(ctx)[0] = 0

    def step(ctx, pid, nprocs, args):
        lo, hi = arr.block(pid, nprocs)
        yield from ctx.access(arr.seg, reads=arr.rows(lo, hi), writes=arr.rows(lo, hi))
        if ctx.materialized:
            arr.view(ctx)[lo:hi] += 1.0
        if pid == 0:
            yield from ctx.access(ctr.seg, reads=ctr.full(), writes=ctr.full())
            if ctx.materialized:
                ctr.view(ctx)[0] = args + 1
        yield from ctx.compute(0.01)

    def driver(api):
        ctx = api.ctx
        yield from ctx.access(ctr.seg, reads=ctr.full())
        start = int(ctr.view(ctx)[0])
        if start:
            print(f"    [{label}] resuming from iteration {start}")
        else:
            yield from api.fork_join("init")
        for it in range(start, N_ITER):
            yield from api.fork_join("step", it)
        yield from ctx.access(arr.seg, reads=arr.full())
        v = arr.view(ctx)
        print(f"    [{label}] finished: grid uniformly {v[0, 0]:.0f} "
              f"({'OK' if np.all(v == N_ITER) else 'CORRUPT'})")

    return TmkProgram({"init": init, "step": step}, driver, "ft-demo"), arr, ctr


def fresh_cluster(nprocs, extra_nodes=0, **runtime_kw):
    sim = Simulator()
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    team = pool.add_nodes(nprocs)
    pool.add_nodes(extra_nodes)
    rt = AdaptiveRuntime(sim, cfg, team, pool,
                         checkpoint_interval=0.1, **runtime_kw)
    return sim, rt


def main():
    print("== phase 1: run with periodic checkpoints, crash mid-run ==")
    sim, rt = fresh_cluster(4)
    prog, *_ = build(rt, "first run")
    crash_at = 1.6  # after at least one full checkpoint (disk write ~0.7 s)
    rt.run(prog, until=crash_at)  # the whole NOW goes dark here
    ckpts = rt.ckpt_mgr.checkpoints
    print(f"    crash at t={crash_at}s with {len(ckpts)} checkpoints on disk")
    latest = ckpts[-1]
    it = int(latest.segment_data["meta"].view("int64")[0])
    print(f"    latest checkpoint: t={latest.time:.3f}s, iteration {it}, "
          f"{latest.image_bytes / 1e6:.1f} MB image "
          f"(written in {latest.write_seconds:.3f}s)")

    print("== phase 2: recover on a different cluster (3 nodes) ==")
    sim2, rt2 = fresh_cluster(3)
    prog2, *_ = build(rt2, "recovery")
    restore_checkpoint(rt2, latest)
    res = rt2.run(prog2)
    print(f"    recovery run finished at t={res.runtime_seconds:.3f}s "
          f"on {rt2.team.nprocs} nodes")

    print("== phase 3: live in-place recovery from a slave crash ==")
    sim3, rt3 = fresh_cluster(4, extra_nodes=1, failure_detection=True)
    prog3, *_ = build(rt3, "live recovery")
    victim = rt3.team.node_of(2)
    sim3.schedule(1.6, lambda: rt3.inject_crash(victim))
    res3 = rt3.run(prog3)
    rec = res3.recoveries[0]
    src = ("cold restart" if rec.checkpoint_time is None
           else f"checkpoint at t={rec.checkpoint_time:.3f}s")
    print(f"    node {victim} crashed at t=1.6s; detected by {rec.reason} "
          f"after {rec.detection_latency * 1e3:.0f}ms")
    print(f"    team rebuilt {rec.nprocs_before}->{rec.nprocs_after} procs, "
          f"restored from {src} in {rec.restore_seconds:.3f}s "
          f"({rec.lost_work_seconds:.3f}s of work lost)")
    print(f"    finished at t={res3.runtime_seconds:.3f}s with "
          f"{res3.detector.heartbeats_sent} heartbeats "
          f"({res3.detector.false_suspicions} false suspicions)")


if __name__ == "__main__":
    main()
