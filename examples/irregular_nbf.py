#!/usr/bin/env python
"""The irregular kernel: NBF molecular-dynamics forces under adaptation.

NBF's array indices are partner-list lookups, not linear loop expressions
(§5.2) — so which pages move at an adaptation depends on the *data*.
This example runs the materialized kernel (real forces, verified against
a sequential reference) while a node leaves urgently: its grace period is
shorter than the gap between adaptation points, so the process is
migrated and multiplexed, then dissolved — and the physics still comes
out bit-correct.

Run:  python examples/irregular_nbf.py
"""

from repro.apps import NBF
from repro.cluster import NodePool
from repro.config import SystemConfig
from repro.core import AdaptiveRuntime
from repro.network import Switch
from repro.simcore import Simulator


def main():
    sim = Simulator(trace=True)
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = AdaptiveRuntime(sim, cfg, pool.add_nodes(4), pool, materialized=True)

    app = NBF(natoms=1024, npartners=12, iterations=6,
              interaction_rate=40e-6)  # slow interactions => long regions
    program = app.program(rt)

    # grace far shorter than the ~0.5 s between adaptation points
    sim.schedule(0.3, lambda: rt.submit_leave(2, grace=0.05))

    res = rt.run(program)

    print("== irregular NBF under an urgent leave ==")
    print(f"simulated runtime : {res.runtime_seconds:.2f} s")
    print(f"verified against sequential reference: {app.verify(rtol=1e-9, atol=1e-9)}")
    print(f"adaptations       : {res.adaptations}")
    for mig in rt.migrations:
        print(f"migration         : P{mig.pid} node{mig.src_node}->node{mig.dst_node} "
              f"({mig.spawn_seconds:.2f}s spawn + {mig.copy_seconds:.2f}s copy "
              f"of {mig.image_bytes / 1e6:.1f} MB)")
    print("\nadaptation trace:")
    for rec in sim.tracer.select(category="adapt"):
        print(f"  {rec}")


if __name__ == "__main__":
    main()
