#!/usr/bin/env python
"""A workday on a NOW: owners come and go, the computation adapts.

The §1 scenario: a long-running Jacobi relaxation occupies a pool of 8
workstations.  Owners arrive at their desks (their machines leave the
pool, each with a per-node grace period) and go to meetings or lunch
(their machines rejoin).  The computation is never stopped and needs no
application support — the adaptive runtime re-partitions at the next
parallel construct each time.

Run:  python examples/now_workday.py
"""

from repro.bench import make_jacobi
from repro.cluster import DaySchedule, NodePool, OwnerSchedule
from repro.config import SystemConfig
from repro.core import AdaptiveRuntime, GracePolicy
from repro.network import Switch
from repro.simcore import Simulator

# simulated "hours" compressed into seconds
H = 2.0


def main():
    sim = Simulator()
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    team = pool.add_nodes(8)

    # per-node grace periods: node 5's owner is impatient
    grace = GracePolicy(default=3.0, per_node={5: 1.0})
    rt = AdaptiveRuntime(sim, cfg, team, pool, grace_policy=grace,
                         materialized=False)

    app = make_jacobi(700, 700)  # long-running: ~10 s of simulated work
    program = app.program(rt)
    app.do_collect = False

    # the day's schedule: owners present (=> node out of the pool) in spans
    schedules = [
        DaySchedule(node_id=5, present=((0.5 * H, 1.5 * H),)),
        DaySchedule(node_id=6, present=((0.8 * H, 1.2 * H), (2.2 * H, 2.6 * H))),
        DaySchedule(node_id=7, present=((1.0 * H, 2.5 * H),)),
    ]
    daemon = OwnerSchedule(rt, schedules)
    daemon.install()

    res = rt.run(program)

    print("== a workday on the NOW (Jacobi 700x700) ==")
    print(f"simulated runtime : {res.runtime_seconds:.2f} s")
    print(f"adapt events      : {res.adaptations}")
    print(f"network traffic   : {res.traffic.megabytes:.1f} MB, "
          f"{res.traffic.messages} messages")
    print("\nadaptation log:")
    for rec in res.adapt_log:
        kinds = []
        if rec.joins:
            kinds.append(f"join {rec.joins}")
        if rec.leaves:
            kinds.append(f"leave {rec.leaves}")
        if rec.urgent_leaves:
            kinds.append(f"URGENT leave {rec.urgent_leaves}")
        print(f"  t={rec.time:7.3f}s  {', '.join(kinds):<28} "
              f"team {rec.nprocs_before}->{rec.nprocs_after}  "
              f"cost {rec.duration * 1e3:6.1f} ms  "
              f"drained {rec.drained_pages} pages")
    if rt.migrations:
        print("\nmigrations (urgent leaves):")
        for mig in rt.migrations:
            print(f"  P{mig.pid}: node{mig.src_node} -> node{mig.dst_node}, "
                  f"{mig.image_bytes / 1e6:.1f} MB image, "
                  f"{mig.total_seconds:.2f} s")


if __name__ == "__main__":
    main()
