#!/usr/bin/env python
"""Why TreadMarks: LRC vs the classic write-invalidate SVM.

Runs the same OpenMP Jacobi under the TreadMarks-style lazy-release-
consistency DSM and under the Li–Hudak write-invalidate baseline (the
paper's reference [15]), then prints runtimes, traffic, per-link hot
spots, and per-process time breakdowns.  Jacobi's 5 600-byte rows are not
page aligned, so neighbouring partitions falsely share boundary pages —
the exact pathology LRC's multiple-writer protocol removes.

Run:  python examples/protocol_comparison.py
"""

from repro.bench import (
    breakdown_table,
    link_table,
    make_jacobi,
    run_experiment,
)
from repro.cluster import NodePool
from repro.config import SystemConfig
from repro.dsm import ScRuntime
from repro.network import Switch
from repro.simcore import Simulator

NPROCS = 8
FACTORY = lambda: make_jacobi(700, 40)


def run_sc():
    sim = Simulator()
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = ScRuntime(sim, cfg, pool.add_nodes(NPROCS), materialized=False)
    app = FACTORY()
    app.do_collect = False
    result = rt.run(app.program(rt))

    class Shim:  # the analysis helpers want .runtime / .runtime_seconds
        runtime = rt
        runtime_seconds = result.runtime_seconds
        per_process = result.per_process
        traffic = result.traffic
        adapt_records = []

    return Shim


def main():
    lrc = run_experiment(FACTORY, nprocs=NPROCS)
    sc = run_sc()

    print("== Jacobi 700x700, 8 workstations ==\n")
    print(f"{'':24}  {'LRC (TreadMarks)':>18}  {'SC (write-invalidate)':>22}")
    print(f"{'simulated runtime':24}  {lrc.runtime_seconds:>17.2f}s  {sc.runtime_seconds:>21.2f}s")
    print(f"{'page transfers':24}  {lrc.traffic.pages:>18,}  {sc.traffic.pages:>22,}")
    print(f"{'diff transfers':24}  {lrc.traffic.diffs:>18,}  {sc.traffic.diffs:>22,}")
    print(f"{'traffic (MB)':24}  {lrc.traffic.megabytes:>18.1f}  {sc.traffic.megabytes:>22.1f}")
    print(f"{'messages':24}  {lrc.traffic.messages:>18,}  {sc.traffic.messages:>22,}")
    print()
    print("--- LRC: " + breakdown_table(lrc).replace("\n", "\n    "))
    print()
    print("--- SC:  " + breakdown_table(sc, sc.runtime_seconds).replace("\n", "\n    "))
    print()
    print(link_table(lrc, top=4))


if __name__ == "__main__":
    main()
