#!/usr/bin/env python
"""Quickstart: run an OpenMP program on a simulated NOW, then adaptively.

Builds an 8-workstation NOW, writes a small OpenMP-style program (one
parallel loop over a shared vector), compiles it to TreadMarks fork/join
form, and runs it twice:

1. on the standard (non-adaptive) TreadMarks system;
2. on the adaptive system while a workstation leaves mid-run and another
   joins — the program text does not change at all, which is the paper's
   whole point.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import NodePool
from repro.config import SystemConfig
from repro.core import AdaptiveRuntime
from repro.dsm import SharedArray, TmkRuntime
from repro.network import Switch
from repro.openmp import OmpProgram, ParallelFor, compile_openmp
from repro.simcore import Simulator

N = 4096
ITERATIONS = 80


def build_program(rt):
    """An OpenMP program: iteratively smooth a shared vector."""
    seg = rt.malloc("v", shape=(N,), dtype="float64")
    vec = SharedArray(seg)

    def body(ctx, lo, hi, args):
        # declare what this chunk reads/writes; the DSM faults pages in
        # (the smoothing wraps around, so the first/last elements are read
        # by the edge chunks too)
        reads = vec.elements(max(lo - 1, 0), min(hi + 1, N))
        if lo == 0:
            reads += vec.elements(N - 1, N)
        if hi == N:
            reads += vec.elements(0, 1)
        yield from ctx.access(vec.seg, reads=reads, writes=vec.elements(lo, hi))
        if ctx.materialized:
            v = vec.view(ctx)
            left = np.roll(v, 1)
            right = np.roll(v, -1)
            v[lo:hi] = (left[lo:hi] + v[lo:hi] + right[lo:hi]) / 3.0
        yield from ctx.compute((hi - lo) * 4.0e-6)

    def init(ctx):
        yield from ctx.access(vec.seg, writes=vec.full())
        if ctx.materialized:
            vec.view(ctx)[:] = np.random.default_rng(0).random(N)

    def finish(ctx):
        yield from ctx.access(vec.seg, reads=vec.full())
        if ctx.materialized:
            v = vec.view(ctx)
            print(f"    result: mean={v.mean():.6f}  spread={v.std():.6f}")

    def driver(omp):
        yield from omp.serial(init)
        for it in range(ITERATIONS):
            yield from omp.parallel_for("smooth", it)
        yield from omp.serial(finish)

    return compile_openmp(
        OmpProgram("quickstart", [ParallelFor("smooth", N, body)], driver)
    )


def run_standard():
    print("== standard TreadMarks system (4 nodes) ==")
    sim = Simulator()
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = TmkRuntime(sim, cfg, pool.add_nodes(4))
    res = rt.run(build_program(rt))
    print(f"    simulated runtime: {res.runtime_seconds:.3f} s, "
          f"{res.traffic.messages} messages, {res.traffic.pages} page fetches")


def run_adaptive():
    print("== adaptive system: node 3 leaves at t=0.05s, node 4 joins ==")
    sim = Simulator()
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    team = pool.add_nodes(4)
    pool.add_node()  # a fifth, idle workstation
    rt = AdaptiveRuntime(sim, cfg, team, pool)
    prog = build_program(rt)
    sim.schedule(0.02, lambda: rt.submit_join(4))
    sim.schedule(0.05, lambda: rt.submit_leave(3))
    res = rt.run(prog)
    print(f"    simulated runtime: {res.runtime_seconds:.3f} s, "
          f"{res.adaptations} adapt events")
    for rec in res.adapt_log:
        print(f"    t={rec.time:.3f}s: joins={rec.joins} leaves={rec.leaves} "
              f"team {rec.nprocs_before}->{rec.nprocs_after} "
              f"({rec.duration * 1e3:.1f} ms)")


if __name__ == "__main__":
    run_standard()
    run_adaptive()
