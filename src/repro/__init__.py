"""Transparent Adaptive Parallelism on NOWs using OpenMP — reproduction.

A full reproduction of Scherer, Lu, Gross & Zwaenepoel (PPoPP 1999): an
adaptive TreadMarks-style DSM running OpenMP programs on a simulated
network of workstations whose nodes join and leave transparently.

Quick tour::

    from repro import (
        Simulator, SystemConfig, Switch, NodePool, AdaptiveRuntime,
        OmpProgram, ParallelFor, compile_openmp, SharedArray,
    )

    sim = Simulator()
    cfg = SystemConfig()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = AdaptiveRuntime(sim, cfg, pool.add_nodes(4), pool)
    ...

See README.md for the architecture and DESIGN.md / EXPERIMENTS.md for the
paper mapping.  ``python -m repro --help`` drives the experiment CLI.
"""

from .cluster import NodePool
from .config import PAPER_CONFIG, SystemConfig
from .core import AdaptiveRuntime
from .dsm import Protocol, ScRuntime, SharedArray, TmkProgram, TmkRuntime
from .errors import ReproError
from .network import Switch
from .openmp import OmpProgram, ParallelFor, compile_openmp, strip_mine
from .simcore import Simulator

__version__ = "1.1.0"


def __getattr__(name):
    # Lazy: repro.api pulls in the exec engine + obs layer; load it only
    # when asked for so `import repro` stays light.
    if name == "api":
        from . import api

        return api
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdaptiveRuntime",
    "api",
    "NodePool",
    "OmpProgram",
    "PAPER_CONFIG",
    "ParallelFor",
    "Protocol",
    "ReproError",
    "ScRuntime",
    "SharedArray",
    "Simulator",
    "Switch",
    "SystemConfig",
    "TmkProgram",
    "TmkRuntime",
    "compile_openmp",
    "strip_mine",
    "__version__",
]
