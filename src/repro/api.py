"""The public facade: one way in for every consumer.

Every driver — the CLI, the perf/recovery benches, the pytest benchmark
grids, user scripts — builds a :class:`ScenarioSpec` and calls
:func:`run` (one scenario) or :func:`sweep` (many, parallel + cached).
:class:`RunReport` bundles everything a run produces: the deterministic
:class:`~repro.exec.result.ScenarioResult` payload, the live
:class:`~repro.bench.harness.ExperimentResult` (runtime, app, records),
the per-phase :class:`~repro.obs.CostBreakdown`, and export handles for
the Chrome trace / metrics files.

The pre-facade per-module entrypoints (``repro.bench.run_experiment``,
``repro.exec.run_spec`` re-exported at package level) still work one
release behind a ``DeprecationWarning``; see ``docs/PROTOCOL.md`` §8.

Typical use::

    from repro.api import AdaptEvent, ObsConfig, run, spec_from_preset

    spec = spec_from_preset("tiny", "jacobi", 8).replaced(
        adaptive=True, events=(AdaptEvent("leave", 0.5, 3),)
    )
    report = run(spec, obs=ObsConfig(trace_path="trace.json"))
    print(report.cost_breakdown.adaptation_seconds)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .exec.pool import SweepOutcome, execute_spec, run_specs
from .exec.result import ScenarioResult
from .exec.spec import AdaptEvent, ScenarioSpec, spec_from_preset
from .obs import CostBreakdown, ObsConfig, Registry
from .obs.export import write_chrome_trace, write_metrics

__all__ = [
    "AdaptEvent",
    "ObsConfig",
    "RunReport",
    "ScenarioSpec",
    "SweepOutcome",
    "run",
    "run_many",
    "spec_from_preset",
    "sweep",
]


@dataclass
class RunReport:
    """Everything one :func:`run` call produced."""

    #: The spec that ran.
    spec: ScenarioSpec
    #: Deterministic simulated outputs (cache/serialization form).
    result: ScenarioResult
    #: The live experiment: ``.runtime``, ``.app``, adapt/migration
    #: records, the underlying :class:`~repro.dsm.runtime.RunResult`.
    experiment: Any = field(repr=False, default=None)
    #: Span/counter registry (None when the run was unobserved).
    registry: Optional[Registry] = field(repr=False, default=None)
    #: Per-phase adaptation-cost decomposition (None when unobserved).
    cost_breakdown: Optional[CostBreakdown] = None
    #: Wall-clock seconds of the simulation.
    wall_seconds: float = 0.0

    # -- export handles ---------------------------------------------------
    def _require_registry(self) -> Registry:
        if self.registry is None:
            raise ValueError(
                "this run was not observed; pass obs=ObsConfig() to run()"
            )
        return self.registry

    def _meta(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.display_name,
            "digest": self.spec.config_digest(),
        }

    def write_trace(self, path: str) -> str:
        """Write the Chrome/Perfetto ``trace.json``; returns ``path``."""
        write_chrome_trace(self._require_registry(), path, meta=self._meta())
        return path

    def write_metrics(self, path: str) -> str:
        """Write the flat ``metrics.json``; returns ``path``."""
        write_metrics(
            self._require_registry(),
            path,
            breakdown=self.cost_breakdown,
            result=self.result.to_dict(),
        )
        return path


def run(
    spec: ScenarioSpec,
    *,
    obs: Optional[ObsConfig] = None,
    repeat: int = 1,
) -> RunReport:
    """Execute one scenario; the single public run entry point.

    ``obs=None`` (and ``ObsConfig(enabled=False)``) runs uninstrumented —
    bitwise-identical to the pre-observability engine.  With observability
    on, ``repeat`` must stay 1 (repeats would pile spans from every rerun
    into one registry).
    """
    registry: Optional[Registry] = None
    if obs is not None and obs.enabled:
        registry = obs.make_registry()
    experiment, wall = execute_spec(spec, repeat=repeat, obs=registry)
    result = ScenarioResult.from_experiment(
        experiment, events=experiment.runtime.sim.events_executed
    )
    report = RunReport(
        spec=spec,
        result=result,
        experiment=experiment,
        registry=registry,
        cost_breakdown=experiment.cost_breakdown,
        wall_seconds=wall,
    )
    if obs is not None and registry is not None:
        if obs.trace_path:
            report.write_trace(obs.trace_path)
        if obs.metrics_path:
            report.write_metrics(obs.metrics_path)
    return report


def sweep(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: Optional[int] = None,
    cache: Any = None,
    refresh: bool = False,
    repeat: int = 1,
    retries: Optional[int] = None,
    progress: Any = None,
    supervisor: Any = None,
    obs: Optional[Registry] = None,
) -> SweepOutcome:
    """Run many scenarios through the parallel, cached engine.

    The facade name for :func:`repro.exec.pool.run_specs` — results come
    back in spec order, bitwise-identical to serial execution.

    ``supervisor`` (a :class:`repro.exec.supervisor.SupervisorPolicy`)
    carries the resilience policy — deadlines, seeded backoff retries,
    serial degradation; ``retries`` is the simple knob when the default
    policy is fine.  ``obs`` is a :class:`~repro.obs.Registry` the engine
    counts retries, attributed failures, quarantined cache entries and
    degradations into (see docs/RESILIENCE.md).
    """
    from .config import EXEC_RETRIES

    return run_specs(
        specs,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        repeat=repeat,
        retries=EXEC_RETRIES if retries is None else retries,
        progress=progress,
        supervisor=supervisor,
        obs=obs,
    )


def run_many(specs: Sequence[ScenarioSpec], **kwargs: Any) -> List[ScenarioResult]:
    """Convenience: :func:`sweep`, returning just the results in order."""
    return sweep(specs, **kwargs).results
