r"""The public facade: one way in for every consumer.

Every driver — the CLI, the perf/recovery benches, the pytest benchmark
grids, user scripts — builds a :class:`ScenarioSpec` and calls
:func:`run` (one scenario) or :func:`sweep` (many, parallel + cached).
:class:`RunReport` bundles everything a run produces: the deterministic
:class:`~repro.exec.result.ScenarioResult` payload, the live
:class:`~repro.bench.harness.ExperimentResult` (runtime, app, records),
the per-phase :class:`~repro.obs.CostBreakdown`, and export handles for
the Chrome trace / metrics files.

The pre-facade per-module entrypoints (``repro.bench.run_experiment``,
``repro.exec.run_spec`` re-exported at package level) still work one
release behind a ``DeprecationWarning``; see ``docs/PROTOCOL.md`` §8.

Typical use::

    from repro.api import AdaptEvent, ObsConfig, run, spec_from_preset

    spec = spec_from_preset("tiny", "jacobi", 8).replaced(
        adaptive=True, events=(AdaptEvent("leave", 0.5, 3),)
    )
    report = run(spec, obs=ObsConfig(trace_path="trace.json"))
    print(report.cost_breakdown.adaptation_seconds)

Since PR 9 the facade also fronts the distributed sweep service
(docs/SERVICE.md): :func:`serve` starts a coordinator, :func:`submit`
streams :class:`RunReport`\ s back from one, and :func:`sweep` accepts
an ``executor`` — a backend name, an
:class:`~repro.exec.executor.ExecutorConfig`, or any object satisfying
the :class:`~repro.exec.executor.Executor` protocol — making local,
serial and remote execution interchangeable::

    with serve(cache_dir="cache") as coordinator:
        for report in submit(specs, coordinator.address):
            print(report.spec.display_name, report.deduped)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from .errors import ExecError
from .exec.executor import Executor, ExecutorConfig, make_executor
from .exec.pool import SweepOutcome, execute_spec, run_specs
from .exec.result import ScenarioResult
from .exec.spec import AdaptEvent, ScenarioSpec, spec_from_preset
from .obs import CostBreakdown, ObsConfig, Registry
from .obs.export import write_chrome_trace, write_metrics

__all__ = [
    "AdaptEvent",
    "Executor",
    "ExecutorConfig",
    "ObsConfig",
    "RunReport",
    "ScenarioSpec",
    "SweepOutcome",
    "make_executor",
    "run",
    "run_many",
    "serve",
    "spec_from_preset",
    "submit",
    "sweep",
]


@dataclass
class RunReport:
    """Everything one :func:`run` call produced."""

    #: The spec that ran.
    spec: ScenarioSpec
    #: Deterministic simulated outputs (cache/serialization form).
    result: ScenarioResult
    #: The live experiment: ``.runtime``, ``.app``, adapt/migration
    #: records, the underlying :class:`~repro.dsm.runtime.RunResult`.
    experiment: Any = field(repr=False, default=None)
    #: Span/counter registry (None when the run was unobserved).
    registry: Optional[Registry] = field(repr=False, default=None)
    #: Per-phase adaptation-cost decomposition (None when unobserved).
    cost_breakdown: Optional[CostBreakdown] = None
    #: Wall-clock seconds of the simulation.
    wall_seconds: float = 0.0

    # -- service-streamed reports (:func:`submit`) ------------------------
    #: Position of :attr:`spec` in the submitted batch (-1 for local runs).
    index: int = -1
    #: Served from the coordinator's cache without executing.
    cached: bool = False
    #: Coalesced onto another in-flight submission of the same digest.
    deduped: bool = False
    #: Remote worker that executed the scenario ("" locally / for hits).
    worker_id: str = ""

    # -- export handles ---------------------------------------------------
    def _require_registry(self) -> Registry:
        if self.registry is None:
            raise ValueError(
                "this run was not observed; pass obs=ObsConfig() to run()"
            )
        return self.registry

    def _meta(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.display_name,
            "digest": self.spec.config_digest(),
        }

    def write_trace(self, path: str) -> str:
        """Write the Chrome/Perfetto ``trace.json``; returns ``path``."""
        write_chrome_trace(self._require_registry(), path, meta=self._meta())
        return path

    def write_metrics(self, path: str) -> str:
        """Write the flat ``metrics.json``; returns ``path``."""
        write_metrics(
            self._require_registry(),
            path,
            breakdown=self.cost_breakdown,
            result=self.result.to_dict(),
        )
        return path


def run(
    spec: ScenarioSpec,
    *,
    obs: Optional[ObsConfig] = None,
    repeat: int = 1,
) -> RunReport:
    """Execute one scenario; the single public run entry point.

    ``obs=None`` (and ``ObsConfig(enabled=False)``) runs uninstrumented —
    bitwise-identical to the pre-observability engine.  With observability
    on, ``repeat`` must stay 1 (repeats would pile spans from every rerun
    into one registry).
    """
    registry: Optional[Registry] = None
    if obs is not None and obs.enabled:
        registry = obs.make_registry()
    experiment, wall = execute_spec(spec, repeat=repeat, obs=registry)
    result = ScenarioResult.from_experiment(
        experiment, events=experiment.runtime.sim.events_executed
    )
    report = RunReport(
        spec=spec,
        result=result,
        experiment=experiment,
        registry=registry,
        cost_breakdown=experiment.cost_breakdown,
        wall_seconds=wall,
    )
    if obs is not None and registry is not None:
        if obs.trace_path:
            report.write_trace(obs.trace_path)
        if obs.metrics_path:
            report.write_metrics(obs.metrics_path)
    return report


def _resolve_executor(
    executor: Union[str, ExecutorConfig, Executor],
) -> Executor:
    """Backend name / config / instance -> a ready :class:`Executor`."""
    if isinstance(executor, str):
        executor = ExecutorConfig(backend=executor)
    if isinstance(executor, ExecutorConfig):
        return make_executor(executor)
    if isinstance(executor, Executor):
        return executor
    raise ExecError(
        f"executor must be a backend name, an ExecutorConfig, or an "
        f"Executor instance, not {type(executor).__name__}"
    )


def sweep(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: Optional[int] = None,
    cache: Any = None,
    refresh: bool = False,
    repeat: int = 1,
    retries: Optional[int] = None,
    progress: Any = None,
    supervisor: Any = None,
    obs: Optional[Registry] = None,
    executor: Optional[Union[str, ExecutorConfig, Executor]] = None,
) -> SweepOutcome:
    """Run many scenarios through the parallel, cached engine.

    The facade name for :func:`repro.exec.pool.run_specs` — results come
    back in spec order, bitwise-identical to serial execution.

    ``executor`` picks the backend: a name (``"local"``/``"serial"``/
    ``"remote"``), an :class:`~repro.exec.executor.ExecutorConfig`, or
    any :class:`~repro.exec.executor.Executor` instance — all three
    backends honor the same contract, so callers cannot tell *where* a
    sweep ran.  With an executor, the per-call engine knobs (``jobs``,
    ``cache``, ``refresh``, ``retries``, ``supervisor``) must stay at
    their defaults — the executor's config carries them instead.

    ``supervisor`` (a :class:`repro.exec.supervisor.SupervisorPolicy`)
    carries the resilience policy — deadlines, seeded backoff retries,
    serial degradation; ``retries`` is the simple knob when the default
    policy is fine.  ``obs`` is a :class:`~repro.obs.Registry` the engine
    counts retries, attributed failures, quarantined cache entries and
    degradations into (see docs/RESILIENCE.md).
    """
    from .config import EXEC_RETRIES

    if executor is not None:
        overlapping = [
            name
            for name, value in (
                ("jobs", jobs), ("cache", cache), ("refresh", refresh or None),
                ("retries", retries), ("supervisor", supervisor),
            )
            if value is not None
        ]
        if overlapping:
            raise ExecError(
                f"sweep(executor=...) carries its own engine configuration; "
                f"drop the conflicting argument(s) {overlapping} "
                f"(put them in ExecutorConfig instead)"
            )
        return _resolve_executor(executor).execute(
            specs, repeat=repeat, progress=progress, obs=obs
        )
    return run_specs(
        specs,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        repeat=repeat,
        retries=EXEC_RETRIES if retries is None else retries,
        progress=progress,
        supervisor=supervisor,
        obs=obs,
    )


def run_many(specs: Sequence[ScenarioSpec], **kwargs: Any) -> List[ScenarioResult]:
    """Convenience: :func:`sweep`, returning just the results in order."""
    return sweep(specs, **kwargs).results


# ---------------------------------------------------------------------------
# the distributed sweep service (docs/SERVICE.md)
# ---------------------------------------------------------------------------
def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache_dir: Optional[str] = None,
    cache: Any = None,
    no_cache: bool = False,
    max_attempts: Optional[int] = None,
):
    """Start a sweep-service coordinator; returns it already listening.

    The coordinator accepts workers (``repro workers``) and submissions
    (:func:`submit` / ``repro submit``) on ``host:port`` (``port=0``
    binds an ephemeral port — read it back from ``.address``).  Results
    land in the shared content-addressed cache named by ``cache_dir``
    (or an explicit :class:`~repro.exec.cache.ResultCache`); ``None``
    uses the default cache location.  Use as a context manager or call
    ``.stop()``; ``.serve_forever()`` is the ``repro serve`` foreground.
    """
    from .config import EXEC_CACHE_DIR
    from .exec.cache import ResultCache
    from .exec.service import DEFAULT_MAX_ATTEMPTS, Coordinator

    if no_cache:
        if cache is not None or cache_dir is not None:
            raise ExecError("no_cache=True excludes cache/cache_dir")
        cache = None
    elif cache is None:
        cache = ResultCache(root=cache_dir or EXEC_CACHE_DIR)
    elif cache_dir is not None:
        raise ExecError("pass cache_dir or cache, not both")
    return Coordinator(
        host=host,
        port=port,
        cache=cache,
        max_attempts=(DEFAULT_MAX_ATTEMPTS if max_attempts is None
                      else max_attempts),
    ).start()


def submit(
    specs: Sequence[ScenarioSpec],
    coordinator: str,
    *,
    repeat: int = 1,
    no_cache: bool = False,
    refresh: bool = False,
) -> Iterator[RunReport]:
    """Submit a batch to a running coordinator; stream the reports back.

    Yields one :class:`RunReport` per spec **in completion order** (the
    ``index`` field says which spec; cache hits arrive first, executed
    results as workers finish them).  Identical concurrent submissions
    are deduped coordinator-side: every submitter still receives its
    full report stream, but the simulation runs once
    (``report.deduped`` marks the attached copies).  Streamed reports
    carry no live ``experiment``/``registry`` — the simulation ran in
    another process; everything deterministic is in ``result``.
    """
    from .exec.service import Submission

    specs = list(specs)
    for served in Submission(specs, coordinator, repeat=repeat,
                             no_cache=no_cache, refresh=refresh):
        yield RunReport(
            spec=served.spec,
            result=served.result,
            wall_seconds=served.wall_seconds,
            index=served.index,
            cached=served.cached,
            deduped=served.deduped,
            worker_id=served.worker,
        )
