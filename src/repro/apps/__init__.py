"""The paper's evaluation kernels (§5.2): Jacobi, Gauss, 3D-FFT, NBF."""

from .base import AppKernel, auto_protocol
from .fft3d import FFT3D
from .gauss import Gauss
from .jacobi import Jacobi
from .nbf import NBF
from .workloads import APP_NAMES, BENCH, PAPER, TINY, Workload

__all__ = [
    "APP_NAMES",
    "AppKernel",
    "BENCH",
    "FFT3D",
    "Gauss",
    "Jacobi",
    "NBF",
    "PAPER",
    "TINY",
    "Workload",
    "auto_protocol",
]
