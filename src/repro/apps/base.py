"""Common machinery for the evaluation kernels (§5.2).

Each kernel is expressed as a real OpenMP program (declared parallel
loops + a sequential driver) and compiled through
:func:`repro.openmp.compile_openmp` — the same path a user program takes.
Kernels run in two modes sharing one code path:

* materialized — numpy data flows through the DSM; ``verify()`` compares
  the final shared memory against a sequential numpy reference;
* traced — identical access declarations and protocol traffic, no bytes.

Compute time is charged through per-operation *rates* calibrated against
Table 1's 1-node column (see ``repro.bench.calibrate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from ..dsm import SharedArray, TmkProgram
from ..errors import ConfigurationError
from ..openmp import OmpProgram, ParallelFor, compile_openmp


@dataclass
class AppStats:
    """What a kernel reports after a run."""

    name: str
    verified: Optional[bool] = None
    details: Dict[str, Any] = None


class AppKernel:
    """Base class for the four evaluation kernels."""

    #: Subclasses set a stable name used in reports.
    name = "app"

    def __init__(self) -> None:
        self.arrays: Dict[str, SharedArray] = {}
        #: Final materialized copies captured by the driver's collect step.
        self.final: Dict[str, np.ndarray] = {}

    # -- subclass interface -------------------------------------------------
    def allocate(self, rt) -> None:
        """Create the kernel's shared segments on ``rt``."""
        raise NotImplementedError

    def loops(self) -> List[ParallelFor]:
        """The kernel's declared parallel constructs."""
        raise NotImplementedError

    def driver(self, omp) -> Generator:
        """The sequential (master) control flow."""
        raise NotImplementedError

    def reference(self) -> Dict[str, np.ndarray]:
        """Sequential numpy results to verify against (materialized mode)."""
        raise NotImplementedError

    #: Approximate shared-memory footprint in bytes (for reports).
    def shared_bytes(self) -> int:
        return sum(a.nbytes for a in self.arrays.values())

    # -- common plumbing ------------------------------------------------------
    def shared(self, rt, name, shape, dtype, protocol) -> SharedArray:
        """Allocate and register one shared array."""
        seg = rt.malloc(name, shape=shape, dtype=dtype, protocol=protocol)
        arr = SharedArray(seg)
        self.arrays[name] = arr
        return arr

    def program(self, rt, adaptable: bool = True) -> TmkProgram:
        """Allocate segments and compile the kernel for ``rt``."""
        self.allocate(rt)
        omp_prog = OmpProgram(
            name=self.name,
            loops=self.loops(),
            driver=self.driver,
            adaptable=adaptable,
        )
        return compile_openmp(omp_prog)

    #: When False the driver's final collect step is skipped — benchmark
    #: runs measure the computation itself, not the verification gather
    #: (which would drag every page's diff history to the master).
    do_collect = True

    def collect(self, ctx, names: Optional[List[str]] = None) -> Generator:
        """Fault the named arrays into the master and snapshot them."""
        if not self.do_collect:
            return
        for name in names or list(self.arrays):
            arr = self.arrays[name]
            yield from ctx.access(arr.seg, reads=arr.full())
            if ctx.materialized:
                self.final[name] = arr.view(ctx).copy()

    def verify(self, rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Compare collected finals against the sequential reference."""
        if not self.final:
            raise ConfigurationError(
                f"{self.name}: nothing collected (traced mode or missing collect step)"
            )
        for name, expected in self.reference().items():
            got = self.final[name]
            if not np.allclose(got, expected, rtol=rtol, atol=atol):
                return False
        return True


def auto_protocol(row_bytes: int, page_size: int = 4096):
    """Single-writer when partitions are page-aligned, else multiple-writer.

    This mirrors the per-page protocol choice §4.1's page map describes:
    the paper's Gauss/FFT/NBF data lands page-aligned (zero diffs in
    Table 1) while Jacobi's 20 000-byte rows do not (diffs observed).
    """
    from ..dsm import Protocol

    if row_bytes % page_size == 0:
        return Protocol.SINGLE_WRITER
    return Protocol.MULTIPLE_WRITER
