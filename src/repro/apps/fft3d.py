"""3D-FFT — the NAS FT kernel shape (§5.2).

Paper configuration: 128 × 64 × 64 complex doubles, 100 iterations, 42 MB
shared.  The 3-D transform is a sequence of three 1-D transforms "with a
transposition of the matrix between the second and the third transform".

The transpose is the *blocked* redistribution real FT codes use: while a
process still owns its x-slab it locally reshuffles it into a staging
array laid out ``stage[x, z, y] = a[x, y, z]`` — so the bytes one
destination z-slab needs from one source x-slab are **contiguous**.  Each
process then gathers its contiguous tiles from every peer: the classic
all-to-all in which every page of the staging array crosses the network
exactly once per iteration.  (A naive strided transpose would fault every
page of ``a`` at every process — no page-based DSM can run that; the
published 1 985 pages/iteration confirm the blocked exchange.)

x-planes and staging rows are page aligned at the paper's sizes, so all
pages are single-writer and Table 1's zero diff count follows.
"""

from __future__ import annotations

from math import log2
from typing import Generator, List

import numpy as np

from ..openmp import ParallelFor
from .base import AppKernel, auto_protocol


class FFT3D(AppKernel):
    name = "fft3d"

    def __init__(
        self,
        nx: int = 128,
        ny: int = 64,
        nz: int = 64,
        iterations: int = 100,
        butterfly_rate: float = 291.0e-9,
        transpose_rate: float = 30.0e-9,
        seed: int = 777,
    ):
        """``butterfly_rate`` is seconds per point per log2-level,
        calibrated so the 1-node run lands on Table 1's 289.90 s."""
        super().__init__()
        for d in (nx, ny, nz):
            if d < 2 or d & (d - 1):
                raise ValueError("FFT dims must be powers of two >= 2")
        self.nx, self.ny, self.nz = nx, ny, nz
        self.iterations = iterations
        self.butterfly_rate = butterfly_rate
        self.transpose_rate = transpose_rate
        self.seed = seed

    def allocate(self, rt) -> None:
        page = rt.cfg.dsm.page_size
        self.shared(
            rt, "a", (self.nx, self.ny, self.nz), "complex128",
            auto_protocol(self.ny * self.nz * 16, page),
        )
        # the blocked-transpose staging array: stage[x, z, y] == a[x, y, z]
        self.shared(
            rt, "stage", (self.nx, self.nz, self.ny), "complex128",
            auto_protocol(self.nz * self.ny * 16, page),
        )
        self.shared(
            rt, "b", (self.nz, self.ny, self.nx), "complex128",
            auto_protocol(self.ny * self.nx * 16, page),
        )

    def initial_a(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        shape = (self.nx, self.ny, self.nz)
        return (rng.random(shape) + 1j * rng.random(shape)).astype(np.complex128)

    #: The per-iteration evolution factor (NAS FT multiplies in frequency
    #: space; a fixed damping phase plus unitary ("ortho") FFTs keep
    #: values bounded over arbitrarily many iterations).
    EVOLVE = 0.5 + 0.5j

    def loops(self) -> List[ParallelFor]:
        return [
            ParallelFor("ffts12", self.nx, self._ffts12_body),
            ParallelFor("fft3", self.nz, self._fft3_body),
        ]

    def _ffts12_body(self, ctx, lo: int, hi: int, args) -> Generator:
        """Evolve + FFT along y,z on own x-planes, then reshuffle them
        into the staging layout (phase A of the blocked transpose)."""
        a, stage = self.arrays["a"], self.arrays["stage"]
        yield from ctx.access_batch([
            (a.seg, a.rows(lo, hi), a.rows(lo, hi)),
            (stage.seg, (), stage.rows(lo, hi)),
        ])
        if ctx.materialized:
            v = a.view(ctx)
            v[lo:hi] *= self.EVOLVE
            v[lo:hi] = np.fft.fft(
                np.fft.fft(v[lo:hi], axis=1, norm="ortho"), axis=2, norm="ortho"
            )
            stage.view(ctx)[lo:hi] = np.swapaxes(v[lo:hi], 1, 2)
        points = (hi - lo) * self.ny * self.nz
        levels = log2(self.ny) + log2(self.nz)
        yield from ctx.compute(
            points * levels * self.butterfly_rate
            + points * self.transpose_rate
        )

    def _fft3_body(self, ctx, lo: int, hi: int, args) -> Generator:
        """Gather own contiguous z-tiles from every x-plane of the staging
        array (the all-to-all), finish the transform along x."""
        stage, b = self.arrays["stage"], self.arrays["b"]
        itemsize = 16
        row = self.nz * self.ny * itemsize  # one x-plane of stage
        tile_lo = lo * self.ny * itemsize
        tile_hi = hi * self.ny * itemsize
        reads = [
            (x * row + tile_lo, x * row + tile_hi) for x in range(self.nx)
        ]
        yield from ctx.access(stage.seg, reads=reads)
        yield from ctx.access(b.seg, writes=b.rows(lo, hi))
        if ctx.materialized:
            src = stage.view(ctx)  # (nx, nz, ny)
            dst = b.view(ctx)  # (nz, ny, nx)
            dst[lo:hi] = np.transpose(src[:, lo:hi, :], (1, 2, 0))
            dst[lo:hi] = np.fft.fft(dst[lo:hi], axis=2, norm="ortho")
        points = (hi - lo) * self.ny * self.nx
        yield from ctx.compute(
            points * log2(self.nx) * self.butterfly_rate
            + points * self.transpose_rate
        )

    def driver(self, omp) -> Generator:
        ctx = omp.ctx
        a = self.arrays["a"]
        yield from ctx.access(a.seg, writes=a.full())
        if ctx.materialized:
            a.view(ctx)[:] = self.initial_a()
        for _ in range(self.iterations):
            yield from omp.parallel_for("ffts12")
            yield from omp.parallel_for("fft3")
        yield from self.collect(ctx, ["b"])

    def reference(self) -> dict:
        a = self.initial_a()
        b = np.zeros((self.nz, self.ny, self.nx), dtype=np.complex128)
        for _ in range(self.iterations):
            a *= self.EVOLVE
            a = np.fft.fft(np.fft.fft(a, axis=1, norm="ortho"), axis=2, norm="ortho")
            b = np.fft.fft(np.transpose(a, (2, 1, 0)), axis=2, norm="ortho")
        return {"b": b}
