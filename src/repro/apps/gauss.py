"""Gauss — Gaussian elimination without pivoting (§5.2).

Paper configuration: 3072 × 3072 doubles, 3072 iterations, 48 MB shared.
A 3072-double row is 24 576 bytes = exactly 6 pages, so rows (and block
partitions) are page aligned: every page has a single writer and Table 1
reports zero diffs — faults are whole-page fetches of the pivot row.

One parallel construct per elimination step ``k``: every process reads
the pivot row and updates its own rows below ``k``.  The static block
schedule means processes fall idle as ``k`` passes their block, which is
what the published page counts reflect.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from ..openmp import ParallelFor
from .base import AppKernel, auto_protocol


class Gauss(AppKernel):
    name = "gauss"

    def __init__(
        self,
        n: int = 3072,
        iterations: int | None = None,
        update_rate: float = 145.0e-9,
        seed: int = 4321,
    ):
        """``update_rate`` is seconds per updated matrix element,
        calibrated so the 1-node run lands on Table 1's 1 404.20 s."""
        super().__init__()
        if n < 2:
            raise ValueError("Gauss needs n >= 2")
        self.n = n
        self.iterations = iterations if iterations is not None else n - 1
        if not 0 <= self.iterations <= n - 1:
            raise ValueError("iterations must be in [0, n-1]")
        self.update_rate = update_rate
        self.seed = seed

    def allocate(self, rt) -> None:
        protocol = auto_protocol(self.n * 8, rt.cfg.dsm.page_size)
        self.shared(rt, "m", (self.n, self.n), "float64", protocol)

    def initial_matrix(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        m = rng.random((self.n, self.n))
        # diagonally dominant => no pivoting needed, numerically stable
        m[np.diag_indices(self.n)] += self.n
        return m

    def loops(self) -> List[ParallelFor]:
        return [ParallelFor("eliminate", self.n, self._eliminate_body)]

    def _eliminate_body(self, ctx, lo: int, hi: int, args) -> Generator:
        k = args
        m = self.arrays["m"]
        rlo = max(lo, k + 1)
        if rlo >= hi:
            return  # this block is entirely above the pivot: idle
        yield from ctx.access(m.seg, reads=m.row(k))
        yield from ctx.access(
            m.seg, reads=m.rows(rlo, hi), writes=m.rows(rlo, hi)
        )
        if ctx.materialized:
            a = m.view(ctx)
            factors = a[rlo:hi, k] / a[k, k]
            a[rlo:hi, k:] -= factors[:, None] * a[k, k:]
            a[rlo:hi, k] = factors  # keep the multipliers (LU style)
        yield from ctx.compute((hi - rlo) * (self.n - k) * self.update_rate)

    def driver(self, omp) -> Generator:
        ctx = omp.ctx
        m = self.arrays["m"]
        yield from ctx.access(m.seg, writes=m.full())
        if ctx.materialized:
            m.view(ctx)[:] = self.initial_matrix()
        for k in range(self.iterations):
            yield from omp.parallel_for("eliminate", k)
        yield from self.collect(ctx, ["m"])

    def reference(self) -> dict:
        m = self.initial_matrix()
        for k in range(self.iterations):
            factors = m[k + 1 :, k] / m[k, k]
            m[k + 1 :, k:] -= factors[:, None] * m[k, k:]
            m[k + 1 :, k] = factors
        return {"m": m}
