"""Jacobi — iterative 2-D relaxation (§5.2).

Paper configuration: 2500 × 2500 doubles, 1000 iterations, 47.8 MB of
shared memory.  A 2500-double row is 20 000 bytes — *not* page aligned —
so neighbouring partitions share boundary pages and the multiple-writer
twin/diff machinery engages: Jacobi is the one Table 1 kernel with a
non-zero diff count.

Each iteration is two parallel constructs (exactly what the SUIF
translator emits for the two loops): a *sweep* writing the scratch array
from the grid's 4-neighbour stencil, and a *copy* writing the grid back
from scratch.  Between-partition traffic is the two boundary rows per
neighbour pair.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from ..dsm import Protocol
from ..openmp import ParallelFor
from .base import AppKernel


class Jacobi(AppKernel):
    name = "jacobi"

    def __init__(
        self,
        n: int = 2500,
        iterations: int = 1000,
        update_rate: float = 164.0e-9,
        copy_rate: float = 41.0e-9,
        seed: int = 1234,
    ):
        """``update_rate``/``copy_rate`` are seconds per grid point per
        pass, calibrated so the 1-node run lands on Table 1's 1 283.63 s
        (see ``repro.bench.calibrate``)."""
        super().__init__()
        if n < 3:
            raise ValueError("Jacobi needs n >= 3")
        self.n = n
        self.iterations = iterations
        self.update_rate = update_rate
        self.copy_rate = copy_rate
        self.seed = seed

    # -- setup ---------------------------------------------------------------
    def allocate(self, rt) -> None:
        # Row size n*8 B: for the paper's 2500 this is unaligned, forcing
        # multiple-writer boundary pages (the source of Jacobi's diffs).
        self.shared(rt, "grid", (self.n, self.n), "float64", Protocol.MULTIPLE_WRITER)
        self.shared(rt, "scratch", (self.n, self.n), "float64", Protocol.MULTIPLE_WRITER)

    def initial_grid(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        grid = rng.random((self.n, self.n))
        grid[0, :] = 1.0
        grid[-1, :] = 0.0
        grid[:, 0] = 0.5
        grid[:, -1] = 0.25
        return grid

    # -- parallel constructs ---------------------------------------------------
    def loops(self) -> List[ParallelFor]:
        return [
            ParallelFor("sweep", self.n, self._sweep_body),
            ParallelFor("copy", self.n, self._copy_body),
        ]

    def _sweep_body(self, ctx, lo: int, hi: int, args) -> Generator:
        grid, scratch = self.arrays["grid"], self.arrays["scratch"]
        n = self.n
        wlo, whi = max(lo, 1), min(hi, n - 1)  # interior rows only
        if whi <= wlo:
            return
        yield from ctx.access(
            grid.seg,
            reads=grid.rows(wlo - 1, whi + 1),  # stencil needs halo rows
        )
        yield from ctx.access(scratch.seg, writes=scratch.rows(wlo, whi))
        if ctx.materialized:
            g = grid.view(ctx)
            s = scratch.view(ctx)
            s[wlo:whi, 1:-1] = 0.25 * (
                g[wlo - 1 : whi - 1, 1:-1]
                + g[wlo + 1 : whi + 1, 1:-1]
                + g[wlo:whi, :-2]
                + g[wlo:whi, 2:]
            )
        yield from ctx.compute((whi - wlo) * n * self.update_rate)

    def _copy_body(self, ctx, lo: int, hi: int, args) -> Generator:
        grid, scratch = self.arrays["grid"], self.arrays["scratch"]
        n = self.n
        wlo, whi = max(lo, 1), min(hi, n - 1)
        if whi <= wlo:
            return
        yield from ctx.access(scratch.seg, reads=scratch.rows(wlo, whi))
        yield from ctx.access(grid.seg, writes=grid.rows(wlo, whi))
        if ctx.materialized:
            g = grid.view(ctx)
            s = scratch.view(ctx)
            g[wlo:whi, 1:-1] = s[wlo:whi, 1:-1]
        yield from ctx.compute((whi - wlo) * n * self.copy_rate)

    # -- driver ---------------------------------------------------------------
    def driver(self, omp) -> Generator:
        ctx = omp.ctx
        grid = self.arrays["grid"]
        yield from ctx.access(grid.seg, writes=grid.full())
        if ctx.materialized:
            grid.view(ctx)[:] = self.initial_grid()
        for _ in range(self.iterations):
            yield from omp.parallel_for("sweep")
            yield from omp.parallel_for("copy")
        yield from self.collect(ctx, ["grid"])

    # -- verification ------------------------------------------------------------
    def reference(self) -> dict:
        grid = self.initial_grid()
        for _ in range(self.iterations):
            interior = 0.25 * (
                grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
            )
            grid[1:-1, 1:-1] = interior
        return {"grid": grid}
