"""NBF — non-bonded force kernel of a molecular dynamics code (§5.2).

Paper configuration: 131 072 atoms × 80 partners, 100 iterations, 52 MB
shared (the partner table alone is ~42 MB).  NBF is the *irregular*
kernel: the array indices (partner ids) are not linear expressions in the
loop variables, so reads scatter across the whole position array and the
pages fetched per iteration depend on the data, not the loop bounds.

Per iteration: a *forces* construct where each process reads the
positions of its atoms' partners (irregular gather) and writes its own
force block, then an *integrate* construct advancing its position block.
Position blocks are page aligned at the paper's sizes, so pages stay
single-writer and Table 1 reports zero diffs.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from ..dsm import Protocol
from ..openmp import ParallelFor
from .base import AppKernel


class NBF(AppKernel):
    name = "nbf"

    def __init__(
        self,
        natoms: int = 131072,
        npartners: int = 80,
        iterations: int = 100,
        interaction_rate: float = 2.29e-6,
        integrate_rate: float = 20.0e-9,
        cutoff_locality: float = 0.05,
        seed: int = 99,
    ):
        """``interaction_rate`` is seconds per pair interaction, calibrated
        so the 1-node run lands on Table 1's 2 398.79 s.

        ``cutoff_locality`` controls how far partner indices stray from
        their atom (fraction of the whole array): molecular neighbour lists
        are spatially local, which bounds how many remote pages a block's
        gather touches."""
        super().__init__()
        if natoms < 2 or npartners < 1:
            raise ValueError("NBF needs natoms >= 2 and npartners >= 1")
        self.natoms = natoms
        self.npartners = npartners
        self.iterations = iterations
        self.interaction_rate = interaction_rate
        self.integrate_rate = integrate_rate
        self.cutoff_locality = cutoff_locality
        self.seed = seed
        self._partners: np.ndarray | None = None

    # -- data ---------------------------------------------------------------
    def partner_table(self) -> np.ndarray:
        """The neighbour list: (natoms, npartners) int32, spatially local."""
        if self._partners is None:
            rng = np.random.default_rng(self.seed)
            window = max(1, int(self.natoms * self.cutoff_locality))
            offsets = rng.integers(-window, window + 1, size=(self.natoms, self.npartners))
            base = np.arange(self.natoms)[:, None]
            partners = (base + offsets) % self.natoms
            # an atom is not its own partner: shift self-references by one
            self_ref = partners == base
            partners[self_ref] = (partners[self_ref] + 1) % self.natoms
            self._partners = partners.astype(np.int32)
        return self._partners

    def initial_positions(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 1)
        return rng.random(self.natoms)

    def allocate(self, rt) -> None:
        # positions/forces: 1-D float64 blocks; single-writer pages when
        # blocks are aligned, demoted automatically otherwise.
        self.shared(rt, "pos", (self.natoms,), "float64", Protocol.SINGLE_WRITER)
        self.shared(rt, "force", (self.natoms,), "float64", Protocol.SINGLE_WRITER)
        self.shared(
            rt, "partners", (self.natoms, self.npartners), "int32",
            Protocol.SINGLE_WRITER,
        )

    # -- physics -----------------------------------------------------------
    @staticmethod
    def pair_force(xi: np.ndarray, xj: np.ndarray) -> np.ndarray:
        """A smooth bounded pair interaction (softened inverse square)."""
        d = xi - xj
        return d / (1.0 + d * d)

    DT = 1.0e-3

    # -- parallel constructs ---------------------------------------------------
    def loops(self) -> List[ParallelFor]:
        return [
            ParallelFor("forces", self.natoms, self._forces_body),
            ParallelFor("integrate", self.natoms, self._integrate_body),
        ]

    def _forces_body(self, ctx, lo: int, hi: int, args) -> Generator:
        pos, force = self.arrays["pos"], self.arrays["force"]
        partners = self.arrays["partners"]
        table = self.partner_table()
        # the irregular gather: which position elements does this block read?
        needed = np.unique(table[lo:hi])
        yield from ctx.access(partners.seg, reads=partners.rows(lo, hi))
        yield from ctx.access(pos.seg, reads=pos.elements(lo, hi))
        yield from ctx.access(pos.seg, reads=pos.element_set(needed.tolist()))
        yield from ctx.access(force.seg, writes=force.elements(lo, hi))
        if ctx.materialized:
            x = pos.view(ctx)
            f = force.view(ctx)
            block = table[lo:hi]
            f[lo:hi] = self.pair_force(x[lo:hi, None], x[block]).sum(axis=1)
        yield from ctx.compute(
            (hi - lo) * self.npartners * self.interaction_rate
        )

    def _integrate_body(self, ctx, lo: int, hi: int, args) -> Generator:
        pos, force = self.arrays["pos"], self.arrays["force"]
        yield from ctx.access(force.seg, reads=force.elements(lo, hi))
        yield from ctx.access(
            pos.seg, reads=pos.elements(lo, hi), writes=pos.elements(lo, hi)
        )
        if ctx.materialized:
            x = pos.view(ctx)
            f = force.view(ctx)
            x[lo:hi] += self.DT * f[lo:hi]
        yield from ctx.compute((hi - lo) * self.integrate_rate)

    # -- driver ---------------------------------------------------------------
    def driver(self, omp) -> Generator:
        ctx = omp.ctx
        pos, force = self.arrays["pos"], self.arrays["force"]
        partners = self.arrays["partners"]
        yield from ctx.access(pos.seg, writes=pos.full())
        yield from ctx.access(force.seg, writes=force.full())
        yield from ctx.access(partners.seg, writes=partners.full())
        if ctx.materialized:
            pos.view(ctx)[:] = self.initial_positions()
            force.view(ctx)[:] = 0.0
            partners.view(ctx)[:] = self.partner_table()
        for _ in range(self.iterations):
            yield from omp.parallel_for("forces")
            yield from omp.parallel_for("integrate")
        yield from self.collect(ctx, ["pos", "force"])

    # -- verification ------------------------------------------------------------
    def reference(self) -> dict:
        x = self.initial_positions()
        table = self.partner_table()
        f = np.zeros(self.natoms)
        for _ in range(self.iterations):
            f = self.pair_force(x[:, None], x[table]).sum(axis=1)
            x = x + self.DT * f
        return {"pos": x, "force": f}
