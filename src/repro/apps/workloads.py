"""Workload presets: the paper's configurations plus scaled-down versions.

``PAPER`` holds the exact Table 1 configurations (run these traced — the
materialized data paths at 48 MB × 1000 iterations are meant for real
hardware, not a unit test).  ``BENCH`` keeps the access-pattern *shape*
(unaligned Jacobi rows, page-aligned Gauss rows, power-of-two FFT planes,
irregular NBF gathers) at sizes the simulator sweeps in seconds.
``TINY`` is for materialized correctness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from .base import AppKernel
from .fft3d import FFT3D
from .gauss import Gauss
from .jacobi import Jacobi
from .nbf import NBF


@dataclass(frozen=True)
class Workload:
    """A named, reproducible kernel configuration."""

    name: str
    factory: Callable[[], AppKernel]
    #: Shared-memory footprint the paper reports for this configuration
    #: (None for scaled presets).
    paper_shared_mb: float | None = None

    def make(self) -> AppKernel:
        return self.factory()


#: Table 1's exact configurations.
PAPER: Dict[str, Workload] = {
    "gauss": Workload("gauss", lambda: Gauss(n=3072), paper_shared_mb=48.0),
    "jacobi": Workload(
        "jacobi", lambda: Jacobi(n=2500, iterations=1000), paper_shared_mb=47.8
    ),
    "fft3d": Workload(
        "fft3d", lambda: FFT3D(nx=128, ny=64, nz=64, iterations=100),
        paper_shared_mb=42.0,
    ),
    "nbf": Workload(
        "nbf", lambda: NBF(natoms=131072, npartners=80, iterations=100),
        paper_shared_mb=52.0,
    ),
}

#: Scaled presets for the benchmark harness (shape-preserving).
BENCH: Dict[str, Workload] = {
    "gauss": Workload("gauss", lambda: Gauss(n=512)),
    "jacobi": Workload("jacobi", lambda: Jacobi(n=700, iterations=60)),
    "fft3d": Workload("fft3d", lambda: FFT3D(nx=64, ny=64, nz=32, iterations=8)),
    "nbf": Workload("nbf", lambda: NBF(natoms=8192, npartners=16, iterations=25)),
}

#: Tiny presets for materialized correctness tests.
TINY: Dict[str, Workload] = {
    "gauss": Workload("gauss", lambda: Gauss(n=48)),
    "jacobi": Workload("jacobi", lambda: Jacobi(n=32, iterations=8)),
    "fft3d": Workload("fft3d", lambda: FFT3D(nx=8, ny=8, nz=8, iterations=3)),
    "nbf": Workload("nbf", lambda: NBF(natoms=256, npartners=8, iterations=5)),
}

APP_NAMES = ("gauss", "jacobi", "fft3d", "nbf")
