"""Benchmark harness: paper data, calibration, experiment runner,
adaptation-cost methodology, and report formatting."""

from .analysis import (
    LinkReport,
    TimeBreakdown,
    adaptation_timeline,
    breakdown_table,
    busiest_links,
    link_reports,
    link_table,
    speedup_table,
    time_breakdown,
)
from .adaptation_cost import (
    adaptation_delay,
    average_nprocs,
    interpolated_reference,
    per_adaptation_summary,
)
from .model import LeaveCostModel, MigrationCostModel, predicted_max_link_bytes
from .calibrate import (
    BENCH_CALIBRATED,
    PAPER_CALIBRATED,
    calibrated_rates,
    expected_1node_seconds,
    make_fft3d,
    make_gauss,
    make_jacobi,
    make_nbf,
)
from .harness import ExperimentResult, nonadaptive_times
from .perf import (
    PerfScenario,
    calibrate_spin,
    compare_to_baseline,
    ratio_confidence_interval,
    run_parallel_check,
    run_perfbench,
    run_scenario_paired,
)
from .recovery import (
    RecoveryPoint,
    ResumableJacobi,
    make_recovery_jacobi,
    recovery_sweep,
    sweep_rows,
)
from .paper_data import (
    ADAPTATION_POINT_SPACING,
    FIGURE3_MOVED,
    MICRO,
    MIGRATION_COST,
    TABLE1,
    TABLE2,
    speedup,
)
from .reporting import format_table, ratio_note


def __getattr__(name):
    """Deprecated package-level entrypoints (PEP 562).

    ``run_experiment`` predates the :mod:`repro.api` facade; new code
    should build a :class:`~repro.exec.spec.ScenarioSpec` and call
    :func:`repro.api.run` (see ``docs/PROTOCOL.md`` §8).  The name keeps
    working one release behind a :class:`DeprecationWarning`.
    """
    if name == "run_experiment":
        import warnings

        warnings.warn(
            "repro.bench.run_experiment is deprecated; use repro.api.run "
            "with a ScenarioSpec (docs/PROTOCOL.md §8)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .harness import run_experiment

        return run_experiment
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ADAPTATION_POINT_SPACING",
    "BENCH_CALIBRATED",
    "ExperimentResult",
    "FIGURE3_MOVED",
    "MICRO",
    "MIGRATION_COST",
    "PAPER_CALIBRATED",
    "TABLE1",
    "TABLE2",
    "LeaveCostModel",
    "LinkReport",
    "MigrationCostModel",
    "predicted_max_link_bytes",
    "TimeBreakdown",
    "adaptation_delay",
    "adaptation_timeline",
    "breakdown_table",
    "busiest_links",
    "link_reports",
    "link_table",
    "speedup_table",
    "time_breakdown",
    "average_nprocs",
    "calibrated_rates",
    "expected_1node_seconds",
    "format_table",
    "interpolated_reference",
    "make_fft3d",
    "make_gauss",
    "make_jacobi",
    "make_nbf",
    "nonadaptive_times",
    "PerfScenario",
    "calibrate_spin",
    "compare_to_baseline",
    "run_parallel_check",
    "ratio_confidence_interval",
    "run_perfbench",
    "run_scenario_paired",
    "per_adaptation_summary",
    "ratio_note",
    "run_experiment",
    "speedup",
    "RecoveryPoint",
    "ResumableJacobi",
    "make_recovery_jacobi",
    "recovery_sweep",
    "sweep_rows",
]
