"""The paper's adaptation-cost measurement methodology (§5.3, §5.4).

"The average adaptation delay is calculated by comparing the measured
runtime for the adaptive run with the computed time of a non-adaptive run
for the same average number of nodes.  Since the average number of nodes
is always an integer in the non-adaptive case, we interpolate the results
of the non-adaptive executions to obtain the reference execution time."

Interpolation is done in *work rate* (1/time), because runtime of a
compute-bound run scales ~1/nprocs — interpolating raw times between node
counts would systematically overestimate the reference.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .harness import ExperimentResult


def average_nprocs(result: ExperimentResult, start_nprocs: int) -> float:
    """Time-weighted mean team size over an adaptive run."""
    total = result.runtime_seconds
    if total <= 0:
        return float(start_nprocs)
    spans: List[Tuple[float, int]] = []
    t_prev = 0.0
    n_prev = start_nprocs
    for record in result.adapt_records:
        spans.append((record.time - t_prev, n_prev))
        t_prev = record.time
        n_prev = record.nprocs_after
    spans.append((total - t_prev, n_prev))
    weighted = sum(max(0.0, dt) * n for dt, n in spans)
    return weighted / total


def interpolated_reference(times: Dict[int, float], avg_nprocs: float) -> float:
    """Non-adaptive runtime interpolated at a fractional node count."""
    if not times:
        raise ValueError("need at least one non-adaptive reference time")
    counts = sorted(times)
    if avg_nprocs <= counts[0]:
        return times[counts[0]]
    if avg_nprocs >= counts[-1]:
        return times[counts[-1]]
    lo = max(c for c in counts if c <= avg_nprocs)
    hi = min(c for c in counts if c >= avg_nprocs)
    if lo == hi:
        return times[lo]
    # interpolate linearly in work rate (1/time)
    w = (avg_nprocs - lo) / (hi - lo)
    rate = (1.0 - w) / times[lo] + w / times[hi]
    return 1.0 / rate


def adaptation_delay(
    adaptive: ExperimentResult,
    reference_times: Dict[int, float],
    start_nprocs: int,
) -> Tuple[float, float]:
    """(average seconds per adaptation, total delay) — the paper's metric."""
    if adaptive.adaptations == 0:
        return 0.0, 0.0
    avg_n = average_nprocs(adaptive, start_nprocs)
    reference = interpolated_reference(reference_times, avg_n)
    total_delay = adaptive.runtime_seconds - reference
    return total_delay / adaptive.adaptations, total_delay


def per_adaptation_summary(adaptive: ExperimentResult) -> List[dict]:
    """Direct per-adaptation costs from the runtime's own records."""
    return [
        {
            "time": r.time,
            "joins": r.joins,
            "leaves": r.leaves,
            "urgent": r.urgent_leaves,
            "duration": r.duration,
            "traffic_bytes": r.traffic_bytes,
            "max_link_bytes": r.max_link_bytes,
            "nprocs": (r.nprocs_before, r.nprocs_after),
        }
        for r in adaptive.adapt_records
    ]
