"""Post-run analysis: where did the time and the bytes go.

Complements the §5.4 methodology: per-process time breakdowns (compute vs
fault stalls vs synchronization), per-link traffic/utilization (the §5.4
bottleneck metric), and speedup tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .reporting import format_table


@dataclass(frozen=True)
class TimeBreakdown:
    """One process's accounting of a run."""

    pid: int
    compute: float
    fault_wait: float
    barrier_wait: float
    lock_wait: float

    @property
    def accounted(self) -> float:
        return self.compute + self.fault_wait + self.barrier_wait + self.lock_wait

    def overhead_fraction(self, runtime: float) -> float:
        """Share of the run this process spent not computing."""
        if runtime <= 0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - self.compute / runtime))


def time_breakdown(result) -> List[TimeBreakdown]:
    """Per-process breakdowns from a RunResult/ExperimentResult."""
    per_process = getattr(result, "per_process", None)
    if per_process is None:
        per_process = {p: proc.stats for p, proc in result.runtime.procs.items()}
    out = []
    for pid in sorted(per_process):
        s = per_process[pid]
        out.append(
            TimeBreakdown(
                pid=pid,
                compute=s.compute_time,
                fault_wait=s.fault_wait_time,
                barrier_wait=s.barrier_wait_time,
                lock_wait=s.lock_wait_time,
            )
        )
    return out


def breakdown_table(result, runtime_seconds: Optional[float] = None) -> str:
    """Rendered per-process time-breakdown table."""
    total = runtime_seconds or result.runtime_seconds
    rows = []
    for b in time_breakdown(result):
        rows.append([
            b.pid,
            b.compute,
            b.fault_wait,
            b.barrier_wait,
            b.lock_wait,
            f"{100 * b.overhead_fraction(total):.1f}%",
        ])
    return format_table(
        ["pid", "compute (s)", "fault wait (s)", "barrier wait (s)",
         "lock wait (s)", "overhead"],
        rows,
        title=f"Time breakdown over {total:.3f}s",
    )


@dataclass(frozen=True)
class LinkReport:
    """Traffic and utilization of one directional link."""

    name: str
    bytes: int
    messages: int
    utilization: float


def link_reports(result) -> List[LinkReport]:
    """Per-link traffic from the run's switch (needs result.runtime)."""
    runtime = result.runtime
    elapsed = result.runtime_seconds
    switch = runtime.switch
    out = []
    for links in (switch.uplinks, switch.downlinks):
        for node_id in sorted(links):
            link = links[node_id]
            out.append(
                LinkReport(
                    name=link.name,
                    bytes=link.bytes_carried,
                    messages=link.messages_carried,
                    utilization=link.utilization(elapsed),
                )
            )
    return out


def busiest_links(result, top: int = 5) -> List[LinkReport]:
    """The §5.4 bottleneck view: links ordered by bytes carried."""
    return sorted(link_reports(result), key=lambda l: (-l.bytes, l.name))[:top]


def link_table(result, top: int = 10) -> str:
    rows = [
        [l.name, l.bytes, l.messages, f"{100 * l.utilization:.2f}%"]
        for l in busiest_links(result, top)
    ]
    return format_table(
        ["link", "bytes", "messages", "utilization"],
        rows,
        title="Busiest directional links (§5.4: the max determines adaptation cost)",
    )


def speedup_table(times_by_nprocs: Dict[int, float]) -> str:
    """Speedup/efficiency table from {nprocs: runtime}."""
    if 1 not in times_by_nprocs:
        raise ValueError("need the 1-process time as the baseline")
    t1 = times_by_nprocs[1]
    rows = []
    for n in sorted(times_by_nprocs):
        t = times_by_nprocs[n]
        s = t1 / t if t > 0 else float("inf")
        rows.append([n, t, f"{s:.2f}", f"{100 * s / n:.1f}%"])
    return format_table(
        ["procs", "time (s)", "speedup", "efficiency"],
        rows,
        title="Scaling",
    )


def adaptation_timeline(result) -> List[dict]:
    """Adaptation events of a run in chronological, plottable form."""
    out = []
    for rec in result.adapt_records:
        out.append(
            {
                "time": rec.time,
                "kind": (
                    "urgent-leave" if rec.urgent_leaves
                    else "leave" if rec.leaves
                    else "join"
                ),
                "nodes": rec.joins + rec.leaves + rec.urgent_leaves,
                "team": (rec.nprocs_before, rec.nprocs_after),
                "cost": rec.duration,
                "drained_pages": rec.drained_pages,
                "max_link_bytes": rec.max_link_bytes,
            }
        )
    return out
