"""Compute-rate calibration against Table 1's 1-node column.

The simulator charges application CPU time through per-operation rates.
Rather than hard-coding them, this module *derives* each kernel's rates
from the paper's own 1-node runtimes and the kernel's analytic operation
count — then the multi-node runtimes, traffic, and adaptation costs are
predictions of the protocol + network simulation, which is exactly what
the reproduction needs to test.
"""

from __future__ import annotations

from math import log2
from typing import Callable, Dict

from ..apps import FFT3D, Gauss, Jacobi, NBF, AppKernel
from .paper_data import TABLE1

#: Fixed intra-kernel rate ratios (secondary knobs; the single primary
#: rate per kernel is what calibration solves for).
JACOBI_COPY_FRACTION = 0.25  # copy pass costs 1/4 of an update pass
FFT_TRANSPOSE_FRACTION = 0.10  # transpose move vs one butterfly level
NBF_INTEGRATE_FRACTION = 0.01  # integration vs one pair interaction


def jacobi_ops(n: int, iterations: int) -> float:
    """Grid-point updates charged at the update rate (incl. weighted copy)."""
    return n * n * iterations * (1.0 + JACOBI_COPY_FRACTION)


def gauss_ops(n: int, iterations: int) -> float:
    """Matrix elements updated across all elimination steps."""
    return float(sum((n - 1 - k) * (n - k) for k in range(iterations)))


def fft_ops(nx: int, ny: int, nz: int, iterations: int) -> float:
    """Butterfly-rate-weighted operation count per run."""
    points = nx * ny * nz
    levels = log2(nx) + log2(ny) + log2(nz)
    per_iter = points * levels + points * FFT_TRANSPOSE_FRACTION
    return per_iter * iterations


def nbf_ops(natoms: int, npartners: int, iterations: int) -> float:
    """Pair interactions (integration folded in at its fixed ratio)."""
    return natoms * iterations * (npartners + NBF_INTEGRATE_FRACTION)


def calibrated_rates() -> Dict[str, float]:
    """Primary per-op rate for each kernel, from Table 1's 1-node times."""
    return {
        "jacobi": TABLE1[("jacobi", 1)].time_standard / jacobi_ops(2500, 1000),
        "gauss": TABLE1[("gauss", 1)].time_standard / gauss_ops(3072, 3071),
        "fft3d": TABLE1[("fft3d", 1)].time_standard / fft_ops(128, 64, 64, 100),
        "nbf": TABLE1[("nbf", 1)].time_standard / nbf_ops(131072, 80, 100),
    }


def make_jacobi(n: int, iterations: int, **kw) -> Jacobi:
    rate = calibrated_rates()["jacobi"]
    return Jacobi(
        n=n,
        iterations=iterations,
        update_rate=rate,
        copy_rate=rate * JACOBI_COPY_FRACTION,
        **kw,
    )


def make_gauss(n: int, iterations: int | None = None, **kw) -> Gauss:
    rate = calibrated_rates()["gauss"]
    return Gauss(n=n, iterations=iterations, update_rate=rate, **kw)


def make_fft3d(nx: int, ny: int, nz: int, iterations: int, **kw) -> FFT3D:
    rate = calibrated_rates()["fft3d"]
    return FFT3D(
        nx=nx,
        ny=ny,
        nz=nz,
        iterations=iterations,
        butterfly_rate=rate,
        transpose_rate=rate * FFT_TRANSPOSE_FRACTION,
        **kw,
    )


def make_nbf(natoms: int, npartners: int, iterations: int, **kw) -> NBF:
    rate = calibrated_rates()["nbf"]
    return NBF(
        natoms=natoms,
        npartners=npartners,
        iterations=iterations,
        interaction_rate=rate,
        integrate_rate=rate * NBF_INTEGRATE_FRACTION,
        **kw,
    )


#: Calibrated factories at the *paper* problem sizes.
PAPER_CALIBRATED: Dict[str, Callable[[], AppKernel]] = {
    "jacobi": lambda: make_jacobi(2500, 1000),
    "gauss": lambda: make_gauss(3072),
    "fft3d": lambda: make_fft3d(128, 64, 64, 100),
    "nbf": lambda: make_nbf(131072, 80, 100),
}

#: Calibrated factories at harness scale: same access-pattern shape
#: (alignment properties preserved), runs in seconds under the simulator.
BENCH_CALIBRATED: Dict[str, Callable[[], AppKernel]] = {
    "jacobi": lambda: make_jacobi(700, 60),
    "gauss": lambda: make_gauss(512),
    "fft3d": lambda: make_fft3d(64, 64, 32, 8),
    "nbf": lambda: make_nbf(8192, 16, 25),
}

#: Expected 1-node simulated runtime of a calibrated kernel (seconds).
def expected_1node_seconds(app: AppKernel) -> float:
    rates = calibrated_rates()
    if isinstance(app, Jacobi):
        return jacobi_ops(app.n, app.iterations) * rates["jacobi"]
    if isinstance(app, Gauss):
        return gauss_ops(app.n, app.iterations) * rates["gauss"]
    if isinstance(app, FFT3D):
        return fft_ops(app.nx, app.ny, app.nz, app.iterations) * rates["fft3d"]
    if isinstance(app, NBF):
        return nbf_ops(app.natoms, app.npartners, app.iterations) * rates["nbf"]
    raise TypeError(f"unknown kernel {type(app)}")
