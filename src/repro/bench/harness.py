"""Experiment harness: build a system, run a kernel, collect everything.

One entry point (:func:`run_experiment`) covers every configuration the
paper's evaluation needs: standard vs adaptive runtime, any team size,
scripted or generated adapt events, traced or materialized kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..apps import AppKernel
from ..cluster import NodePool
from ..config import SystemConfig
from ..core import AdaptiveRuntime
from ..dsm import TmkRuntime
from ..network import TrafficSnapshot, build_topology
from ..simcore import Simulator


@dataclass
class ExperimentResult:
    """Everything one run produces."""

    app_name: str
    nprocs: int
    adaptive: bool
    runtime_seconds: float
    traffic: TrafficSnapshot
    adaptations: int
    adapt_records: List[Any]
    migrations: List[Any]
    forks: int
    app: AppKernel
    runtime: Any = field(repr=False, default=None)
    #: :class:`~repro.core.recovery.RecoveryRecord` per crash recovery.
    recoveries: List[Any] = field(default_factory=list)
    dropped: int = 0
    retransmissions: int = 0
    heartbeats_sent: int = 0
    heartbeat_misses: int = 0
    false_suspicions: int = 0
    #: The underlying :class:`~repro.dsm.runtime.RunResult`.
    run_result: Any = field(repr=False, default=None)
    #: :class:`~repro.obs.CostBreakdown` when the run was observed.
    cost_breakdown: Any = None

    @property
    def pages(self) -> int:
        return self.traffic.pages

    @property
    def megabytes(self) -> float:
        return self.traffic.megabytes

    @property
    def messages(self) -> int:
        return self.traffic.messages

    @property
    def diffs(self) -> int:
        return self.traffic.diffs


def run_experiment(
    app_factory: Callable[[], AppKernel],
    nprocs: int,
    adaptive: bool = False,
    extra_nodes: int = 0,
    cfg: Optional[SystemConfig] = None,
    materialized: bool = False,
    events: Optional[Callable[[Any], Any]] = None,
    trace: bool = False,
    runtime_kwargs: Optional[Dict[str, Any]] = None,
    obs: Optional[Any] = None,
) -> ExperimentResult:
    """Run one kernel to completion under a fresh simulated NOW.

    ``events`` is called with the runtime before the run starts; use it to
    install an :class:`~repro.cluster.EventScript`, an alternator, or to
    schedule ``submit_join``/``submit_leave`` calls directly.

    ``obs`` is a :class:`~repro.obs.Registry` to record spans/counters
    into (None runs uninstrumented — the pre-observability behaviour).
    """
    cfg = cfg or SystemConfig()
    sim = Simulator(trace=trace, obs=obs, batch=cfg.perf.macro_events)
    # cfg.perf.topology == "star" constructs the plain Switch exactly as
    # before; "fattree" swaps in the hierarchical interconnect (§11).
    switch = build_topology(sim, cfg.network, cfg.perf)
    pool = NodePool(sim, switch)
    team_nodes = pool.add_nodes(nprocs)
    pool.add_nodes(extra_nodes)
    if adaptive:
        runtime = AdaptiveRuntime(
            sim, cfg, team_nodes, pool, materialized=materialized,
            **(runtime_kwargs or {}),
        )
    else:
        runtime = TmkRuntime(sim, cfg, team_nodes, materialized=materialized)
    app = app_factory()
    # Traced runs measure the computation, not the verification gather.
    app.do_collect = materialized
    program = app.program(runtime)
    if events is not None:
        events(runtime)
    result = runtime.run(program)
    return ExperimentResult(
        app_name=app.name,
        nprocs=nprocs,
        adaptive=adaptive,
        runtime_seconds=result.runtime_seconds,
        traffic=result.traffic,
        adaptations=result.adaptations,
        adapt_records=result.adapt_log,
        migrations=list(getattr(runtime, "migrations", [])),
        forks=result.forks,
        app=app,
        runtime=runtime,
        recoveries=list(result.recoveries),
        dropped=result.network.dropped,
        retransmissions=result.network.retransmissions,
        heartbeats_sent=result.detector.heartbeats_sent,
        heartbeat_misses=result.detector.heartbeat_misses,
        false_suspicions=result.detector.false_suspicions,
        run_result=result,
        cost_breakdown=result.cost_breakdown,
    )


def nonadaptive_times(
    app_factory: Callable[[], AppKernel],
    proc_counts: List[int],
    cfg: Optional[SystemConfig] = None,
    materialized: bool = False,
) -> Dict[int, float]:
    """Standard-system runtimes at several team sizes (the reference data
    the paper interpolates when computing adaptation delay)."""
    return {
        n: run_experiment(
            app_factory, n, adaptive=False, cfg=cfg, materialized=materialized
        ).runtime_seconds
        for n in proc_counts
    }
