"""The paper's published numbers, machine-readable.

Sources: Table 1 (runtimes & traffic, no adapt events), Table 2 (average
adaptation cost), §5.1 (micro-benchmarks), §5.3 (migration costs),
Figure 3 (data-movement fractions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Table1Row:
    """One (application, node-count) row of Table 1."""

    app: str
    nodes: int
    time_standard: float
    time_adaptive: float
    pages: int
    megabytes: float
    messages: int
    diffs: int


TABLE1: Dict[Tuple[str, int], Table1Row] = {
    (row.app, row.nodes): row
    for row in [
        Table1Row("gauss", 8, 243.46, 242.14, 80_577, 320.54, 236_453, 0),
        Table1Row("gauss", 4, 398.07, 397.23, 41_463, 164.62, 129_021, 0),
        Table1Row("gauss", 1, 1_404.20, 1_408.95, 0, 0.0, 0, 0),
        Table1Row("jacobi", 8, 215.06, 216.17, 58_041, 254.50, 221_631, 27_993),
        Table1Row("jacobi", 4, 361.38, 362.88, 30_741, 131.17, 115_840, 11_994),
        Table1Row("jacobi", 1, 1_283.63, 1_287.02, 0, 0.0, 0, 0),
        Table1Row("fft3d", 8, 83.50, 81.95, 198_471, 779.23, 416_570, 0),
        Table1Row("fft3d", 4, 138.20, 133.51, 170_115, 667.16, 354_018, 0),
        Table1Row("fft3d", 1, 289.90, 285.94, 0, 0.0, 0, 0),
        Table1Row("nbf", 8, 535.89, 534.74, 353_056, 1_388.27, 1_182_292, 0),
        Table1Row("nbf", 4, 714.78, 715.36, 183_600, 721.85, 618_443, 0),
        Table1Row("nbf", 1, 2_398.79, 2_299.20, 0, 0.0, 0, 0),
    ]
}


@dataclass(frozen=True)
class Table2Cell:
    """Average seconds per adaptation (Table 2)."""

    app: str
    leaver: str  # "end" | "middle"
    nprocs: int  # adaptations between n and n-1
    seconds: float


TABLE2: Dict[Tuple[str, str, int], Table2Cell] = {
    (c.app, c.leaver, c.nprocs): c
    for c in [
        Table2Cell("gauss", "end", 8, 4.19),
        Table2Cell("gauss", "end", 6, 4.60),
        Table2Cell("gauss", "middle", 8, 5.13),
        Table2Cell("gauss", "middle", 6, 5.38),
        Table2Cell("jacobi", "end", 8, 2.77),
        Table2Cell("jacobi", "end", 6, 3.78),
        Table2Cell("jacobi", "middle", 8, 6.25),
        Table2Cell("jacobi", "middle", 6, 8.75),
        Table2Cell("fft3d", "end", 8, 1.87),
        Table2Cell("fft3d", "end", 6, 2.50),
        Table2Cell("fft3d", "middle", 8, 4.17),
        Table2Cell("fft3d", "middle", 6, 5.07),
        Table2Cell("nbf", "end", 8, 1.01),
        Table2Cell("nbf", "end", 6, 2.81),
        Table2Cell("nbf", "middle", 8, 1.79),
        Table2Cell("nbf", "middle", 6, 3.96),
    ]
}


@dataclass(frozen=True)
class MicroBenchmarks:
    """§5.1 testbed measurements (seconds)."""

    rtt_1byte: float = 126e-6
    lock_min: float = 178e-6
    lock_max: float = 272e-6
    diff_min: float = 313e-6
    diff_max: float = 1_544e-6
    page_transfer: float = 1_308e-6
    spawn_min: float = 0.6
    spawn_max: float = 0.8
    migration_rate: float = 8.1e6


MICRO = MicroBenchmarks()

#: §5.3 direct migration cost per application (seconds).
MIGRATION_COST: Dict[str, float] = {
    "jacobi": 6.70,
    "fft3d": 6.13,
    "gauss": 6.90,
    "nbf": 7.66,
}

#: Figure 3 data-movement fractions ("up to"), 8 -> 7 processes.
FIGURE3_MOVED = {
    "end": 0.50,  # leaving pid 7
    "middle": 0.30,  # leaving pid 3 (exact analytic value: 2/7)
}

#: §5.3: average time between successive adaptation points (seconds).
ADAPTATION_POINT_SPACING = {
    "gauss": (0.1, 0.2),
    "jacobi": (0.1, 0.2),
    "fft3d": (0.1, 0.2),
    "nbf": (2.0, 3.0),  # "about 2.5 seconds"
}


def speedup(app: str, nodes: int) -> float:
    """Published speedup of the standard system over 1 node."""
    return TABLE1[(app, 1)].time_standard / TABLE1[(app, nodes)].time_standard
