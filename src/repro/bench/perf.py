"""Wall-clock performance benchmarks of the simulator engine itself.

Everything else in :mod:`repro.bench` measures *simulated* quantities
(Table 1 runtimes, traffic, adaptation cost), which are deterministic and
machine-independent.  This module measures how fast the engine produces
them: wall-clock seconds, executed events per second, and simulated
seconds per wall second, for end-to-end scenarios plus microbenchmarks of
the protocol hot paths.

Raw wall-clock numbers are machine-dependent, so every report includes a
*calibration*: the events/second of a bare simulator spinning no-op
events on the same machine and interpreter.  ``normalized_score`` (scenario
events/sec divided by spin events/sec) cancels machine speed to first
order and is what the regression gate compares, letting a committed
baseline from one machine guard CI runs on another.

Used by ``python -m repro perfbench`` (see ``--baseline`` /
``--max-regression`` for the CI gate) which writes ``BENCH_perf.json``.
"""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec import ScenarioSpec

SCHEMA = "repro-perfbench/2"

#: Events in the calibration spin loop.
SPIN_EVENTS = 100_000

#: Events in the short spin paired with each scenario repeat.
PAIR_SPIN_EVENTS = 30_000


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------
def calibrate_spin(n_events: int = SPIN_EVENTS) -> float:
    """Events/second of a bare simulator executing chained no-op events.

    This is the ceiling of the event loop on this machine — heap pop,
    time advance, callback dispatch, nothing else.
    """
    from ..simcore import Simulator

    sim = Simulator()

    remaining = n_events

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.schedule(1.0e-9, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return n_events / wall if wall > 0 else float("inf")


# ---------------------------------------------------------------------------
# microbenchmarks of the protocol hot paths
# ---------------------------------------------------------------------------
def _build_micro_runtime():
    """A minimal 2-node traced runtime for direct engine-method timing."""
    from ..cluster import NodePool
    from ..config import SystemConfig
    from ..dsm import TmkRuntime
    from ..network import Switch
    from ..simcore import Simulator

    cfg = SystemConfig()
    sim = Simulator()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = TmkRuntime(sim, cfg, pool.add_nodes(2), materialized=False)
    return rt


def micro_notice_apply(n_notices: int = 50_000) -> float:
    """Notices/second through ``apply_notices`` (the engine's hottest loop)."""
    from ..dsm.intervals import WriteNotice
    from ..dsm.page import Protocol
    from ..dsm.vectorclock import VectorClock

    rt = _build_micro_runtime()
    proc = rt.procs[0]
    seg = rt.space.alloc("micro", n_notices * 8, protocol=Protocol.MULTIPLE_WRITER, home=1)
    pages = list(seg.pages)
    notices = []
    vc = VectorClock.zeros(2)
    for seq in range(1, n_notices // len(pages) + 2):
        vc = vc.copy()
        vc.advance(1, seq)
        for page in pages:
            notices.append(WriteNotice(proc=1, seq=seq, page=page, vc=vc))
            if len(notices) >= n_notices:
                break
        if len(notices) >= n_notices:
            break
    sender_vc = notices[-1].vc
    t0 = time.perf_counter()
    proc.apply_notices(notices, sender_vc)
    wall = time.perf_counter() - t0
    return len(notices) / wall if wall > 0 else float("inf")


def micro_plan_lookup(n_lookups: int = 200_000) -> float:
    """Plan-cache hits/second on a recurring Jacobi-like access pattern."""
    from ..dsm.memory import AddressSpace
    from ..dsm.page import Protocol

    space = AddressSpace(page_size=4096)
    seg = space.alloc("micro", 4096 * 64, protocol=Protocol.MULTIPLE_WRITER)
    cache = space.plan_cache
    reads = ((0, 4096 * 16),)
    writes = ((4096 * 4 + 128, 4096 * 12 - 64),)
    cache.lookup(seg, reads, writes, 4096)  # prime the memo
    t0 = time.perf_counter()
    for _ in range(n_lookups):
        cache.lookup(seg, reads, writes, 4096)
    wall = time.perf_counter() - t0
    return n_lookups / wall if wall > 0 else float("inf")


def micro_diff_apply(n_applies: int = 20_000) -> float:
    """Diff applications/second on the contiguous-scatter path.

    The diff has ~25 dirty runs, so :meth:`Diff.apply` takes its fancy-index
    branch — one scatter from the contiguous ``buf`` via the cached
    positions array, the pattern every multi-run fetch hits.
    """
    import numpy as np

    from ..dsm.diffs import make_diff
    from ..dsm.vectorclock import VectorClock

    rng = np.random.default_rng(0xD1FF)
    twin = np.zeros(4096, dtype=np.uint8)
    current = twin.copy()
    for start in range(0, 4096, 170):  # ~25 sparse dirty runs
        end = min(start + 48, 4096)
        current[start:end] = rng.integers(1, 255, size=end - start, dtype=np.uint8)
    diff = make_diff(
        proc=0, seq=1, page=0, vc=VectorClock([1, 0]),
        declared_ranges=[], twin=twin, current=current,
    )
    target = np.zeros(4096, dtype=np.uint8)
    diff.apply(target)  # warm the cached (starts, ends, offsets) index
    t0 = time.perf_counter()
    for _ in range(n_applies):
        diff.apply(target)
    wall = time.perf_counter() - t0
    return n_applies / wall if wall > 0 else float("inf")


def micro_vc_tick(n_ticks: int = 200_000) -> float:
    """tick+snapshot cycles/second on a width-8 clock.

    Each iteration snapshots the clock (freezing it) and then ticks it
    (forcing one copy-on-write detach) — exactly the per-interval-close
    pattern of the interned-clock scheme.
    """
    from ..dsm.vectorclock import VectorClock

    vc = VectorClock.zeros(8)
    t0 = time.perf_counter()
    for _ in range(n_ticks):
        vc.snapshot()
        vc.tick(3)
    wall = time.perf_counter() - t0
    return n_ticks / wall if wall > 0 else float("inf")


def run_micro() -> Dict[str, float]:
    """All microbenchmarks (ops/second each)."""
    return {
        "event_spin_per_sec": calibrate_spin(),
        "notice_apply_per_sec": micro_notice_apply(),
        "plan_lookup_per_sec": micro_plan_lookup(),
        "diff_apply_per_sec": micro_diff_apply(),
        "vc_tick_per_sec": micro_vc_tick(),
    }


# ---------------------------------------------------------------------------
# end-to-end scenarios (executed through the repro.exec engine)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PerfScenario:
    """One end-to-end engine benchmark: a declarative scenario spec."""

    name: str
    spec: "ScenarioSpec"

    @property
    def nprocs(self) -> int:
        return self.spec.nprocs


def scenarios(quick: bool = False, paper: bool = False) -> List[PerfScenario]:
    """The scenario list for this run.

    Default: the BENCH-preset Jacobi and Gauss on 8 nodes (the profiles
    that drove the hot-path engine work).  ``quick`` shrinks them for CI
    smoke runs; ``paper`` adds the full Table-1 Jacobi configuration
    (minutes of wall time).
    """
    from ..exec.spec import ScenarioSpec, spec_from_preset

    if quick:
        out = [
            PerfScenario("jacobi-8-quick", ScenarioSpec(
                kernel="jacobi", params={"n": 350, "iterations": 20},
                nprocs=8, calibrated=True, label="jacobi-8-quick")),
            PerfScenario("gauss-8-quick", ScenarioSpec(
                kernel="gauss", params={"n": 256, "iterations": 255},
                nprocs=8, calibrated=True, label="gauss-8-quick")),
            # Wide-cluster stressor: 32 nodes quadruple the per-barrier
            # notice fan-out (the O(nprocs^2 * pages) single-writer
            # rebroadcast arm) and the macro-event bucket widths.
            PerfScenario("gauss-32-quick", ScenarioSpec(
                kernel="gauss", params={"n": 192, "iterations": 95},
                nprocs=32, calibrated=True, label="gauss-32-quick")),
            # Wider still: 64 nodes double every fork/release wave's leg
            # count, so the flight-batched transport (PerfParams.
            # flight_batch) carries most of the wire traffic — the
            # scenario the PR 10 gate measures the batching win on.
            PerfScenario("gauss-64-quick", ScenarioSpec(
                kernel="gauss", params={"n": 192, "iterations": 47},
                nprocs=64, calibrated=True, label="gauss-64-quick")),
        ]
    else:
        # The BENCH workload presets with their stock (uncalibrated)
        # compute rates — identical simulations to the pre-engine suite,
        # so committed baselines carry over.
        out = [
            PerfScenario("jacobi-8", spec_from_preset(
                "bench", "jacobi", 8, calibrated=False, label="jacobi-8")),
            PerfScenario("gauss-8", spec_from_preset(
                "bench", "gauss", 8, calibrated=False, label="gauss-8")),
        ]
    if paper:
        out.append(PerfScenario("jacobi-8-paper", spec_from_preset(
            "paper", "jacobi", 8, calibrated=False, label="jacobi-8-paper")))
    return out


def _entry_from_result(result, wall: float, cached: bool = False) -> Dict[str, float]:
    """A report entry from a ScenarioResult + measured wall seconds."""
    entry = {
        "wall_seconds": wall,
        "sim_seconds": result.runtime_seconds,
        "events": result.events,
        "events_per_sec": result.events / wall if wall > 0 else float("inf"),
        "sim_per_wall": result.runtime_seconds / wall if wall > 0 else float("inf"),
        "messages": result.messages,
        "pages": result.pages,
        "diffs": result.diffs,
    }
    if cached:
        # Wall numbers replayed from the cache, not measured this run.
        entry["cached"] = True
    return entry


def run_scenario(scenario: PerfScenario, repeat: int = 1) -> Dict[str, float]:
    """Run one scenario ``repeat`` times; report the best wall time.

    The simulated outputs (runtime, traffic) are identical across repeats
    by construction — only the wall clock varies.
    """
    from ..api import run as api_run

    report = api_run(scenario.spec, repeat=repeat)
    return _entry_from_result(report.result, report.wall_seconds)


def run_scenario_paired(spec: "ScenarioSpec", repeats: int = 3):
    """``repeats`` interleaved (spin, scenario) measurement pairs.

    Each repeat re-calibrates a short no-op spin immediately before the
    scenario run and records the *paired* normalized score
    ``(events/wall) / spin`` — so machine-speed drift (thermal throttling,
    a neighbour stealing the core mid-suite) is cancelled per sample, not
    once per suite.  Returns ``(result, best_wall, samples)``; the sample
    list is what :func:`compare_to_baseline` feeds its confidence
    interval.
    """
    from ..api import run as api_run

    samples: List[float] = []
    best_wall = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        spin = calibrate_spin(PAIR_SPIN_EVENTS)
        rep = api_run(spec)
        wall = rep.wall_seconds
        result = rep.result
        if wall < best_wall:
            best_wall = wall
        if wall > 0 and spin > 0:
            samples.append((result.events / wall) / spin)
    return result, best_wall, samples


# ---------------------------------------------------------------------------
# parallel-sweep check: the engine's --jobs speedup, measured
# ---------------------------------------------------------------------------
def run_parallel_check(
    n_scenarios: int = 8, jobs: Optional[int] = None,
    n: int = 280, iterations: int = 16,
) -> Dict[str, float]:
    """Measure ``run_specs`` wall-clock speedup: serial vs ``jobs`` workers.

    Builds ``n_scenarios`` equal-cost, distinct-digest Jacobi scenarios
    (the seed field varies, so no two are cache-equivalent), runs the
    list with ``jobs=1`` (in-process serial — the legacy execution path)
    and again with the worker pool, and reports both walls plus the
    bitwise-identity verdict of the two result lists.
    """
    from ..api import sweep
    from ..exec.pool import default_jobs
    from ..exec.spec import ScenarioSpec

    jobs = jobs if jobs is not None else default_jobs()
    specs = [
        ScenarioSpec(
            kernel="jacobi", params={"n": n, "iterations": iterations},
            nprocs=8, calibrated=True, seed=0x5EED + k, label=f"par-{k}",
        )
        for k in range(n_scenarios)
    ]
    serial = sweep(specs, jobs=1)
    parallel = sweep(specs, jobs=jobs)
    identical = (
        [a.to_json() for a in serial.results]
        == [b.to_json() for b in parallel.results]
    )
    speedup = (
        serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds > 0 else float("inf")
    )
    return {
        "scenarios": len(specs),
        "jobs": parallel.jobs,
        "serial_wall_seconds": serial.wall_seconds,
        "parallel_wall_seconds": parallel.wall_seconds,
        "speedup": speedup,
        "identical": identical,
    }


# ---------------------------------------------------------------------------
# observability-identity check: obs on vs off must not change the model
# ---------------------------------------------------------------------------
def run_obs_identity_check(quick: bool = True) -> Dict:
    """Run each scenario with observability off and on; compare outputs.

    The obs layer records spans and counters *about* the simulation; it
    must never perturb the simulation itself.  This executes every
    perfbench scenario twice — once uninstrumented, once with a live
    :class:`~repro.obs.Registry` — and compares the canonical JSON of the
    two :class:`~repro.exec.ScenarioResult`\\ s (modelled runtime, traffic,
    event/message/page/diff counts).  Any difference is a leak of the
    instrumentation into the model.
    """
    from ..exec.pool import execute_spec
    from ..exec.result import ScenarioResult
    from ..obs import Registry

    def canonical(spec) -> str:
        exp, _ = execute_spec(spec)
        return ScenarioResult.from_experiment(
            exp, events=exp.runtime.sim.events_executed
        ).to_json()

    def canonical_obs(spec) -> str:
        obs = Registry()
        exp, _ = execute_spec(spec, obs=obs)
        return ScenarioResult.from_experiment(
            exp, events=exp.runtime.sim.events_executed
        ).to_json()

    checked = []
    mismatches = []
    for scenario in scenarios(quick=quick):
        checked.append(scenario.name)
        if canonical(scenario.spec) != canonical_obs(scenario.spec):
            mismatches.append(scenario.name)
    return {"scenarios": checked, "mismatches": mismatches,
            "identical": not mismatches}


# ---------------------------------------------------------------------------
# flight-identity check: flights on vs off must not change the model
# ---------------------------------------------------------------------------
def run_flight_identity_check(quick: bool = True) -> Dict:
    """Run each scenario with flight batching on and off; compare outputs.

    The flight fast path (``PerfParams.flight_batch``, PROTOCOL.md §13)
    must leave every simulated output — modelled runtime, traffic,
    event/message/page/diff counts — bitwise identical to the
    per-message reference transport.  Any mismatch means a flight
    changed the model, not just the host wall clock.
    """
    from ..exec.pool import execute_spec
    from ..exec.result import ScenarioResult

    def canonical(spec) -> str:
        exp, _ = execute_spec(spec)
        return ScenarioResult.from_experiment(
            exp, events=exp.runtime.sim.events_executed
        ).to_json()

    checked = []
    mismatches = []
    for scenario in scenarios(quick=quick):
        checked.append(scenario.name)
        spec = scenario.spec
        on = spec.replaced(perf={**dict(spec.perf), "flight_batch": True})
        off = spec.replaced(perf={**dict(spec.perf), "flight_batch": False})
        if canonical(on) != canonical(off):
            mismatches.append(scenario.name)
    return {"scenarios": checked, "mismatches": mismatches,
            "identical": not mismatches}


# ---------------------------------------------------------------------------
# profiling: the floor-hunting view, without ad-hoc instrumentation
# ---------------------------------------------------------------------------
def profile_scenarios(
    quick: bool = False, paper: bool = False, top: int = 25
) -> str:
    """cProfile each perfbench scenario; return the formatted top tables.

    One profiled pass per scenario, sorted by cumulative time and
    truncated to ``top`` rows — the view every "where did the wall clock
    go" hunt starts from.  Profiled walls are 2-4x the real ones
    (tracing overhead), so this never feeds the measurement path; it is
    a separate diagnostic pass.
    """
    import cProfile
    import io
    import pstats

    from ..exec.pool import execute_spec

    out = io.StringIO()
    for scenario in scenarios(quick=quick, paper=paper):
        profiler = cProfile.Profile()
        profiler.enable()
        execute_spec(scenario.spec)
        profiler.disable()
        out.write(f"\n== profile: {scenario.name} "
                  f"(top {top} by cumulative time) ==\n")
        stats = pstats.Stats(profiler, stream=out)
        stats.sort_stats("cumulative").print_stats(top)
    return out.getvalue()


# ---------------------------------------------------------------------------
# the full report + regression gate
# ---------------------------------------------------------------------------
def run_perfbench(
    quick: bool = False, paper: bool = False, repeat: int = 1,
    jobs: int = 1, cache=None, refresh: bool = False,
    parallel_check: bool = False,
) -> Dict:
    """Run calibration, microbenchmarks, and all scenarios; build the report.

    ``jobs`` shards the end-to-end scenarios across the
    :mod:`repro.exec` worker pool (each worker times its own scenario;
    with more workers than cores the absolute wall numbers degrade, but
    ``normalized_score`` still cancels machine speed to first order).
    ``cache`` (a :class:`~repro.exec.ResultCache`) replays previously
    measured entries — their wall numbers come from the run that stored
    them and are marked ``"cached": true``.

    Single-job uncached runs measure each scenario via
    :func:`run_scenario_paired`, recording per-repeat spin-normalized
    ``samples`` alongside the best-wall summary; those samples power the
    confidence-interval regression gate.  Sharded or cache-replayed runs
    keep the sweep path (no samples — cached walls and cross-worker
    timing cannot be paired honestly), and the gate falls back to the
    point comparison for them.
    """
    from ..api import sweep

    spin = calibrate_spin()
    micro = {
        "event_spin_per_sec": spin,
        "notice_apply_per_sec": micro_notice_apply(),
        "plan_lookup_per_sec": micro_plan_lookup(),
        "diff_apply_per_sec": micro_diff_apply(),
        "vc_tick_per_sec": micro_vc_tick(),
    }
    scen = scenarios(quick=quick, paper=paper)
    results: Dict[str, Dict[str, float]] = {}
    cache_stats = None
    if jobs == 1 and cache is None:
        for scenario in scen:
            result, wall, samples = run_scenario_paired(scenario.spec, repeat)
            entry = _entry_from_result(result, wall)
            entry["normalized_score"] = (
                entry["events_per_sec"] / spin if spin > 0 else 0.0
            )
            entry["samples"] = samples
            results[scenario.name] = entry
    else:
        outcome = sweep(
            [s.spec for s in scen], jobs=jobs, cache=cache, refresh=refresh,
            repeat=repeat,
        )
        cache_stats = (
            outcome.cache_stats.as_dict() if cache is not None else None
        )
        for scenario, task in zip(scen, outcome.outcomes):
            entry = _entry_from_result(task.result, task.wall_seconds,
                                       cached=task.cached)
            entry["normalized_score"] = (
                entry["events_per_sec"] / spin if spin > 0 else 0.0
            )
            results[scenario.name] = entry
    report = {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "repeat": repeat,
        "jobs": jobs,
        "cache": cache_stats,
        "calibration": {"spin_events_per_sec": spin, "spin_events": SPIN_EVENTS},
        "micro": micro,
        "results": results,
    }
    if parallel_check:
        report["parallel"] = run_parallel_check()
    return report


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)


# Two-sided 95% Student-t critical values; the largest tabulated df not
# exceeding the Welch estimate is used, which rounds the interval wider
# (conservative: harder to flag a regression by chance).
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131,
    20: 2.086, 25: 2.060, 30: 2.042, 60: 2.000, 120: 1.980,
}


def _t95(df: float) -> float:
    crit = _T95[1]
    for k in sorted(_T95):
        if k <= df:
            crit = _T95[k]
    return crit


def _geomean(samples: Sequence[float]) -> float:
    logs = [math.log(s) for s in samples if s > 0]
    return math.exp(sum(logs) / len(logs)) if logs else 0.0


def ratio_confidence_interval(
    new_samples: Sequence[float], base_samples: Sequence[float]
) -> Optional[Tuple[float, float]]:
    """95% CI for the geometric-mean score ratio new/base.

    Welch's t interval on the difference of mean log-scores (log space
    because the paired scores are ratios themselves, and wall-clock noise
    is multiplicative).  Returns multiplicative ``(lo, hi)`` bounds, or
    ``None`` when either side has fewer than two positive samples — the
    caller must then fall back to a point comparison.
    """
    a = [math.log(s) for s in new_samples if s > 0]
    b = [math.log(s) for s in base_samples if s > 0]
    if len(a) < 2 or len(b) < 2:
        return None
    n1, n2 = len(a), len(b)
    m1, m2 = sum(a) / n1, sum(b) / n2
    v1 = sum((x - m1) ** 2 for x in a) / (n1 - 1)
    v2 = sum((x - m2) ** 2 for x in b) / (n2 - 1)
    d = m1 - m2
    se2 = v1 / n1 + v2 / n2
    if se2 <= 0.0:
        return (math.exp(d), math.exp(d))
    # Welch–Satterthwaite degrees of freedom.
    df = se2 ** 2 / ((v1 / n1) ** 2 / (n1 - 1) + (v2 / n2) ** 2 / (n2 - 1))
    half = _t95(df) * math.sqrt(se2)
    return (math.exp(d - half), math.exp(d + half))


def compare_to_baseline(
    report: Dict, baseline: Dict, max_regression: float = 0.30
) -> List[Tuple[str, float, float, float]]:
    """Regressions of ``report`` vs ``baseline``.

    Two modes, chosen per scenario:

    * **Paired confidence-interval gate** — when both entries carry
      ``samples`` (the per-repeat spin-normalized scores recorded by
      single-job runs), the scenario is flagged only when the *entire*
      95% Welch interval for the geometric-mean ratio new/old lies below
      ``1 - max_regression``: the drop is statistically resolved, not a
      lucky or unlucky wall-clock draw.  An improvement, a wash, or an
      interval still straddling the allowance all pass.
    * **Point fallback** — when either side predates samples (older
      committed baselines, sharded or cache-replayed runs), the single
      ``normalized_score`` comparison is used unchanged.

    Returns ``(name, baseline_score, new_score, regression_fraction)``
    for every flagged scenario (geometric means in CI mode).  Scenarios
    present in only one report are ignored (presets may evolve).
    """
    regressions = []
    base_results = baseline.get("results", {})
    for name, entry in report.get("results", {}).items():
        base = base_results.get(name)
        if base is None:
            continue
        ci = ratio_confidence_interval(
            entry.get("samples") or (), base.get("samples") or ()
        )
        if ci is not None:
            _, hi = ci
            if hi < 1.0 - max_regression:
                old = _geomean(base["samples"])
                new = _geomean(entry["samples"])
                regressions.append((name, old, new, 1.0 - new / old))
            continue
        old = base.get("normalized_score", 0.0)
        new = entry.get("normalized_score", 0.0)
        if old <= 0:
            continue
        drop = 1.0 - new / old
        if drop > max_regression:
            regressions.append((name, old, new, drop))
    return regressions
