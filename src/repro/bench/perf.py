"""Wall-clock performance benchmarks of the simulator engine itself.

Everything else in :mod:`repro.bench` measures *simulated* quantities
(Table 1 runtimes, traffic, adaptation cost), which are deterministic and
machine-independent.  This module measures how fast the engine produces
them: wall-clock seconds, executed events per second, and simulated
seconds per wall second, for end-to-end scenarios plus microbenchmarks of
the protocol hot paths.

Raw wall-clock numbers are machine-dependent, so every report includes a
*calibration*: the events/second of a bare simulator spinning no-op
events on the same machine and interpreter.  ``normalized_score`` (scenario
events/sec divided by spin events/sec) cancels machine speed to first
order and is what the regression gate compares, letting a committed
baseline from one machine guard CI runs on another.

Used by ``python -m repro perfbench`` (see ``--baseline`` /
``--max-regression`` for the CI gate) which writes ``BENCH_perf.json``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

SCHEMA = "repro-perfbench/1"

#: Events in the calibration spin loop.
SPIN_EVENTS = 100_000


# ---------------------------------------------------------------------------
# calibration
# ---------------------------------------------------------------------------
def calibrate_spin(n_events: int = SPIN_EVENTS) -> float:
    """Events/second of a bare simulator executing chained no-op events.

    This is the ceiling of the event loop on this machine — heap pop,
    time advance, callback dispatch, nothing else.
    """
    from ..simcore import Simulator

    sim = Simulator()

    remaining = n_events

    def tick() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining > 0:
            sim.schedule(1.0e-9, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return n_events / wall if wall > 0 else float("inf")


# ---------------------------------------------------------------------------
# microbenchmarks of the protocol hot paths
# ---------------------------------------------------------------------------
def _build_micro_runtime():
    """A minimal 2-node traced runtime for direct engine-method timing."""
    from ..cluster import NodePool
    from ..config import SystemConfig
    from ..dsm import TmkRuntime
    from ..network import Switch
    from ..simcore import Simulator

    cfg = SystemConfig()
    sim = Simulator()
    pool = NodePool(sim, Switch(sim, cfg.network))
    rt = TmkRuntime(sim, cfg, pool.add_nodes(2), materialized=False)
    return rt


def micro_notice_apply(n_notices: int = 50_000) -> float:
    """Notices/second through ``apply_notices`` (the engine's hottest loop)."""
    from ..dsm.intervals import WriteNotice
    from ..dsm.page import Protocol
    from ..dsm.vectorclock import VectorClock

    rt = _build_micro_runtime()
    proc = rt.procs[0]
    seg = rt.space.alloc("micro", n_notices * 8, protocol=Protocol.MULTIPLE_WRITER, home=1)
    pages = list(seg.pages)
    notices = []
    vc = VectorClock.zeros(2)
    for seq in range(1, n_notices // len(pages) + 2):
        vc = vc.copy()
        vc.entries[1] = seq
        for page in pages:
            notices.append(WriteNotice(proc=1, seq=seq, page=page, vc=vc))
            if len(notices) >= n_notices:
                break
        if len(notices) >= n_notices:
            break
    sender_vc = notices[-1].vc
    t0 = time.perf_counter()
    proc.apply_notices(notices, sender_vc)
    wall = time.perf_counter() - t0
    return len(notices) / wall if wall > 0 else float("inf")


def micro_plan_lookup(n_lookups: int = 200_000) -> float:
    """Plan-cache hits/second on a recurring Jacobi-like access pattern."""
    from ..dsm.memory import AddressSpace
    from ..dsm.page import Protocol

    space = AddressSpace(page_size=4096)
    seg = space.alloc("micro", 4096 * 64, protocol=Protocol.MULTIPLE_WRITER)
    cache = space.plan_cache
    reads = ((0, 4096 * 16),)
    writes = ((4096 * 4 + 128, 4096 * 12 - 64),)
    cache.lookup(seg, reads, writes, 4096)  # prime the memo
    t0 = time.perf_counter()
    for _ in range(n_lookups):
        cache.lookup(seg, reads, writes, 4096)
    wall = time.perf_counter() - t0
    return n_lookups / wall if wall > 0 else float("inf")


def run_micro() -> Dict[str, float]:
    """All microbenchmarks (ops/second each)."""
    return {
        "event_spin_per_sec": calibrate_spin(),
        "notice_apply_per_sec": micro_notice_apply(),
        "plan_lookup_per_sec": micro_plan_lookup(),
    }


# ---------------------------------------------------------------------------
# end-to-end scenarios
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PerfScenario:
    """One end-to-end engine benchmark: a workload on N simulated nodes."""

    name: str
    factory: Callable[[], object]
    nprocs: int


def scenarios(quick: bool = False, paper: bool = False) -> List[PerfScenario]:
    """The scenario list for this run.

    Default: the BENCH-preset Jacobi and Gauss on 8 nodes (the profiles
    that drove the hot-path engine work).  ``quick`` shrinks them for CI
    smoke runs; ``paper`` adds the full Table-1 Jacobi configuration
    (minutes of wall time).
    """
    from ..apps.workloads import BENCH
    from .calibrate import make_gauss, make_jacobi

    if quick:
        out = [
            PerfScenario("jacobi-8-quick", lambda: make_jacobi(350, 20), 8),
            PerfScenario("gauss-8-quick", lambda: make_gauss(256), 8),
        ]
    else:
        out = [
            PerfScenario("jacobi-8", BENCH["jacobi"].factory, 8),
            PerfScenario("gauss-8", BENCH["gauss"].factory, 8),
        ]
    if paper:
        from ..apps.workloads import PAPER

        out.append(PerfScenario("jacobi-8-paper", PAPER["jacobi"].factory, 8))
    return out


def run_scenario(scenario: PerfScenario, repeat: int = 1) -> Dict[str, float]:
    """Run one scenario ``repeat`` times; report the best wall time.

    The simulated outputs (runtime, traffic) are identical across repeats
    by construction — only the wall clock varies.
    """
    from .harness import run_experiment

    best_wall = float("inf")
    res = None
    events = 0
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        res = run_experiment(scenario.factory, nprocs=scenario.nprocs)
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall = wall
            events = res.runtime.sim.events_executed
    traffic = res.traffic
    return {
        "wall_seconds": best_wall,
        "sim_seconds": res.runtime_seconds,
        "events": events,
        "events_per_sec": events / best_wall if best_wall > 0 else float("inf"),
        "sim_per_wall": res.runtime_seconds / best_wall if best_wall > 0 else float("inf"),
        "messages": traffic.messages,
        "pages": traffic.pages,
        "diffs": traffic.diffs,
    }


# ---------------------------------------------------------------------------
# the full report + regression gate
# ---------------------------------------------------------------------------
def run_perfbench(
    quick: bool = False, paper: bool = False, repeat: int = 1
) -> Dict:
    """Run calibration, microbenchmarks, and all scenarios; build the report."""
    spin = calibrate_spin()
    micro = {
        "event_spin_per_sec": spin,
        "notice_apply_per_sec": micro_notice_apply(),
        "plan_lookup_per_sec": micro_plan_lookup(),
    }
    results: Dict[str, Dict[str, float]] = {}
    for scenario in scenarios(quick=quick, paper=paper):
        entry = run_scenario(scenario, repeat=repeat)
        entry["normalized_score"] = (
            entry["events_per_sec"] / spin if spin > 0 else 0.0
        )
        results[scenario.name] = entry
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "repeat": repeat,
        "calibration": {"spin_events_per_sec": spin, "spin_events": SPIN_EVENTS},
        "micro": micro,
        "results": results,
    }


def write_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)


def compare_to_baseline(
    report: Dict, baseline: Dict, max_regression: float = 0.30
) -> List[Tuple[str, float, float, float]]:
    """Regressions of ``report`` vs ``baseline``.

    Compares ``normalized_score`` per scenario (machine-speed cancelled by
    the calibration spin).  Returns ``(name, baseline_score, new_score,
    regression_fraction)`` for every scenario whose score dropped by more
    than ``max_regression``.  Scenarios present in only one report are
    ignored (presets may evolve).
    """
    regressions = []
    base_results = baseline.get("results", {})
    for name, entry in report.get("results", {}).items():
        base = base_results.get(name)
        if base is None:
            continue
        old = base.get("normalized_score", 0.0)
        new = entry.get("normalized_score", 0.0)
        if old <= 0:
            continue
        drop = 1.0 - new / old
        if drop > max_regression:
            regressions.append((name, old, new, drop))
    return regressions
