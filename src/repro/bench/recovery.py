"""Recovery-time benchmark: crash-recovery cost vs. checkpoint interval.

Sweeps the checkpoint interval for a Jacobi run that loses one slave node
to a fail-stop crash mid-computation.  The §4.3 trade-off appears
directly: short intervals pay frequent image writes but lose little work
on a crash; long intervals run faster fault-free but replay more
iterations after recovery.

The stock :class:`~repro.apps.Jacobi` driver restarts from iteration 0,
so the sweep uses :class:`ResumableJacobi` — identical constructs plus an
iteration counter in shared memory, following the same resumable-kernel
convention the checkpoint/restore machinery documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from ..apps import Jacobi
from ..config import SystemConfig
from ..dsm import Protocol
from .harness import ExperimentResult, run_experiment


class ResumableJacobi(Jacobi):
    """Jacobi that keeps its iteration counter in shared memory.

    A restarted driver reads the counter and resumes after the last
    completed iteration, so only the work since the restored checkpoint
    is replayed.
    """

    name = "jacobi-resumable"

    def allocate(self, rt) -> None:
        super().allocate(rt)
        self.shared(rt, "iter", (4,), "int64", Protocol.MULTIPLE_WRITER)

    def driver(self, omp) -> Generator:
        ctx = omp.ctx
        grid = self.arrays["grid"]
        meta = self.arrays["iter"]
        yield from ctx.access(meta.seg, reads=meta.full())
        start = int(meta.view(ctx)[0]) if ctx.materialized else 0
        if start == 0:
            yield from ctx.access(grid.seg, writes=grid.full())
            if ctx.materialized:
                grid.view(ctx)[:] = self.initial_grid()
        for it in range(start, self.iterations):
            yield from omp.parallel_for("sweep")
            yield from omp.parallel_for("copy")
            yield from ctx.access(meta.seg, writes=meta.full())
            if ctx.materialized:
                meta.view(ctx)[0] = it + 1
        yield from self.collect(ctx, ["grid"])


@dataclass
class RecoveryPoint:
    """One cell of the interval sweep."""

    checkpoint_interval: Optional[float]
    runtime_seconds: float
    fault_free_seconds: float
    checkpoints_taken: int
    detection_latency: float
    restore_seconds: float
    lost_work_seconds: float
    verified: Optional[bool]

    @property
    def overhead_seconds(self) -> float:
        """Total cost of the crash plus the checkpointing, vs. fault-free."""
        return self.runtime_seconds - self.fault_free_seconds


def make_recovery_jacobi(n: int = 96, iterations: int = 30) -> ResumableJacobi:
    """A small materializable Jacobi for the sweep (seconds, not hours)."""
    return ResumableJacobi(n=n, iterations=iterations)


def recovery_sweep(
    intervals: Sequence[Optional[float]] = (None, 0.05, 0.1, 0.2, 0.4),
    nprocs: int = 4,
    crash_fraction: float = 0.55,
    cfg: Optional[SystemConfig] = None,
    n: int = 96,
    iterations: int = 30,
    verify: bool = True,
    jobs: int = 1,
    cache=None,
    refresh: bool = False,
    executor=None,
) -> List[RecoveryPoint]:
    """Run the sweep; ``None`` in ``intervals`` means no checkpointing.

    The crash is injected at ``crash_fraction`` of the fault-free runtime,
    on the node hosting the last pid — the same instant for every
    interval, so the points are directly comparable.

    The per-interval runs go through the :mod:`repro.exec` engine —
    ``jobs`` shards them across worker processes and ``cache`` (a
    :class:`~repro.exec.ResultCache`) skips re-simulating unchanged
    points.  ``executor`` (anything :func:`repro.api.sweep` accepts for
    its ``executor`` argument) replaces the ``jobs``/``cache``/
    ``refresh`` trio wholesale — e.g. a remote backend runs the interval
    grid on a coordinator's workers.  A custom ``cfg`` is not
    expressible as a scenario spec, so it forces the legacy serial
    in-process path.
    """
    if cfg is not None:
        return _recovery_sweep_legacy(
            intervals, nprocs, crash_fraction, cfg, n, iterations, verify,
        )

    from ..api import sweep
    from ..exec.spec import AdaptEvent, ScenarioSpec

    base_spec = ScenarioSpec(
        kernel="jacobi-resumable", params={"n": n, "iterations": iterations},
        nprocs=nprocs, calibrated=False, adaptive=True, materialized=True,
        extra_nodes=1, label="recovery-baseline",
    )
    if executor is not None:
        baseline = sweep([base_spec], executor=executor).results[0]
    else:
        baseline = sweep(
            [base_spec], jobs=1, cache=cache, refresh=refresh,
        ).results[0]
    crash_at = baseline.runtime_seconds * crash_fraction

    specs = [
        base_spec.replaced(
            events=(AdaptEvent("crash", crash_at),),  # node of the last pid
            checkpoint_interval=interval,
            failure_detection=True,
            label=f"recovery-ckpt-{'off' if interval is None else interval}",
        )
        for interval in intervals
    ]
    if executor is not None:
        outcome = sweep(specs, executor=executor)
    else:
        outcome = sweep(specs, jobs=jobs, cache=cache, refresh=refresh)

    points: List[RecoveryPoint] = []
    for interval, res in zip(intervals, outcome.results):
        rec = res.recoveries[0] if res.recoveries else None
        points.append(RecoveryPoint(
            checkpoint_interval=interval,
            runtime_seconds=res.runtime_seconds,
            fault_free_seconds=baseline.runtime_seconds,
            checkpoints_taken=res.checkpoints_taken,
            detection_latency=rec["detection_latency"] if rec else 0.0,
            restore_seconds=rec["restore_seconds"] if rec else 0.0,
            lost_work_seconds=rec["lost_work_seconds"] if rec else 0.0,
            verified=res.verified if verify else None,
        ))
    return points


def _recovery_sweep_legacy(
    intervals: Sequence[Optional[float]],
    nprocs: int,
    crash_fraction: float,
    cfg: Optional[SystemConfig],
    n: int,
    iterations: int,
    verify: bool,
) -> List[RecoveryPoint]:
    """In-process sweep for callers passing a custom :class:`SystemConfig`."""
    factory = lambda: make_recovery_jacobi(n=n, iterations=iterations)

    baseline = run_experiment(
        factory, nprocs=nprocs, adaptive=True, extra_nodes=1, cfg=cfg,
        materialized=True,
    )
    crash_at = baseline.runtime_seconds * crash_fraction

    points: List[RecoveryPoint] = []
    for interval in intervals:
        def install(rt):
            victim = rt.team.node_of(rt.team.nprocs - 1)
            rt.sim.at(crash_at, lambda: rt.inject_crash(victim))

        res = run_experiment(
            factory, nprocs=nprocs, adaptive=True, extra_nodes=1, cfg=cfg,
            materialized=True, events=install,
            runtime_kwargs={
                "checkpoint_interval": interval,
                "failure_detection": True,
            },
        )
        rec = res.recoveries[0] if res.recoveries else None
        points.append(RecoveryPoint(
            checkpoint_interval=interval,
            runtime_seconds=res.runtime_seconds,
            fault_free_seconds=baseline.runtime_seconds,
            checkpoints_taken=len(res.runtime.ckpt_mgr.checkpoints),
            detection_latency=rec.detection_latency if rec else 0.0,
            restore_seconds=rec.restore_seconds if rec else 0.0,
            lost_work_seconds=rec.lost_work_seconds if rec else 0.0,
            verified=res.app.verify(rtol=1e-7, atol=1e-9) if verify else None,
        ))
    return points


def sweep_rows(points: Sequence[RecoveryPoint]) -> List[List]:
    """Rows for :func:`~repro.bench.reporting.format_table`."""
    rows = []
    for p in points:
        rows.append([
            "off" if p.checkpoint_interval is None else f"{p.checkpoint_interval:.2f}",
            f"{p.runtime_seconds:.3f}",
            f"{p.overhead_seconds:.3f}",
            p.checkpoints_taken,
            f"{p.detection_latency * 1e3:.0f}",
            f"{p.restore_seconds:.3f}",
            f"{p.lost_work_seconds:.3f}",
            {True: "OK", False: "MISMATCH", None: "-"}[p.verified],
        ])
    return rows
