"""Paper-style text tables for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Monospace table with right-aligned numeric columns."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.2f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def ratio_note(measured: float, published: float) -> str:
    """'measured (paper: published, x ratio)' annotation."""
    if published == 0:
        return f"{_fmt(measured)} (paper: 0)"
    return f"{_fmt(measured)} (paper: {_fmt(published)}, x{measured / published:.2f})"
