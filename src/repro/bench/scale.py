"""Scaling sweep: flat vs tree synchronization across NOW sizes (§11).

The paper's cost model (§5.4) says adaptation and synchronization cost is
dominated by the *maximum traffic on any single link* — and the flat
fork/join protocol concentrates O(N) payload-carrying messages on the
master's links per parallel construct.  This sweep measures that directly:
it runs one sync-bound kernel at several team sizes under every
combination of synchronization shape (``flat`` master-centric vs ``tree``
combining tree) and interconnect (``star`` single switch vs ``fattree``
switch hierarchy), and reports

* simulated runtime and mean fork/join (barrier) latency,
* the maximum per-link busy time and the master-uplink busy time — the
  quantity the tree is built to shrink from O(N) toward O(log N),
* engine throughput (executed events per wall second).

``python -m repro scale`` writes the report (``BENCH_scale_pr8.json`` is
the committed curve); ``python -m repro report --scale`` renders it.  The
report also carries a perfbench-format ``results`` entry for the 32-node
quick scenario, so the CI perf gate can compare against this file with
the ordinary ``repro perfbench --compare`` machinery.
"""

from __future__ import annotations

import hashlib
import json
import platform
import time
from typing import Dict, Iterable, List, Optional, Sequence

SCALE_SCHEMA = "repro-scale/1"

#: Default team sizes of the sweep (the ISSUE's 32/64/128-node targets
#: plus the small sizes that anchor the curve).
DEFAULT_NODES = (8, 16, 32, 64, 128)

#: Sync shapes and interconnects swept.
SYNC_MODES = ("flat", "tree")
TOPOLOGIES = ("star", "fattree")


def _make_app(nodes: int, quick: bool = False):
    """A sync-bound Jacobi sized to the team: two rows per process.

    Small compute per barrier keeps the fork/join protocol (not the
    kernel) on the critical path, which is what the sweep measures.
    """
    from ..apps import Jacobi

    n = max(64, 2 * nodes)
    iterations = 8 if quick else 16
    return Jacobi(n=n, iterations=iterations)


def _config(sync: str, topology: str):
    from ..config import PerfParams, SystemConfig

    return SystemConfig().with_(
        perf=PerfParams(
            barrier_tree=(sync == "tree"),
            barrier_radix=4,
            topology=topology,
            topology_radix=8,
        )
    )


def run_scale_point(
    nodes: int, sync: str, topology: str, quick: bool = False
) -> Dict:
    """One (team size, sync shape, interconnect) measurement."""
    from ..obs.core import TRACK_MASTER, Registry
    from .harness import run_experiment

    obs = Registry(per_process=False)
    cfg = _config(sync, topology)
    t0 = time.perf_counter()
    exp = run_experiment(
        lambda: _make_app(nodes, quick), nodes, cfg=cfg, obs=obs
    )
    wall = time.perf_counter() - t0
    sim = exp.runtime.sim
    busy = exp.runtime.switch.link_report()
    fj = [
        s.end - s.start
        for s in obs.spans
        if s.track == TRACK_MASTER and s.name == "fork_join"
    ]
    traffic = exp.traffic
    entry = {
        "nodes": nodes,
        "sync": sync,
        "topology": topology,
        "sim_seconds": exp.runtime_seconds,
        "wall_seconds": wall,
        "events": sim.events_executed,
        "events_per_sec": sim.events_executed / wall if wall > 0 else 0.0,
        "forks": exp.forks,
        "messages": traffic.messages,
        "bytes": traffic.bytes,
        "fork_join_mean_s": sum(fj) / len(fj) if fj else 0.0,
        "max_link_busy_s": max(busy.values()) if busy else 0.0,
        "master_uplink_busy_s": busy.get("up0", 0.0),
        "master_downlink_busy_s": busy.get("down0", 0.0),
        "max_link_bytes": (
            max(traffic.per_link_bytes.values())
            if traffic.per_link_bytes else 0
        ),
        # Deterministic fingerprint of the modelled outputs; equal across
        # repeats of the same configuration (the CI smoke asserts this).
        "digest": hashlib.sha256(
            json.dumps(
                [exp.runtime_seconds, traffic.messages, traffic.bytes],
                sort_keys=True,
            ).encode()
        ).hexdigest(),
    }
    return entry


def run_scale(
    nodes: Sequence[int] = DEFAULT_NODES,
    quick: bool = False,
    sync_modes: Iterable[str] = SYNC_MODES,
    topologies: Iterable[str] = TOPOLOGIES,
    gate_scenario: bool = True,
) -> Dict:
    """The full sweep: every (nodes, sync, topology) combination.

    ``gate_scenario`` additionally measures the perfbench ``gauss-32-quick``
    scenario (flat/default config, spin-paired samples) and stores it in
    perfbench ``results`` format, making the report usable as a
    ``repro perfbench --compare`` baseline.
    """
    from .perf import (
        PAIR_SPIN_EVENTS,
        SPIN_EVENTS,
        _entry_from_result,
        calibrate_spin,
        run_scenario_paired,
        scenarios,
    )

    spin = calibrate_spin()
    scale: Dict[str, Dict] = {}
    for n in nodes:
        for sync in sync_modes:
            for topology in topologies:
                key = f"jacobi-{n}-{sync}-{topology}"
                scale[key] = run_scale_point(n, sync, topology, quick=quick)
    report = {
        "schema": SCALE_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "calibration": {
            "spin_events_per_sec": spin,
            "spin_events": SPIN_EVENTS,
            "pair_spin_events": PAIR_SPIN_EVENTS,
        },
        "scale": scale,
        "results": {},
    }
    if gate_scenario:
        gate = next(
            s for s in scenarios(quick=True) if s.name == "gauss-32-quick"
        )
        result, wall, samples = run_scenario_paired(gate.spec, repeats=3)
        entry = _entry_from_result(result, wall)
        entry["normalized_score"] = (
            entry["events_per_sec"] / spin if spin > 0 else 0.0
        )
        entry["samples"] = samples
        report["results"][gate.name] = entry
    return report


def format_scale_table(report: Dict) -> str:
    """Render a scale report as the ``repro report --scale`` table."""
    scale = report.get("scale", {})
    rows: List[Dict] = sorted(
        scale.values(), key=lambda e: (e["nodes"], e["sync"], e["topology"])
    )
    header = (
        f"{'nodes':>5}  {'sync':<5} {'topology':<8} "
        f"{'sim_s':>9} {'barrier_ms':>10} {'max_link_busy_ms':>16} "
        f"{'master_up_ms':>12} {'events/s':>10}"
    )
    lines = [header, "-" * len(header)]
    for e in rows:
        lines.append(
            f"{e['nodes']:>5}  {e['sync']:<5} {e['topology']:<8} "
            f"{e['sim_seconds']:>9.4f} {e['fork_join_mean_s'] * 1e3:>10.3f} "
            f"{e['max_link_busy_s'] * 1e3:>16.3f} "
            f"{e['master_uplink_busy_s'] * 1e3:>12.3f} "
            f"{e['events_per_sec']:>10.0f}"
        )
    # Per-size flat->tree summary of the headline quantity.
    by_size: Dict[int, Dict[str, float]] = {}
    for e in rows:
        if e["topology"] != "star":
            continue
        by_size.setdefault(e["nodes"], {})[e["sync"]] = e[
            "master_uplink_busy_s"
        ]
    summary = [
        "",
        "master uplink busy time, flat -> tree (star):",
    ]
    for n in sorted(by_size):
        pair = by_size[n]
        if "flat" in pair and "tree" in pair and pair["flat"] > 0:
            cut = 1.0 - pair["tree"] / pair["flat"]
            summary.append(
                f"  {n:>4} nodes: {pair['flat'] * 1e3:8.3f} ms -> "
                f"{pair['tree'] * 1e3:8.3f} ms  ({cut:.1%} reduction)"
            )
    return "\n".join(lines + summary)


def write_scale_report(report: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_scale_report(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)
