"""Command-line interface: run kernels and regenerate paper experiments.

::

    python -m repro list                      # workloads & presets
    python -m repro calibrate                 # show Table-1-derived rates
    python -m repro run jacobi --nprocs 8 --adaptive \
        --event leave:0.5:3 --event join:1.5:3
    python -m repro table1                    # regenerate Table 1
    python -m repro micro                     # §5.1 micro-benchmarks
    python -m repro fig3                      # Figure 3 analytic fractions
    python -m repro migration                 # §5.3 migration cost model
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import APP_NAMES, BENCH, PAPER, TINY
from .bench import (
    BENCH_CALIBRATED,
    FIGURE3_MOVED,
    MICRO,
    MIGRATION_COST,
    TABLE1,
    calibrated_rates,
    format_table,
    run_experiment,
    speedup,
)
from .core import CompactShift, SwapLast, moved_fraction
from .errors import ReproError

PRESETS = {"paper": PAPER, "bench": BENCH, "tiny": TINY}


def _parse_event(spec: str):
    """``action:time[:node]`` -> (action, time, node)."""
    parts = spec.split(":")
    if len(parts) not in (2, 3) or parts[0] not in ("join", "leave"):
        raise argparse.ArgumentTypeError(
            f"bad event {spec!r}; expected join:TIME[:NODE] or leave:TIME[:NODE]"
        )
    action = parts[0]
    time = float(parts[1])
    node = int(parts[2]) if len(parts) == 3 else None
    return action, time, node


def cmd_list(args) -> int:
    rows = []
    for preset_name, preset in PRESETS.items():
        for app_name, wl in preset.items():
            app = wl.make()
            if app_name == "fft3d":
                desc = f"{app.nx}x{app.ny}x{app.nz}, {app.iterations} iters"
            elif app_name == "nbf":
                desc = f"{app.natoms} atoms x {app.npartners}, {app.iterations} iters"
            else:
                desc = f"n={app.n}, {app.iterations} iters"
            rows.append([preset_name, app_name, desc])
    print(format_table(["preset", "kernel", "configuration"], rows,
                       title="Available workloads"))
    return 0


def cmd_calibrate(args) -> int:
    rows = [
        [name, f"{rate * 1e9:.2f}", TABLE1[(name, 1)].time_standard]
        for name, rate in sorted(calibrated_rates().items())
    ]
    print(format_table(
        ["kernel", "rate (ns/op)", "anchors to 1-node time (s)"],
        rows,
        title="Compute rates calibrated against Table 1's 1-node column",
    ))
    return 0


def cmd_run(args) -> int:
    if args.app not in APP_NAMES:
        print(f"unknown app {args.app!r}; one of {', '.join(APP_NAMES)}",
              file=sys.stderr)
        return 2
    preset = PRESETS[args.preset]
    factory = preset[args.app].make

    def install(rt):
        default_leave = rt.team.nprocs - 1
        for action, time, node in args.event or []:
            if action == "leave":
                node_id = node if node is not None else default_leave
                rt.sim.at(time, lambda n=node_id: rt.submit_leave(n, grace=args.grace))
            else:
                node_id = node if node is not None else rt.team.nprocs
                rt.sim.at(time, lambda n=node_id: rt.submit_join(n))

    res = run_experiment(
        factory,
        nprocs=args.nprocs,
        adaptive=args.adaptive or bool(args.event),
        extra_nodes=args.extra_nodes,
        materialized=args.materialized,
        events=install if args.event else None,
    )
    rows = [
        ["simulated runtime (s)", f"{res.runtime_seconds:.3f}"],
        ["page fetches", res.pages],
        ["diffs fetched", res.diffs],
        ["messages", res.messages],
        ["traffic (MB)", f"{res.megabytes:.2f}"],
        ["fork/join constructs", res.forks],
        ["adapt events", res.adaptations],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app} ({args.preset} preset) on {args.nprocs} nodes"))
    for rec in res.adapt_records:
        print(f"  t={rec.time:.3f}s joins={rec.joins} leaves={rec.leaves} "
              f"urgent={rec.urgent_leaves} team {rec.nprocs_before}->"
              f"{rec.nprocs_after} cost={rec.duration * 1e3:.1f}ms")
    if args.materialized:
        try:
            ok = res.app.verify(rtol=1e-7, atol=1e-9)
            print(f"  verification vs sequential reference: {'OK' if ok else 'MISMATCH'}")
            if not ok:
                return 1
        except ReproError as err:
            print(f"  verification unavailable: {err}")
    return 0


def cmd_table1(args) -> int:
    rows = []
    for app in APP_NAMES:
        for nprocs in (8, 4, 1):
            res = run_experiment(BENCH_CALIBRATED[app], nprocs=nprocs)
            paper = TABLE1[(app, nprocs)]
            rows.append([
                app, nprocs, f"{res.runtime_seconds:.2f}", res.pages,
                f"{res.megabytes:.1f}", res.messages, res.diffs,
                paper.time_standard, paper.diffs,
            ])
    print(format_table(
        ["app", "nodes", "t(s)", "pages", "MB", "messages", "diffs",
         "paper t(s)", "paper diffs"],
        rows,
        title="Table 1 (scaled workloads, standard system)",
    ))
    return 0


def cmd_micro(args) -> int:
    rows = [
        ["1-byte round trip (us)", 126.2, MICRO.rtt_1byte * 1e6],
        ["lock acquisition (us)", 180.6, f"{MICRO.lock_min*1e6:.0f}-{MICRO.lock_max*1e6:.0f}"],
        ["page transfer (us)", 1309.3, MICRO.page_transfer * 1e6],
        ["diff fetch (us)", "315.8-1547.4", f"{MICRO.diff_min*1e6:.0f}-{MICRO.diff_max*1e6:.0f}"],
    ]
    print(format_table(["operation", "simulated", "paper"], rows,
                       title="§5.1 micro-benchmarks (see benchmarks/test_micro_network.py)"))
    return 0


def cmd_fig3(args) -> int:
    rows = []
    for n in (8, 6, 4):
        for label, leaver in (("end", n - 1), ("middle", n // 2)):
            for strategy in (CompactShift(), SwapLast()):
                frac = float(moved_fraction(n, [leaver], strategy))
                rows.append([n, label, leaver, strategy.name, f"{frac:.3f}"])
    print(format_table(
        ["procs", "leaver", "pid", "strategy", "moved fraction"],
        rows,
        title=f"Figure 3 analytic data movement (paper: end {FIGURE3_MOVED['end']}, "
              f"middle {FIGURE3_MOVED['middle']})",
    ))
    return 0


def cmd_migration(args) -> int:
    from .cluster import NodePool
    from .config import SystemConfig
    from .dsm import TmkRuntime
    from .network import Switch
    from .simcore import Simulator

    cfg = SystemConfig()
    rows = []
    for app_name in APP_NAMES:
        sim = Simulator()
        pool = NodePool(sim, Switch(sim, cfg.network))
        rt = TmkRuntime(sim, cfg, pool.add_nodes(1), materialized=False)
        PAPER[app_name].make().allocate(rt)
        image = rt.space.total_pages * cfg.dsm.page_size + cfg.migration.image_overhead_bytes
        copy = cfg.migration.copy_time(image)
        rows.append([
            app_name, f"{image / 1e6:.1f}",
            f"{cfg.migration.spawn_time_min + copy:.2f}-{cfg.migration.spawn_time_max + copy:.2f}",
            MIGRATION_COST[app_name],
        ])
    print(format_table(
        ["app", "image (MB)", "model cost (s)", "paper (s)"],
        rows,
        title="§5.3 direct migration cost (spawn 0.6-0.8s + image at 8.1 MB/s)",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive OpenMP-on-NOW (PPoPP 1999) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workload presets").set_defaults(fn=cmd_list)
    sub.add_parser("calibrate", help="show calibrated compute rates").set_defaults(fn=cmd_calibrate)
    sub.add_parser("table1", help="regenerate Table 1").set_defaults(fn=cmd_table1)
    sub.add_parser("micro", help="§5.1 micro-benchmark summary").set_defaults(fn=cmd_micro)
    sub.add_parser("fig3", help="Figure 3 analytic fractions").set_defaults(fn=cmd_fig3)
    sub.add_parser("migration", help="§5.3 migration cost model").set_defaults(fn=cmd_migration)

    run = sub.add_parser("run", help="run one kernel on a simulated NOW")
    run.add_argument("app", help=f"kernel: {', '.join(APP_NAMES)}")
    run.add_argument("--nprocs", type=int, default=4)
    run.add_argument("--preset", choices=sorted(PRESETS), default="bench")
    run.add_argument("--adaptive", action="store_true",
                     help="use the adaptive runtime even without events")
    run.add_argument("--materialized", action="store_true",
                     help="run real data through the DSM and verify")
    run.add_argument("--extra-nodes", type=int, default=2,
                     help="idle workstations available for joins")
    run.add_argument("--grace", type=float, default=None,
                     help="grace period for scripted leaves (s)")
    run.add_argument("--event", action="append", type=_parse_event,
                     metavar="ACTION:TIME[:NODE]",
                     help="schedule an adapt event (repeatable)")
    run.set_defaults(fn=cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
