"""Command-line interface: run kernels and regenerate paper experiments.

::

    python -m repro list                      # workloads & presets
    python -m repro calibrate                 # show Table-1-derived rates
    python -m repro run jacobi --nprocs 8 --adaptive \
        --event leave:0.5:3 --event join:1.5:3
    python -m repro table1                    # regenerate Table 1
    python -m repro sweep --jobs 4            # app x nodes grid, parallel + cached
    python -m repro report jacobi --nprocs 8 \
        --event leave:0.5:3 --trace trace.json  # adaptation-cost breakdown
    python -m repro chaos --kill-rate 0.5     # fault-injection harness
    python -m repro micro                     # §5.1 micro-benchmarks
    python -m repro fig3                      # Figure 3 analytic fractions
    python -m repro migration                 # §5.3 migration cost model

Every simulation the CLI starts goes through :mod:`repro.api` — the same
facade user scripts should call.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .apps import APP_NAMES, BENCH, PAPER, TINY
from .bench.calibrate import calibrated_rates
from .bench.paper_data import FIGURE3_MOVED, MICRO, MIGRATION_COST, TABLE1
from .bench.reporting import format_table
from .core import CompactShift, SwapLast, moved_fraction
from .errors import ReproError

PRESETS = {"paper": PAPER, "bench": BENCH, "tiny": TINY}


def _parse_event(spec: str):
    """``action:time[:node]`` -> (action, time, node)."""
    parts = spec.split(":")
    if len(parts) not in (2, 3) or parts[0] not in ("join", "leave", "crash"):
        raise argparse.ArgumentTypeError(
            f"bad event {spec!r}; expected join:TIME[:NODE], leave:TIME[:NODE] "
            f"or crash:TIME[:NODE]"
        )
    action = parts[0]
    time = float(parts[1])
    node = int(parts[2]) if len(parts) == 3 else None
    return action, time, node


def cmd_list(args) -> int:
    rows = []
    for preset_name, preset in PRESETS.items():
        for app_name, wl in preset.items():
            app = wl.make()
            if app_name == "fft3d":
                desc = f"{app.nx}x{app.ny}x{app.nz}, {app.iterations} iters"
            elif app_name == "nbf":
                desc = f"{app.natoms} atoms x {app.npartners}, {app.iterations} iters"
            else:
                desc = f"n={app.n}, {app.iterations} iters"
            rows.append([preset_name, app_name, desc])
    print(format_table(["preset", "kernel", "configuration"], rows,
                       title="Available workloads"))
    return 0


def cmd_calibrate(args) -> int:
    rows = [
        [name, f"{rate * 1e9:.2f}", TABLE1[(name, 1)].time_standard]
        for name, rate in sorted(calibrated_rates().items())
    ]
    print(format_table(
        ["kernel", "rate (ns/op)", "anchors to 1-node time (s)"],
        rows,
        title="Compute rates calibrated against Table 1's 1-node column",
    ))
    return 0


def _spec_from_args(args):
    """Build the :class:`~repro.api.ScenarioSpec` the run/report commands
    describe.  Prints the problem and returns None on bad input."""
    from .api import AdaptEvent, spec_from_preset

    if args.app not in APP_NAMES:
        print(f"unknown app {args.app!r}; one of {', '.join(APP_NAMES)}",
              file=sys.stderr)
        return None
    fault_plan = None
    if args.faults:
        from .errors import FaultError
        from .faults import parse_plan

        try:
            with open(args.faults) as fh:
                fault_plan = fh.read()
            parse_plan(fault_plan)
        except (FaultError, OSError) as err:
            print(f"bad fault plan {args.faults!r}: {err}", file=sys.stderr)
            return None
    events = tuple(
        AdaptEvent(action, time, node,
                   grace=args.grace if action == "leave" else None)
        for action, time, node in args.event or []
    )
    return spec_from_preset(
        args.preset, args.app, args.nprocs,
        calibrated=False,  # the run command uses the preset's stock rates
        adaptive=args.adaptive,
        materialized=args.materialized,
        extra_nodes=args.extra_nodes,
        events=events,
        fault_plan=fault_plan,
        checkpoint_interval=args.checkpoint_interval,
        failure_detection=args.failure_detection,
        label=f"{args.app}-{args.nprocs}",
    )


def cmd_run(args) -> int:
    from .api import run as api_run

    spec = _spec_from_args(args)
    if spec is None:
        return 2
    report = api_run(spec)
    res = report.experiment
    detection = spec.failure_detection or spec.has_crashes
    rows = [
        ["simulated runtime (s)", f"{res.runtime_seconds:.3f}"],
        ["page fetches", res.pages],
        ["diffs fetched", res.diffs],
        ["messages", res.messages],
        ["traffic (MB)", f"{res.megabytes:.2f}"],
        ["fork/join constructs", res.forks],
        ["adapt events", res.adaptations],
    ]
    if res.dropped or res.retransmissions:
        rows.append(["messages dropped", res.dropped])
        rows.append(["retransmissions", res.retransmissions])
    if detection:
        rows.append(["heartbeats sent", res.heartbeats_sent])
        rows.append(["heartbeat misses", res.heartbeat_misses])
        rows.append(["false suspicions", res.false_suspicions])
        rows.append(["crash recoveries", len(res.recoveries)])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app} ({args.preset} preset) on {args.nprocs} nodes"))
    for rec in res.adapt_records:
        print(f"  t={rec.time:.3f}s joins={rec.joins} leaves={rec.leaves} "
              f"urgent={rec.urgent_leaves} team {rec.nprocs_before}->"
              f"{rec.nprocs_after} cost={rec.duration * 1e3:.1f}ms")
    for rec in res.recoveries:
        ckpt = "cold restart" if rec.checkpoint_time is None else (
            f"checkpoint t={rec.checkpoint_time:.3f}s"
        )
        print(f"  recovery t={rec.time:.3f}s nodes={rec.crashed_nodes} "
              f"({rec.reason}) detect={rec.detection_latency * 1e3:.0f}ms "
              f"restore={rec.restore_seconds:.3f}s "
              f"lost={rec.lost_work_seconds:.3f}s from {ckpt}")
    if args.materialized:
        ok = report.result.verified
        if ok is None:
            print("  verification unavailable")
        else:
            print(f"  verification vs sequential reference: {'OK' if ok else 'MISMATCH'}")
            if not ok:
                return 1
    return 0


def _report_from_digest(args) -> int:
    """Render the adaptation-cost table for a cached sweep digest."""
    import json
    from pathlib import Path

    root = Path(args.cache_dir)
    matches = sorted(root.glob(f"{args.digest}*.json"))
    if not matches:
        print(f"no cache entry matching digest {args.digest!r} under {root}",
              file=sys.stderr)
        return 2
    if len(matches) > 1:
        print(f"digest prefix {args.digest!r} is ambiguous "
              f"({len(matches)} entries); give more characters", file=sys.stderr)
        return 2
    with open(matches[0]) as fh:
        entry = json.load(fh)
    result = entry.get("result", {})
    label = entry.get("spec", {}).get("kernel", "?")
    nprocs = entry.get("spec", {}).get("nprocs", "?")
    records = result.get("adapt_records", [])
    rows = []
    total = 0.0
    for rec in records:
        duration = rec.get("duration", 0.0)
        total += duration
        rows.append([
            f"{rec.get('time', 0.0):.3f}",
            len(rec.get("joins", [])),
            len(rec.get("leaves", [])) + len(rec.get("urgent_leaves", [])),
            f"{rec.get('nprocs_before', '?')}->{rec.get('nprocs_after', '?')}",
            rec.get("drained_pages", 0),
            f"{duration * 1e3:.1f}",
        ])
    rows.append(["total", "", "", "", "", f"{total * 1e3:.1f}"])
    print(format_table(
        ["t (s)", "joins", "leaves", "team", "drained pages", "cost (ms)"],
        rows,
        title=f"Cached adaptation costs: {label}-{nprocs} "
              f"(digest {entry.get('digest', '?')[:12]})",
    ))
    print(f"  simulated runtime {result.get('runtime_seconds', 0.0):.3f}s, "
          f"{result.get('adaptations', 0)} adapt event(s), "
          f"{len(result.get('recoveries', []))} recover(ies)")
    return 0


def _report_from_sweep(args) -> int:
    """Render the failure/retry/cache counters of a sweep JSON file."""
    import json

    try:
        with open(args.sweep) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"cannot read sweep file {args.sweep!r}: {err}", file=sys.stderr)
        return 2
    if payload.get("schema") != "repro-sweep/1":
        print(f"{args.sweep}: not a repro-sweep/1 file", file=sys.stderr)
        return 2
    rows = [
        ["scenarios", len(payload.get("scenarios", []))],
        ["executed", payload.get("executed", 0)],
        ["retried", payload.get("retried", 0)],
        ["degraded to serial", "yes" if payload.get("degraded") else "no"],
    ]
    for kind, n in sorted(payload.get("failures", {}).items()):
        rows.append([f"failures: {kind}", n])
    for key, value in sorted(payload.get("cache", {}).items()):
        rows.append([f"cache {key}", value])
    service = payload.get("service") or {}
    for key in ("submitted", "executed", "cache_hits", "deduped",
                "requeued", "failed", "inflight_peak", "workers",
                "workers_joined", "workers_lost"):
        if key in service:
            rows.append([f"exec.service.{key}", service[key]])
    for kind, n in sorted(service.get("failure_counts", {}).items()):
        rows.append([f"exec.service.failure.{kind}", n])
    for wid, info in sorted(service.get("per_worker", {}).items()):
        rows.append([
            f"exec.service.worker.{wid}",
            f"{info.get('tasks', 0):.0f} task(s) in "
            f"{info.get('busy_seconds', 0.0):.2f}s busy",
        ])
    print(format_table(
        ["metric", "value"], rows,
        title=f"Sweep resilience report: {args.sweep}",
    ))
    return 0


def _report_from_scale(args) -> int:
    """Render the scaling-sweep table of a ``repro scale`` JSON file."""
    import json

    from .bench.scale import SCALE_SCHEMA, format_scale_table, load_scale_report

    try:
        report = load_scale_report(args.scale)
    except (OSError, json.JSONDecodeError) as err:
        print(f"cannot read scale file {args.scale!r}: {err}", file=sys.stderr)
        return 2
    if report.get("schema") != SCALE_SCHEMA:
        print(f"{args.scale}: not a {SCALE_SCHEMA} file", file=sys.stderr)
        return 2
    print(f"Scaling sweep: {args.scale} (created {report.get('created')})")
    print(format_scale_table(report))
    return 0


def cmd_report(args) -> int:
    """Run one observed scenario and print the §5 cost decomposition."""
    if args.scale:
        return _report_from_scale(args)
    if args.sweep:
        return _report_from_sweep(args)
    if args.digest:
        return _report_from_digest(args)
    if not args.app:
        print("report needs a kernel name (or --digest DIGEST / --sweep FILE)",
              file=sys.stderr)
        return 2
    from .api import ObsConfig, run as api_run

    spec = _spec_from_args(args)
    if spec is None:
        return 2
    report = api_run(spec, obs=ObsConfig(
        trace_path=args.trace, metrics_path=args.metrics,
    ))
    bd = report.cost_breakdown
    print(format_table(
        ["phase", "seconds", "share"],
        bd.rows(),
        title=f"Adaptation cost breakdown: {spec.display_name} "
              f"({args.preset} preset)",
    ))
    harness = sum(r.duration for r in report.experiment.adapt_records)
    consistent = bd.consistent() and abs(harness - bd.adaptation_seconds) <= 1e-9
    print(f"  {bd.adaptation_points} adaptation point(s); phase sum "
          f"{'matches' if consistent else 'DOES NOT match'} the harness "
          f"adaptation time ({harness:.6f}s)")
    if bd.recovery_seconds:
        print(f"  crash recovery: {bd.recovery_seconds:.6f}s "
              f"(restore {bd.phases['recovery.restore'].seconds:.6f}s)")
    interesting = {
        "adapt.drained_pages": "exclusive pages drained",
        "adapt.leaver_owned_pages": "leaver-owned pages",
        "adapt.page_map_bytes": "page-location-map bytes shipped",
        "migration.image_bytes": "migration image bytes",
        "dsm.diff.created": "diffs encoded",
        "dsm.diff.fetched": "diffs fetched and applied",
        "dsm.diff.bytes": "dirty bytes applied from diffs",
        "dsm.diff.squashes": "multi-diff fetches squashed",
    }
    for key, desc in interesting.items():
        if bd.counters.get(key):
            print(f"  {desc}: {bd.counters[key]:.0f}")
    if args.trace:
        print(f"  Chrome trace written to {args.trace} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if args.metrics:
        print(f"  metrics written to {args.metrics}")
    return 0 if consistent else 1


def _executor_from_args(args, jobs_default=None):
    """Build the :class:`~repro.exec.executor.Executor` the shared engine
    flags describe, or print the problem and return None."""
    from .api import make_executor
    from .exec.executor import ExecutorConfig

    jobs = args.jobs if args.jobs is not None else jobs_default
    try:
        return make_executor(ExecutorConfig(
            jobs=jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            refresh=args.refresh,
            backend=args.executor,
            coordinator=args.coordinator,
        ))
    except ReproError as err:
        print(f"bad executor configuration: {err}", file=sys.stderr)
        return None


def _progress_printer(total_specs):
    """A run_specs progress callback streaming one line per task to stderr."""
    def progress(outcome, done, total):
        how = "cache" if outcome.cached else (
            f"ran in {outcome.wall_seconds:.2f}s"
            + (f" after {outcome.attempts} attempts" if outcome.attempts > 1 else "")
        )
        print(f"  [{done}/{total}] {outcome.spec.display_name}: {how}",
              file=sys.stderr)
    return progress


def _sweep_summary(outcome) -> str:
    s = outcome.cache_stats
    line = (f"{len(outcome.outcomes)} scenario(s): {outcome.cache_hits} from "
            f"cache, {outcome.executed} executed ({outcome.retried} retried) "
            f"on {outcome.jobs} job(s) in {outcome.wall_seconds:.2f}s "
            f"[cache hits={s.hits} misses={s.misses} "
            f"invalidations={s.invalidations} stores={s.stores}]")
    if s.quarantined:
        line += f" [quarantined={s.quarantined}]"
    if outcome.failure_counts:
        kinds = " ".join(f"{k}={v}"
                         for k, v in sorted(outcome.failure_counts.items()))
        line += f" [failures: {kinds}]"
    if outcome.degraded:
        line += " [DEGRADED to serial execution]"
    if outcome.service:
        sv = outcome.service
        line += (f" [service: workers={sv.get('workers', 0)} "
                 f"deduped={sv.get('deduped', 0)} "
                 f"requeued={sv.get('requeued', 0)}]")
    return line


def cmd_table1(args) -> int:
    from .api import spec_from_preset, sweep as api_sweep

    grid = [(app, nprocs) for app in APP_NAMES for nprocs in (8, 4, 1)]
    specs = [
        spec_from_preset("bench", app, nprocs, calibrated=True,
                         label=f"{app}-{nprocs}")
        for app, nprocs in grid
    ]
    executor = _executor_from_args(args, jobs_default=1)
    if executor is None:
        return 2
    outcome = api_sweep(
        specs, executor=executor, progress=_progress_printer(len(specs)),
    )
    rows = []
    for (app, nprocs), res in zip(grid, outcome.results):
        paper = TABLE1[(app, nprocs)]
        rows.append([
            app, nprocs, f"{res.runtime_seconds:.2f}", res.pages,
            f"{res.megabytes:.1f}", res.messages, res.diffs,
            paper.time_standard, paper.diffs,
        ])
    print(format_table(
        ["app", "nodes", "t(s)", "pages", "MB", "messages", "diffs",
         "paper t(s)", "paper diffs"],
        rows,
        title="Table 1 (scaled workloads, standard system)",
    ))
    print(f"  {_sweep_summary(outcome)}", file=sys.stderr)
    return 0


def _grid_specs(args):
    """The app x nodes spec grid ``--apps``/``--nodes``/``--preset``
    describe (shared by ``sweep`` and ``submit``), or None on bad input
    (problem printed)."""
    from .api import spec_from_preset

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    for app in apps:
        if app not in APP_NAMES:
            print(f"unknown app {app!r}; one of {', '.join(APP_NAMES)}",
                  file=sys.stderr)
            return None
    try:
        nodes = [int(v) for v in args.nodes.split(",") if v.strip()]
    except ValueError:
        print(f"bad --nodes {args.nodes!r}; expected e.g. 1,4,8", file=sys.stderr)
        return None
    grid = [(app, nprocs) for app in apps for nprocs in nodes]
    specs = [
        spec_from_preset(args.preset, app, nprocs,
                         calibrated=not getattr(args, "uncalibrated", False),
                         label=f"{app}-{nprocs}")
        for app, nprocs in grid
    ]
    return grid, specs


def cmd_sweep(args) -> int:
    from .api import sweep as api_sweep

    built = _grid_specs(args)
    if built is None:
        return 2
    grid, specs = built
    executor = _executor_from_args(args)
    if executor is None:
        return 2
    outcome = api_sweep(
        specs, executor=executor, progress=_progress_printer(len(specs)),
    )
    rows = [
        [app, nprocs, f"{res.runtime_seconds:.2f}", res.pages,
         f"{res.megabytes:.1f}", res.messages, res.diffs,
         "cache" if task.cached else f"{task.wall_seconds:.2f}s"]
        for (app, nprocs), task, res in zip(
            grid, outcome.outcomes, outcome.results)
    ]
    print(format_table(
        ["app", "nodes", "t(s)", "pages", "MB", "messages", "diffs", "via"],
        rows,
        title=f"Scenario sweep ({args.preset} preset, "
              f"{'stock' if args.uncalibrated else 'calibrated'} rates)",
    ))
    print(f"  {_sweep_summary(outcome)}", file=sys.stderr)
    if args.timeline:
        from .obs.export import pool_utilization, write_pool_trace

        write_pool_trace(outcome, args.timeline)
        print(f"  pool timeline written to {args.timeline} "
              f"(worker utilization {pool_utilization(outcome):.0%})",
              file=sys.stderr)
    if args.json:
        import json as _json

        payload = {
            "schema": "repro-sweep/1",
            "preset": args.preset,
            "jobs": outcome.jobs,
            "cache": outcome.cache_stats.as_dict(),
            "executed": outcome.executed,
            "retried": outcome.retried,
            "failures": dict(sorted(outcome.failure_counts.items())),
            "degraded": outcome.degraded,
            "service": outcome.service,
            "scenarios": [
                {
                    "spec": task.spec.canonical_dict(),
                    "digest": task.spec.config_digest(),
                    "label": task.spec.display_name,
                    "cached": task.cached,
                    "result": task.result.to_dict(),
                }
                for task in outcome.outcomes
            ],
        }
        with open(args.json, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  sweep JSON written to {args.json}", file=sys.stderr)
    return 0


def cmd_micro(args) -> int:
    rows = [
        ["1-byte round trip (us)", 126.2, MICRO.rtt_1byte * 1e6],
        ["lock acquisition (us)", 180.6, f"{MICRO.lock_min*1e6:.0f}-{MICRO.lock_max*1e6:.0f}"],
        ["page transfer (us)", 1309.3, MICRO.page_transfer * 1e6],
        ["diff fetch (us)", "315.8-1547.4", f"{MICRO.diff_min*1e6:.0f}-{MICRO.diff_max*1e6:.0f}"],
    ]
    print(format_table(["operation", "simulated", "paper"], rows,
                       title="§5.1 micro-benchmarks (see benchmarks/test_micro_network.py)"))
    return 0


def cmd_fig3(args) -> int:
    rows = []
    for n in (8, 6, 4):
        for label, leaver in (("end", n - 1), ("middle", n // 2)):
            for strategy in (CompactShift(), SwapLast()):
                frac = float(moved_fraction(n, [leaver], strategy))
                rows.append([n, label, leaver, strategy.name, f"{frac:.3f}"])
    print(format_table(
        ["procs", "leaver", "pid", "strategy", "moved fraction"],
        rows,
        title=f"Figure 3 analytic data movement (paper: end {FIGURE3_MOVED['end']}, "
              f"middle {FIGURE3_MOVED['middle']})",
    ))
    return 0


def cmd_migration(args) -> int:
    from .cluster import NodePool
    from .config import SystemConfig
    from .dsm import TmkRuntime
    from .network import Switch
    from .simcore import Simulator

    cfg = SystemConfig()
    rows = []
    for app_name in APP_NAMES:
        sim = Simulator()
        pool = NodePool(sim, Switch(sim, cfg.network))
        rt = TmkRuntime(sim, cfg, pool.add_nodes(1), materialized=False)
        PAPER[app_name].make().allocate(rt)
        image = rt.space.total_pages * cfg.dsm.page_size + cfg.migration.image_overhead_bytes
        copy = cfg.migration.copy_time(image)
        rows.append([
            app_name, f"{image / 1e6:.1f}",
            f"{cfg.migration.spawn_time_min + copy:.2f}-{cfg.migration.spawn_time_max + copy:.2f}",
            MIGRATION_COST[app_name],
        ])
    print(format_table(
        ["app", "image (MB)", "model cost (s)", "paper (s)"],
        rows,
        title="§5.3 direct migration cost (spawn 0.6-0.8s + image at 8.1 MB/s)",
    ))
    return 0


def cmd_perfbench(args) -> int:
    from .bench.perf import (
        compare_to_baseline,
        load_report,
        run_perfbench,
        write_report,
    )

    if args.executor == "remote":
        print("perfbench measures this host's wall clock; "
              "--executor remote is not supported", file=sys.stderr)
        return 2
    cache = None
    if args.cache and not args.no_cache:
        from .exec import ResultCache

        cache = ResultCache(root=args.cache_dir)
    baseline_path = args.baseline
    max_regression = args.max_regression
    if args.compare:
        if baseline_path and baseline_path != args.compare:
            print("--compare and --baseline name different files",
                  file=sys.stderr)
            return 2
        baseline_path = args.compare
        if max_regression is None:
            max_regression = 0.10
    if max_regression is None:
        max_regression = 0.30
    repeat = args.repeat
    if repeat is None:
        repeat = 3 if args.quick else 1
    jobs = args.jobs if args.jobs is not None else 1
    report = run_perfbench(
        quick=args.quick, paper=args.paper, repeat=repeat,
        jobs=1 if args.executor == "serial" else jobs,
        cache=cache, refresh=args.refresh,
        parallel_check=args.parallel,
    )
    rows = []
    for name, e in sorted(report["results"].items()):
        rows.append([
            name,
            f"{e['wall_seconds']:.3f}",
            f"{e['sim_seconds']:.3f}",
            f"{e['events_per_sec'] / 1e3:.1f}k",
            f"{e['sim_per_wall']:.2f}",
            f"{e['normalized_score']:.4f}",
        ])
    print(format_table(
        ["scenario", "wall (s)", "sim (s)", "events/s", "sim/wall", "norm. score"],
        rows,
        title=f"Engine wall-clock benchmarks "
              f"(spin {report['calibration']['spin_events_per_sec'] / 1e6:.2f}M events/s)",
    ))
    micro = report["micro"]
    print(f"  micro: notice apply {micro['notice_apply_per_sec'] / 1e3:.0f}k/s, "
          f"plan lookup {micro['plan_lookup_per_sec'] / 1e3:.0f}k/s, "
          f"diff apply {micro['diff_apply_per_sec'] / 1e3:.0f}k/s, "
          f"vc tick {micro['vc_tick_per_sec'] / 1e3:.0f}k/s")
    if report.get("cache"):
        c = report["cache"]
        print(f"  cache: {c['hits']} hits, {c['misses']} misses, "
              f"{c['invalidations']} invalidations, {c['stores']} stores")
    if "parallel" in report:
        p = report["parallel"]
        print(f"  parallel: {p['scenarios']} scenarios, jobs={p['jobs']}, "
              f"serial {p['serial_wall_seconds']:.2f}s vs parallel "
              f"{p['parallel_wall_seconds']:.2f}s -> {p['speedup']:.2f}x "
              f"(results identical: {p['identical']})")
    if args.profile is not None:
        from .bench.perf import profile_scenarios

        print(profile_scenarios(
            quick=args.quick, paper=args.paper, top=args.profile
        ), end="")
    if args.check_obs:
        from .bench.perf import run_obs_identity_check

        check = run_obs_identity_check(quick=args.quick)
        report["obs_identity"] = check
        if check["identical"]:
            print(f"  obs identity: {len(check['scenarios'])} scenarios "
                  "bitwise identical with observability on and off")
        else:
            print(f"  OBS LEAK: observability changed the simulated outputs "
                  f"of {', '.join(check['mismatches'])}", file=sys.stderr)
    if args.check_flights:
        from .bench.perf import run_flight_identity_check

        check = run_flight_identity_check(quick=args.quick)
        report["flight_identity"] = check
        if check["identical"]:
            print(f"  flight identity: {len(check['scenarios'])} scenarios "
                  "bitwise identical with flight batching on and off")
        else:
            print(f"  FLIGHT DRIFT: flight batching changed the simulated "
                  f"outputs of {', '.join(check['mismatches'])}",
                  file=sys.stderr)
    write_report(report, args.out)
    print(f"  report written to {args.out}")
    if args.check_obs and not report["obs_identity"]["identical"]:
        return 1
    if args.check_flights and not report["flight_identity"]["identical"]:
        return 1
    if baseline_path:
        try:
            baseline = load_report(baseline_path)
        except OSError as err:
            print(f"cannot read baseline {baseline_path!r}: {err}", file=sys.stderr)
            return 2
        regressions = compare_to_baseline(report, baseline, max_regression)
        if regressions:
            for name, old, new, drop in regressions:
                print(f"  REGRESSION {name}: normalized score {old:.4f} -> {new:.4f} "
                      f"({drop:.0%} drop > {max_regression:.0%} allowed)",
                      file=sys.stderr)
            return 1
        print(f"  no regression vs {baseline_path} "
              f"(threshold {max_regression:.0%})")
    return 0


def cmd_scale(args) -> int:
    """Scaling sweep: flat vs tree sync, star vs fat-tree, several sizes."""
    from .bench.scale import (
        DEFAULT_NODES,
        format_scale_table,
        run_scale,
        write_scale_report,
    )

    if args.nodes:
        try:
            nodes = [int(v) for v in args.nodes.split(",") if v.strip()]
        except ValueError:
            print(f"bad --nodes {args.nodes!r}; expected e.g. 8,32,128",
                  file=sys.stderr)
            return 2
    else:
        nodes = list(DEFAULT_NODES) if not args.quick else [8, 32]
    report = run_scale(nodes=nodes, quick=args.quick,
                       gate_scenario=not args.no_gate_scenario)
    print(format_scale_table(report))
    if args.out:
        write_scale_report(report, args.out)
        print(f"\n  report written to {args.out}")
    return 0


def cmd_chaos(args) -> int:
    """Seeded fault injection against the execution engine.

    Runs a fault-free baseline, replays the same specs under a chaos
    plan (worker kills/hangs/slowdowns), then corrupts warm-cache
    entries and sweeps again — asserting bitwise identity throughout.
    Exit 0 means the engine absorbed every injected fault; a structured,
    attributed failure report and exit 1 mean it (correctly) gave up.
    """
    from pathlib import Path

    from .api import spec_from_preset
    from .exec.chaos import ChaosPlan, run_chaos
    from .exec.supervisor import DeadlinePolicy, RetryPolicy, SupervisorPolicy

    apps = [a.strip() for a in args.apps.split(",") if a.strip()]
    for app in apps:
        if app not in APP_NAMES:
            print(f"unknown app {app!r}; one of {', '.join(APP_NAMES)}",
                  file=sys.stderr)
            return 2
    try:
        nodes = [int(v) for v in args.nodes.split(",") if v.strip()]
    except ValueError:
        print(f"bad --nodes {args.nodes!r}; expected e.g. 1,4,8", file=sys.stderr)
        return 2
    specs = [
        spec_from_preset(args.preset, app, nprocs, calibrated=True,
                         seed=9000 + k, label=f"{app}-{nprocs}-chaos{k}")
        for app in apps for nprocs in nodes
        for k in range(max(1, args.scenarios))
    ]
    plan = ChaosPlan(
        seed=args.seed, kill_rate=args.kill_rate, hang_rate=args.hang_rate,
        slow_rate=args.slow_rate, hang_seconds=args.hang_seconds,
    )
    supervisor = SupervisorPolicy(
        retry=RetryPolicy(max_attempts=args.retries + 1, seed=args.seed),
        deadline=DeadlinePolicy(floor_seconds=args.deadline_floor),
        degrade_after=args.degrade_after,
    )
    # the chaos cache is scratch state: start from a clean slate so the
    # injected faults actually execute instead of hitting warm entries
    cache_root = Path(args.cache_dir)
    for stale in cache_root.glob("*.json"):
        stale.unlink()
    quarantine = cache_root / "quarantine"
    if quarantine.is_dir():
        for stale in quarantine.iterdir():
            stale.unlink()
    try:
        report = run_chaos(
            specs, plan, cache_root, jobs=args.jobs, corrupt=args.corrupt,
            supervisor=supervisor, progress=_progress_printer(len(specs)),
        )
    except ReproError as err:
        kind = getattr(err, "kind", "error")
        print(f"chaos run failed [{kind}]: {err}", file=sys.stderr)
        digest = getattr(err, "digest", "")
        if digest:
            print(f"  task digest {digest[:12]}, "
                  f"attempts {getattr(err, 'attempts', '?')}", file=sys.stderr)
        return 1
    chaos, corruption = report["chaos"], report["corruption"]
    rows = [
        ["scenarios", report["scenarios"]],
        ["jobs", report["jobs"]],
        ["bitwise identical to fault-free", "yes"],
        ["chaos sweep: executed", chaos["executed"]],
        ["chaos sweep: retried", chaos["retried"]],
        ["chaos sweep: degraded to serial",
         "yes" if chaos["degraded"] else "no"],
    ]
    for kind, n in sorted(chaos["failure_counts"].items()):
        rows.append([f"chaos sweep: {kind}", n])
    rows += [
        ["cache entries corrupted", len(corruption["damaged"])],
        ["quarantined", corruption["quarantined"]],
        ["re-executed after corruption", corruption["re_executed"]],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"Chaos harness (seed {plan.seed}, kill {plan.kill_rate:.0%}, "
              f"hang {plan.hang_rate:.0%}, slow {plan.slow_rate:.0%})",
    ))
    if corruption["quarantine_files"]:
        print(f"  quarantine ({corruption['quarantine_dir']}): "
              + ", ".join(corruption["quarantine_files"]), file=sys.stderr)
    if args.json:
        import json as _json

        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  chaos report written to {args.json}", file=sys.stderr)
    return 0


def cmd_recovery(args) -> int:
    from .bench import recovery_sweep, sweep_rows

    intervals = [None] + [float(v) for v in (args.intervals or "0.1,0.2,0.4").split(",")]
    executor = _executor_from_args(args, jobs_default=1)
    if executor is None:
        return 2
    points = recovery_sweep(
        intervals=intervals,
        nprocs=args.nprocs,
        crash_fraction=args.crash_fraction,
        executor=executor,
    )
    print(format_table(
        ["interval (s)", "t (s)", "overhead (s)", "ckpts", "detect (ms)",
         "restore (s)", "lost (s)", "verify"],
        sweep_rows(points),
        title=f"Jacobi crash-recovery cost vs. checkpoint interval "
              f"({args.nprocs} nodes, crash at {args.crash_fraction:.0%} of run)",
    ))
    return 0 if all(p.verified in (True, None) for p in points) else 1


# ---------------------------------------------------------------------------
# the distributed sweep service (docs/SERVICE.md)
# ---------------------------------------------------------------------------
def _coordinator_address(args) -> str:
    from .exec.service import DEFAULT_PORT

    return args.coordinator or f"127.0.0.1:{DEFAULT_PORT}"


def cmd_serve(args) -> int:
    """Run a sweep-service coordinator in the foreground."""
    from .errors import ExecError

    if args.stop:
        from .exec.service import stop_service

        address = args.coordinator or f"{args.host}:{args.port}"
        try:
            stop_service(address)
        except ExecError as err:
            print(f"cannot stop coordinator at {address}: {err}",
                  file=sys.stderr)
            return 2
        print(f"coordinator at {address} stopped")
        return 0
    from .api import serve

    try:
        coordinator = serve(
            args.host, args.port,
            cache_dir=None if args.no_cache else args.cache_dir,
            no_cache=args.no_cache,
            max_attempts=args.max_attempts,
        )
    except (ReproError, OSError) as err:
        print(f"cannot start coordinator: {err}", file=sys.stderr)
        return 2
    cache_desc = "off" if args.no_cache else args.cache_dir
    print(f"coordinator listening on {coordinator.address} "
          f"(cache: {cache_desc}); submit with `repro submit --coordinator "
          f"{coordinator.address}`, add workers with `repro workers "
          f"--coordinator {coordinator.address}`", file=sys.stderr)
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    return 0


def cmd_submit(args) -> int:
    """Submit a scenario grid to a running coordinator, stream reports."""
    from .api import submit
    from .errors import ExecError

    built = _grid_specs(args)
    if built is None:
        return 2
    grid, specs = built
    address = _coordinator_address(args)
    reports = []
    try:
        for rep in submit(specs, address, no_cache=args.no_cache,
                          refresh=args.refresh):
            via = ("cache" if rep.cached
                   else "deduped" if rep.deduped
                   else f"{rep.worker_id or '?'} in {rep.wall_seconds:.2f}s")
            print(f"  [{len(reports) + 1}/{len(specs)}] "
                  f"{rep.spec.display_name}: {via}", file=sys.stderr)
            reports.append(rep)
    except ExecError as err:
        print(f"submission to {address} failed: {err}", file=sys.stderr)
        return 1
    reports.sort(key=lambda r: r.index)
    rows = [
        [app, nprocs, f"{rep.result.runtime_seconds:.2f}", rep.result.pages,
         f"{rep.result.megabytes:.1f}", rep.result.messages, rep.result.diffs,
         "cache" if rep.cached else "deduped" if rep.deduped
         else rep.worker_id or "?"]
        for (app, nprocs), rep in zip(grid, reports)
    ]
    print(format_table(
        ["app", "nodes", "t(s)", "pages", "MB", "messages", "diffs", "via"],
        rows,
        title=f"Remote sweep via {address} ({args.preset} preset)",
    ))
    hits = sum(1 for r in reports if r.cached)
    deduped = sum(1 for r in reports if r.deduped)
    print(f"  {len(reports)} scenario(s): {hits} from the coordinator "
          f"cache, {deduped} deduped onto in-flight executions",
          file=sys.stderr)
    if args.json:
        import json as _json

        payload = {
            "schema": "repro-sweep/1",
            "preset": args.preset,
            "coordinator": address,
            "scenarios": [
                {
                    "spec": rep.spec.canonical_dict(),
                    "digest": rep.spec.config_digest(),
                    "label": rep.spec.display_name,
                    "cached": rep.cached,
                    "deduped": rep.deduped,
                    "worker": rep.worker_id,
                    "result": rep.result.to_dict(),
                }
                for rep in reports
            ],
        }
        with open(args.json, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.json}", file=sys.stderr)
    return 0


def cmd_workers(args) -> int:
    """Run service workers against a coordinator (or show its table)."""
    from .errors import ExecError

    address = _coordinator_address(args)
    if args.status:
        from .exec.service import service_status

        try:
            status = service_status(address)
        except ExecError as err:
            print(f"cannot reach coordinator at {address}: {err}",
                  file=sys.stderr)
            return 2
        rows = [
            [w["id"], w["host"], w["pid"], w["slots"], w["busy"],
             w["tasks_done"]]
            for w in status["workers"]
        ] or [["(none)", "", "", "", "", ""]]
        print(format_table(
            ["worker", "host", "pid", "slots", "busy", "tasks done"],
            rows, title=f"Workers registered at {address}",
        ))
        counters = status["counters"]
        print("  " + " ".join(
            f"{key}={counters.get(key, 0)}"
            for key in ("submitted", "executed", "cache_hits", "deduped",
                        "requeued", "failed", "queued", "inflight")))
        return 0
    from .exec.worker import worker_main

    jobs = args.jobs if args.jobs is not None else 1
    cache_dir = None if args.no_cache else args.cache_dir
    count = max(1, args.count)
    print(f"starting {count} worker(s) against {address} "
          f"(leaf jobs={jobs}, cache: {cache_dir or 'off'})", file=sys.stderr)
    if count == 1:
        try:
            worker_main(address, cache_dir=cache_dir, jobs=jobs,
                        slots=args.slots)
        except ExecError as err:
            print(f"worker failed: {err}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            pass
        return 0
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    procs = [
        ctx.Process(target=worker_main, args=(address,),
                    kwargs=dict(cache_dir=cache_dir, jobs=jobs,
                                slots=args.slots))
        for _ in range(count)
    ]
    for proc in procs:
        proc.start()
    try:
        for proc in procs:
            proc.join()
    except KeyboardInterrupt:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.join()
    return 0


def cmd_cache_merge(args) -> int:
    """Lossless union of two result-cache directories."""
    from .exec.merge import merge_caches

    try:
        stats = merge_caches(args.src, args.dst)
    except ReproError as err:
        print(f"cache merge failed: {err}", file=sys.stderr)
        return 2
    rows = [[key, value] for key, value in stats.as_dict().items()]
    print(format_table(
        ["metric", "value"], rows,
        title=f"Cache merge {args.src} -> {args.dst}",
    ))
    if stats.conflicts or stats.damaged:
        print(f"  {stats.conflicts} conflict(s), {stats.damaged} damaged "
              f"entr(ies) quarantined under {args.dst}/quarantine/",
              file=sys.stderr)
        return 1
    return 0


def _engine_parent() -> argparse.ArgumentParser:
    """The shared argparse parent carrying the execution-engine flags.

    Every engine-driven command (``sweep``/``table1``/``perfbench``/
    ``recovery``/``serve``/``submit``/``workers``) accepts the same
    ``--jobs``/``--no-cache``/``--refresh``/``--cache-dir``/
    ``--executor``/``--coordinator`` set.  ``--jobs`` always parses as
    None; commands that are serial by default (``table1``/``perfbench``/
    ``recovery``) resolve None -> 1 in their command functions, because a
    per-subparser ``set_defaults(jobs=...)`` would mutate the shared
    parent action and leak into every other command.
    """
    from .config import EXEC_CACHE_DIR
    from .exec.executor import BACKENDS

    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group("execution engine")
    g.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the scenario engine "
                        "(default: command-specific; unset means one "
                        "per core)")
    g.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed result cache")
    g.add_argument("--refresh", action="store_true",
                   help="re-execute and re-store even on a warm cache")
    g.add_argument("--cache-dir", default=EXEC_CACHE_DIR,
                   help="result-cache directory (default: %(default)s)")
    g.add_argument("--executor", choices=BACKENDS, default="local",
                   help="execution backend (default: %(default)s); "
                        "'remote' submits to a coordinator")
    g.add_argument("--coordinator", default=None, metavar="HOST:PORT",
                   help="sweep-service coordinator address (for "
                        "--executor remote and the service commands)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive OpenMP-on-NOW (PPoPP 1999) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    engine = _engine_parent()

    sub.add_parser("list", help="list workload presets").set_defaults(fn=cmd_list)
    sub.add_parser("calibrate", help="show calibrated compute rates").set_defaults(fn=cmd_calibrate)
    t1 = sub.add_parser("table1", help="regenerate Table 1", parents=[engine])
    t1.set_defaults(fn=cmd_table1)
    sub.add_parser("micro", help="§5.1 micro-benchmark summary").set_defaults(fn=cmd_micro)
    sub.add_parser("fig3", help="Figure 3 analytic fractions").set_defaults(fn=cmd_fig3)
    sub.add_parser("migration", help="§5.3 migration cost model").set_defaults(fn=cmd_migration)

    sweep = sub.add_parser(
        "sweep",
        help="run an app x nodes scenario grid through the parallel engine",
        parents=[engine],
    )
    sweep.add_argument("--apps", default=",".join(APP_NAMES),
                       help="comma-separated kernels (default: all)")
    sweep.add_argument("--nodes", default="1,4,8",
                       help="comma-separated team sizes (default: %(default)s)")
    sweep.add_argument("--preset", choices=sorted(PRESETS), default="bench")
    sweep.add_argument("--uncalibrated", action="store_true",
                       help="use the kernels' stock compute rates instead of "
                            "the Table-1-calibrated ones")
    sweep.add_argument("--json", default=None, metavar="FILE",
                       help="also write the full sweep (specs, digests, "
                            "results) as JSON")
    sweep.add_argument("--timeline", default=None, metavar="FILE",
                       help="write the worker-pool timeline as a Chrome "
                            "trace (one track per worker)")
    sweep.set_defaults(fn=cmd_sweep)

    def _add_scenario_args(p, app_required=True):
        """The scenario-description flags run and report share."""
        if app_required:
            p.add_argument("app", help=f"kernel: {', '.join(APP_NAMES)}")
        else:
            p.add_argument("app", nargs="?", default=None,
                           help=f"kernel: {', '.join(APP_NAMES)}")
        p.add_argument("--nprocs", type=int, default=4)
        p.add_argument("--preset", choices=sorted(PRESETS), default="bench")
        p.add_argument("--adaptive", action="store_true",
                       help="use the adaptive runtime even without events")
        p.add_argument("--materialized", action="store_true",
                       help="run real data through the DSM and verify")
        p.add_argument("--extra-nodes", type=int, default=2,
                       help="idle workstations available for joins")
        p.add_argument("--grace", type=float, default=None,
                       help="grace period for scripted leaves (s)")
        p.add_argument("--event", action="append", type=_parse_event,
                       metavar="ACTION:TIME[:NODE]",
                       help="schedule an adapt event or crash (repeatable)")
        p.add_argument("--faults", metavar="FILE", default=None,
                       help="replay a fault plan file (crashes, partitions, "
                            "message duplication/delay)")
        p.add_argument("--checkpoint-interval", type=float, default=None,
                       help="checkpoint period in simulated seconds")
        p.add_argument("--failure-detection", action="store_true",
                       help="run the heartbeat failure detector (implied by "
                            "crash events and --faults)")

    run = sub.add_parser("run", help="run one kernel on a simulated NOW")
    _add_scenario_args(run)
    run.set_defaults(fn=cmd_run)

    rep = sub.add_parser(
        "report",
        help="run one observed scenario and print the §5 adaptation-cost "
             "breakdown (or render one from a cached sweep digest)",
    )
    _add_scenario_args(rep, app_required=False)
    rep.add_argument("--digest", default=None, metavar="DIGEST",
                     help="render the cost table from a cached sweep entry "
                          "(unique digest prefix) instead of running")
    rep.add_argument("--sweep", default=None, metavar="FILE",
                     help="render the failure/retry/cache counters of a "
                          "sweep JSON (from `repro sweep --json`) instead "
                          "of running")
    rep.add_argument("--trace", default=None, metavar="FILE",
                     help="export the Chrome/Perfetto trace.json")
    rep.add_argument("--metrics", default=None, metavar="FILE",
                     help="export the flat metrics.json")
    rep.add_argument("--cache-dir", default=None,
                     help="result-cache directory for --digest")
    rep.add_argument("--scale", default=None, metavar="FILE",
                     help="render the scaling table of a `repro scale` "
                          "JSON report instead of running")
    rep.set_defaults(fn=cmd_report)

    perf = sub.add_parser(
        "perfbench",
        help="wall-clock engine benchmarks (events/s, sim-s per wall-s)",
        parents=[engine],
    )
    perf.add_argument("--quick", action="store_true",
                      help="small scenarios for CI smoke runs")
    perf.add_argument("--paper", action="store_true",
                      help="also run the full Table-1 Jacobi configuration")
    perf.add_argument("--repeat", type=int, default=None,
                      help="measurement pairs per scenario; single-job runs "
                           "interleave a spin calibration with every repeat "
                           "and record the paired normalized scores the "
                           "confidence-interval gate consumes (default 1, "
                           "or 3 with --quick)")
    perf.add_argument("--out", default="BENCH_perf.json",
                      help="where to write the JSON report")
    perf.add_argument("--baseline", default=None,
                      help="baseline BENCH_perf.json to gate against")
    perf.add_argument("--compare", metavar="FILE", default=None,
                      help="regression gate against FILE: fails only when "
                           "the 95%% confidence interval of the paired "
                           "spin-normalized score ratio resolves a drop "
                           "beyond the allowance (shorthand for "
                           "--baseline FILE --max-regression 0.10; point "
                           "comparison when either report lacks samples)")
    perf.add_argument("--max-regression", type=float, default=None,
                      help="allowed normalized-score drop vs the baseline "
                           "(default 0.30, or 0.10 with --compare)")
    perf.add_argument("--cache", action="store_true",
                      help="replay scenario entries from the result cache "
                           "(off by default: perfbench measures wall clock)")
    perf.add_argument("--parallel", action="store_true",
                      help="also measure the engine's --jobs speedup "
                           "(serial vs worker pool, bitwise-compared)")
    perf.add_argument("--check-obs", action="store_true",
                      help="also rerun every scenario with observability "
                           "enabled and exit non-zero unless the simulated "
                           "outputs are bitwise identical to the "
                           "uninstrumented run")
    perf.add_argument("--check-flights", action="store_true",
                      help="also rerun every scenario with flight batching "
                           "forced on and off and exit non-zero unless the "
                           "simulated outputs are bitwise identical "
                           "(PROTOCOL.md §13)")
    perf.add_argument("--profile", nargs="?", const=25, type=int, default=None,
                      metavar="N",
                      help="cProfile every scenario run and dump the top N "
                           "functions by cumulative time (default 25) — the "
                           "floor-hunting view that previously needed ad-hoc "
                           "instrumentation; wall numbers are reported "
                           "unprofiled runs, the profile is an extra pass")
    perf.set_defaults(fn=cmd_perfbench)

    scale = sub.add_parser(
        "scale",
        help="scaling sweep: flat vs tree synchronization and star vs "
             "fat-tree interconnect across NOW sizes (max per-link load)",
    )
    scale.add_argument("--nodes", default=None,
                       help="comma-separated team sizes "
                            "(default: 8,16,32,64,128; 8,32 with --quick)")
    scale.add_argument("--quick", action="store_true",
                       help="smaller kernels and sizes for CI smoke runs")
    scale.add_argument("--out", default=None, metavar="FILE",
                       help="write the JSON report (the committed curve is "
                            "benchmarks/BENCH_scale_pr8.json)")
    scale.add_argument("--no-gate-scenario", action="store_true",
                       help="skip the perfbench-format gauss-32-quick entry "
                            "(the hook that lets the report serve as a "
                            "`repro perfbench --compare` baseline)")
    scale.set_defaults(fn=cmd_scale)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault injection: worker kills/hangs + cache corruption, "
             "asserting bitwise-identical sweeps",
    )
    chaos.add_argument("--apps", default="jacobi",
                       help="comma-separated kernels (default: %(default)s)")
    chaos.add_argument("--nodes", default="4",
                       help="comma-separated team sizes (default: %(default)s)")
    chaos.add_argument("--preset", choices=sorted(PRESETS), default="tiny")
    chaos.add_argument("--scenarios", type=int, default=3,
                       help="distinct seeds per app x nodes cell "
                            "(default: %(default)s)")
    chaos.add_argument("--jobs", type=int, default=2,
                       help="pool size for the chaos sweeps")
    chaos.add_argument("--seed", type=int, default=7,
                       help="chaos plan + backoff seed (runs replay exactly)")
    chaos.add_argument("--kill-rate", type=float, default=0.5,
                       help="P(worker killed) per task attempt")
    chaos.add_argument("--hang-rate", type=float, default=0.0,
                       help="P(worker hangs past its deadline) per attempt")
    chaos.add_argument("--slow-rate", type=float, default=0.25,
                       help="P(worker naps briefly) per attempt")
    chaos.add_argument("--hang-seconds", type=float, default=30.0,
                       help="sleep of an injected hang (exceed the deadline)")
    chaos.add_argument("--corrupt", type=int, default=1,
                       help="warm-cache entries to truncate/bit-flip")
    chaos.add_argument("--retries", type=int, default=2,
                       help="retry budget per task under chaos")
    chaos.add_argument("--deadline-floor", type=float, default=60.0,
                       help="per-task deadline floor in seconds")
    chaos.add_argument("--degrade-after", type=int, default=3,
                       help="consecutive failures before serial degradation "
                            "(0 disables)")
    chaos.add_argument("--cache-dir", default="benchmarks/results/chaos-cache",
                       help="scratch result cache (cleared each run; "
                            "default: %(default)s)")
    chaos.add_argument("--json", default=None, metavar="FILE",
                       help="write the full chaos report as JSON")
    chaos.set_defaults(fn=cmd_chaos)

    rec = sub.add_parser(
        "recovery",
        help="crash-recovery cost vs. checkpoint interval (Jacobi)",
        parents=[engine],
    )
    rec.add_argument("--nprocs", type=int, default=4)
    rec.add_argument("--intervals", default=None,
                     help="comma-separated checkpoint intervals in seconds")
    rec.add_argument("--crash-fraction", type=float, default=0.55,
                     help="crash instant as a fraction of the fault-free run")
    rec.set_defaults(fn=cmd_recovery)

    from .exec.service import DEFAULT_PORT

    serve_p = sub.add_parser(
        "serve",
        help="run a sweep-service coordinator (workers register, clients "
             "submit; results land in the shared cache)",
        parents=[engine],
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="interface to listen on (default: %(default)s)")
    serve_p.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help="TCP port (default: %(default)s; 0 binds an "
                              "ephemeral port)")
    serve_p.add_argument("--max-attempts", type=int, default=None,
                         help="worker-death attempts per task before its "
                              "submitters see a failure (default: 3)")
    serve_p.add_argument("--stop", action="store_true",
                         help="stop the coordinator at --coordinator (or "
                              "--host:--port) instead of starting one")
    serve_p.set_defaults(fn=cmd_serve)

    submit_p = sub.add_parser(
        "submit",
        help="submit an app x nodes grid to a running coordinator and "
             "stream the reports back",
        parents=[engine],
    )
    submit_p.add_argument("--apps", default=",".join(APP_NAMES),
                          help="comma-separated kernels (default: all)")
    submit_p.add_argument("--nodes", default="1,4,8",
                          help="comma-separated team sizes "
                               "(default: %(default)s)")
    submit_p.add_argument("--preset", choices=sorted(PRESETS),
                          default="bench")
    submit_p.add_argument("--uncalibrated", action="store_true",
                          help="use the kernels' stock compute rates")
    submit_p.add_argument("--json", default=None, metavar="FILE",
                          help="write the streamed reports as JSON "
                               "(sweep-payload shape)")
    submit_p.set_defaults(fn=cmd_submit)

    workers_p = sub.add_parser(
        "workers",
        help="run service workers against a coordinator (--status shows "
             "the registered-worker table)",
        parents=[engine],
    )
    workers_p.add_argument("--count", type=int, default=1,
                           help="worker processes to start "
                                "(default: %(default)s)")
    workers_p.add_argument("--slots", type=int, default=1,
                           help="concurrent tasks each worker leases "
                                "(default: %(default)s)")
    workers_p.add_argument("--status", action="store_true",
                           help="query the coordinator's worker table "
                                "instead of starting workers")
    workers_p.set_defaults(fn=cmd_workers)

    cache_p = sub.add_parser(
        "cache", help="result-cache maintenance (merge)",
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    merge_p = cache_sub.add_parser(
        "merge",
        help="lossless union of two cache directories (checksum-verified; "
             "conflicts quarantined)",
    )
    merge_p.add_argument("src", help="source cache directory (read-only)")
    merge_p.add_argument("dst", help="destination cache directory")
    merge_p.set_defaults(fn=cmd_cache_merge)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
