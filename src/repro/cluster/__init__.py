"""NOW cluster model: workstation nodes, the pool, availability daemons."""

from .adapt_events import EventScript, PeriodicAlternator, ScriptedEvent, select_pid
from .availability import DaySchedule, OwnerSchedule, PoissonOwnerActivity
from .loadsensor import LoadSensor
from .node import Node
from .pool import NodePool
from .traces import TraceEvent, TraceReplay, dump_trace, parse_trace, synthesize_workday

__all__ = [
    "DaySchedule",
    "EventScript",
    "LoadSensor",
    "Node",
    "NodePool",
    "OwnerSchedule",
    "PeriodicAlternator",
    "PoissonOwnerActivity",
    "ScriptedEvent",
    "select_pid",
    "TraceEvent",
    "TraceReplay",
    "dump_trace",
    "parse_trace",
    "synthesize_workday",
]
