"""NOW cluster model: workstation nodes, the pool, availability daemons."""

from .adapt_events import EventScript, PeriodicAlternator, ScriptedEvent, select_pid
from .availability import DaySchedule, OwnerSchedule, PoissonOwnerActivity
from .loadsensor import LoadSensor
from .node import Node
from .pool import NodePool
from .traces import (
    AvailabilityEvent,
    TraceReplay,
    dump_trace,
    parse_trace,
    synthesize_workday,
)


def __getattr__(name):
    if name == "TraceEvent":  # renamed; the traces module carries the warning
        from . import traces

        return traces.TraceEvent
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DaySchedule",
    "EventScript",
    "LoadSensor",
    "Node",
    "NodePool",
    "OwnerSchedule",
    "PeriodicAlternator",
    "PoissonOwnerActivity",
    "ScriptedEvent",
    "select_pid",
    "AvailabilityEvent",
    "TraceReplay",
    "dump_trace",
    "parse_trace",
    "synthesize_workday",
]
