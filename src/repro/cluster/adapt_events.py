"""Adapt-event generators for experiments.

The paper deliberately leaves event generation out of scope ("a daemon may
generate events at set times according to an operational schedule, or a
load sensor may be employed").  These are the daemons used by the
benchmark harness:

* :class:`EventScript` — explicit (time, action, node) list;
* :class:`PeriodicAlternator` — Table 2's experiment: alternately leave
  and re-join, at most one adapt event per adaptation point, targeting
  the *end* or a *middle* process id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Literal, Optional, Sequence, Tuple, Union

from ..core.adaptation import RequestState
from ..errors import AdaptationError

Action = Literal["join", "leave", "crash"]
PidSelector = Union[int, Literal["end", "middle"]]


@dataclass(frozen=True)
class ScriptedEvent:
    time: float
    action: Action
    node_id: int
    grace: Optional[float] = None


class EventScript:
    """Submit a fixed list of adapt events at fixed simulated times."""

    def __init__(self, runtime, events: Sequence[ScriptedEvent]):
        self.runtime = runtime
        self.events = sorted(events, key=lambda e: (e.time, e.node_id))
        self.submitted: List[ScriptedEvent] = []

    def install(self) -> None:
        """Schedule every event on the runtime's simulator."""
        for ev in self.events:
            self.runtime.sim.at(ev.time, lambda ev=ev: self._fire(ev))

    def _fire(self, ev: ScriptedEvent) -> None:
        if ev.action == "join":
            self.runtime.submit_join(ev.node_id)
        elif ev.action == "crash":
            self.runtime.inject_crash(ev.node_id)
        else:
            self.runtime.submit_leave(ev.node_id, grace=ev.grace)
        self.submitted.append(ev)


def select_pid(nprocs: int, selector: PidSelector) -> int:
    """Resolve Table 2's leaver choice: 'end' (highest pid) or 'middle'."""
    if isinstance(selector, int):
        if not 0 < selector < nprocs:
            raise AdaptationError(f"pid selector {selector} outside team of {nprocs}")
        return selector
    if selector == "end":
        return nprocs - 1
    if selector == "middle":
        return nprocs // 2
    raise AdaptationError(f"unknown pid selector {selector!r}")


class PeriodicAlternator:
    """Alternate leave/join of a chosen process id (Table 2's workload).

    Waits for each adapt event to complete before scheduling the next, so
    at most a single join or a single leave happens per adaptation point,
    matching the paper's measurement setup.
    """

    def __init__(
        self,
        runtime,
        selector: PidSelector = "end",
        gap: float = 1.0,
        max_events: Optional[int] = None,
        grace: Optional[float] = None,
        start_delay: float = 0.0,
    ):
        if gap < 0:
            raise AdaptationError("gap must be >= 0")
        self.runtime = runtime
        self.selector = selector
        self.gap = gap
        self.max_events = max_events
        self.grace = grace
        self.start_delay = start_delay
        #: (time_submitted, action, node_id, completed_at)
        self.events: List[Tuple[float, Action, int, Optional[float]]] = []

    def install(self) -> None:
        self.runtime.sim.process(self._run(), name="alternator", daemon=True)

    def _wait_done(self, req) -> Generator:
        sim = self.runtime.sim
        while req.state not in (RequestState.DONE, RequestState.CANCELLED):
            if self.runtime.finished:
                return
            yield sim.timeout(0.05)

    def _run(self) -> Generator:
        runtime = self.runtime
        sim = runtime.sim
        yield sim.timeout(self.start_delay)
        count = 0
        while not runtime.finished and (
            self.max_events is None or count < self.max_events
        ):
            # leave the node currently holding the selected pid
            pid = select_pid(runtime.team.nprocs, self.selector)
            node_id = runtime.team.node_of(pid)
            req = runtime.submit_leave(node_id, grace=self.grace)
            if req is None:
                return
            yield from self._wait_done(req)
            if runtime.finished:
                return
            self.events.append((req.submitted_at, "leave", node_id, req.completed_at))
            count += 1
            if self.max_events is not None and count >= self.max_events:
                return
            yield sim.timeout(self.gap)

            # bring the same node back in
            jreq = runtime.submit_join(node_id)
            yield from self._wait_done(jreq)
            if runtime.finished:
                return
            self.events.append((jreq.submitted_at, "join", node_id, jreq.completed_at))
            count += 1
            yield sim.timeout(self.gap)
