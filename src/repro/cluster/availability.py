"""Workstation-owner availability models.

The NOW premise (§1): nodes become available and unavailable as their
owners go away and return.  Two stochastic/schedule daemons generate the
corresponding join/leave streams:

* :class:`OwnerSchedule` — deterministic office-hours behaviour per node
  (owner present => node leaves the pool);
* :class:`PoissonOwnerActivity` — exponential away/busy periods, the
  classic idle-workstation model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

from ..simcore import RandomStreams


@dataclass(frozen=True)
class DaySchedule:
    """Owner presence windows for one node: (arrive, depart) pairs."""

    node_id: int
    #: While the owner is present the node is *not* available to the pool.
    present: Tuple[Tuple[float, float], ...]
    #: Grace period the owner tolerates when reclaiming the machine.
    grace: Optional[float] = None

    def transitions(self) -> List[Tuple[float, str]]:
        """Chronological (time, 'leave'|'join') events for the pool."""
        out: List[Tuple[float, str]] = []
        for arrive, depart in self.present:
            if depart <= arrive:
                raise ValueError(f"presence window ({arrive}, {depart}) inverted")
            out.append((arrive, "leave"))  # owner arrives -> node leaves pool
            out.append((depart, "join"))  # owner departs -> node joins pool
        return sorted(out)


class OwnerSchedule:
    """Drive a runtime from per-node owner presence schedules."""

    def __init__(self, runtime, schedules: Sequence[DaySchedule]):
        self.runtime = runtime
        self.schedules = list(schedules)
        self.fired: List[Tuple[float, str, int]] = []

    def install(self) -> None:
        for sched in self.schedules:
            for time, action in sched.transitions():
                self.runtime.sim.at(
                    time,
                    lambda a=action, s=sched: self._fire(a, s),
                )

    def _fire(self, action: str, sched: DaySchedule) -> None:
        runtime = self.runtime
        if action == "leave":
            if runtime.team.has_node(sched.node_id) or runtime.pool.node(sched.node_id).in_pool:
                runtime.submit_leave(sched.node_id, grace=sched.grace)
        else:
            if not runtime.team.has_node(sched.node_id):
                runtime.submit_join(sched.node_id)
        self.fired.append((runtime.sim.now, action, sched.node_id))


class PoissonOwnerActivity:
    """Exponential owner presence/absence periods for a set of nodes."""

    def __init__(
        self,
        runtime,
        node_ids: Sequence[int],
        mean_away: float,
        mean_present: float,
        rng: Optional[RandomStreams] = None,
        grace: Optional[float] = None,
    ):
        if mean_away <= 0 or mean_present <= 0:
            raise ValueError("mean periods must be positive")
        self.runtime = runtime
        self.node_ids = list(node_ids)
        self.mean_away = mean_away
        self.mean_present = mean_present
        self.rng = rng or RandomStreams(runtime.cfg.seed)
        self.grace = grace
        self.fired: List[Tuple[float, str, int]] = []

    def install(self) -> None:
        for node_id in self.node_ids:
            self.runtime.sim.process(
                self._owner(node_id), name=f"owner.{node_id}", daemon=True
            )

    def _owner(self, node_id: int) -> Generator:
        runtime = self.runtime
        sim = runtime.sim
        stream = self.rng.stream(f"owner.{node_id}")
        from ..errors import AdaptationError

        while not runtime.finished:
            # the owner is away for a while, then returns (node leaves)
            yield sim.timeout(float(stream.exponential(self.mean_away)))
            if runtime.finished:
                return
            if runtime.team.has_node(node_id):
                try:
                    runtime.submit_leave(node_id, grace=self.grace)
                    self.fired.append((sim.now, "leave", node_id))
                except AdaptationError:
                    pass
            # the owner works for a while, then goes away (node rejoins)
            yield sim.timeout(float(stream.exponential(self.mean_present)))
            if runtime.finished:
                return
            if not runtime.team.has_node(node_id):
                try:
                    runtime.submit_join(node_id)
                    self.fired.append((sim.now, "join", node_id))
                except AdaptationError:
                    pass
