"""Load-sensor adapt-event daemon (§4: "a load sensor may be employed to
make load-dependent decisions").

Workstations report an *external load* (the owner's own processes).  The
sensor polls every node: sustained load above ``leave_threshold`` submits
a leave (the owner needs the machine); load back below
``join_threshold`` on a withdrawn node submits a join.  Hysteresis plus a
minimum dwell time prevent thrashing.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..errors import AdaptationError, ConfigurationError


class LoadSensor:
    """Polls per-node external load and drives adapt events from it."""

    def __init__(
        self,
        runtime,
        node_ids: Sequence[int],
        poll_interval: float = 0.25,
        leave_threshold: float = 0.5,
        join_threshold: float = 0.1,
        min_dwell: float = 1.0,
        grace: Optional[float] = None,
    ):
        if poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        if join_threshold > leave_threshold:
            raise ConfigurationError("join_threshold must not exceed leave_threshold")
        self.runtime = runtime
        self.node_ids = list(node_ids)
        self.poll_interval = poll_interval
        self.leave_threshold = leave_threshold
        self.join_threshold = join_threshold
        self.min_dwell = min_dwell
        self.grace = grace
        self._last_action_at: Dict[int, float] = {}
        self.fired: List[Tuple[float, str, int, float]] = []

    def install(self) -> None:
        self.runtime.sim.process(self._poll_loop(), name="loadsensor", daemon=True)

    # -- the per-node load signal -------------------------------------------
    @staticmethod
    def external_load(node) -> float:
        """The owner's competing load on this node (0 = idle)."""
        return getattr(node, "external_load", 0.0)

    @staticmethod
    def set_external_load(node, load: float) -> None:
        node.external_load = max(0.0, load)

    # -- polling ---------------------------------------------------------------
    def _poll_loop(self) -> Generator:
        runtime = self.runtime
        sim = runtime.sim
        while not runtime.finished:
            yield sim.timeout(self.poll_interval)
            if runtime.finished:
                return
            for node_id in self.node_ids:
                self._check(node_id)

    def _check(self, node_id: int) -> None:
        runtime = self.runtime
        sim = runtime.sim
        node = runtime.pool.node(node_id)
        load = self.external_load(node)
        last = self._last_action_at.get(node_id, -1e18)
        if sim.now - last < self.min_dwell:
            return
        participating = runtime.team.has_node(node_id)
        try:
            if participating and load >= self.leave_threshold:
                runtime.submit_leave(node_id, grace=self.grace)
                self._record(node_id, "leave", load)
            elif (
                not participating
                and load <= self.join_threshold
                and not any(
                    j.node_id == node_id and j.state.value in ("pending", "ready")
                    for j in runtime.queue.joins
                )
            ):
                if not node.in_pool:
                    node.rejoin()
                runtime.submit_join(node_id)
                self._record(node_id, "join", load)
        except AdaptationError:
            pass

    def _record(self, node_id: int, action: str, load: float) -> None:
        now = self.runtime.sim.now
        self._last_action_at[node_id] = now
        self.fired.append((now, action, node_id, load))
        self.runtime.sim.tracer.emit(
            "adapt", "load_sensor", f"{action} node{node_id} load={load:.2f}"
        )
