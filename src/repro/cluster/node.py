"""A workstation node of the NOW.

A node owns a switch port (NIC), a CPU with a relative speed factor, and a
count of resident computation processes.  When an urgent leave multiplexes
two DSM processes onto one node (§3, Figure 2.c), both resident processes
see their compute time stretched — which idles the other ``t − 2`` nodes at
the next synchronization, exactly the effect the paper describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..simcore import Resource, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..network import Nic, Switch


class Node:
    """One workstation: CPU + network port + owner state."""

    def __init__(self, sim: Simulator, switch: "Switch", node_id: int, speed: float = 1.0):
        if speed <= 0:
            raise ValueError("node speed must be positive")
        self.sim = sim
        self.node_id = node_id
        self.speed = speed
        self.switch = switch
        self.nic: "Nic" = switch.attach(node_id)
        #: Number of DSM processes currently multiplexed on this CPU.
        self.resident_processes = 0
        #: Serializes protocol-request service times on this node.
        self.handler_cpu = Resource(sim, capacity=1, name=f"node{node_id}.handler")
        #: False once the workstation owner reclaimed the machine.
        self.in_pool = True
        #: Accumulated compute seconds executed on this CPU.
        self.busy_time = 0.0
        #: True after a fail-stop crash; the node never comes back.
        self.crashed = False
        #: Simulated time of the crash (None while healthy).
        self.crashed_at: Optional[float] = None

    @property
    def multiplex_factor(self) -> int:
        """How many computation processes share the CPU (>= 1)."""
        return max(1, self.resident_processes)

    def add_process(self) -> None:
        self.resident_processes += 1

    def remove_process(self) -> None:
        if self.resident_processes <= 0:
            raise RuntimeError(f"node {self.node_id}: no resident process to remove")
        self.resident_processes -= 1

    def compute(self, seconds: float) -> Generator:
        """Charge ``seconds`` of single-process CPU work.

        The charge is stretched by the multiplex factor sampled at the start
        of the chunk and by the node's speed.  Callers split long work into
        per-iteration chunks, so factor changes take effect quickly.
        """
        if seconds < 0:
            raise ValueError("negative compute time")
        stretched = seconds * self.multiplex_factor / self.speed
        self.busy_time += stretched
        # A compute span is a macro-event: its completion time is fixed
        # here, so the engine may fast-forward through pure-compute phases
        # (see Simulator.compute_span).  Identical to a plain timeout
        # otherwise.
        yield self.sim.compute_span(stretched)

    def service(self, seconds: float) -> Generator:
        """Charge request-service time, serialized with other handlers."""
        yield self.handler_cpu.acquire()
        try:
            yield self.sim.timeout(seconds / self.speed)
        finally:
            self.handler_cpu.release()

    def withdraw(self) -> None:
        """The owner reclaims the node (after any leave completes)."""
        self.in_pool = False
        self.nic.detach()

    def rejoin(self) -> None:
        """The node becomes available again."""
        if self.crashed:
            raise RuntimeError(f"node {self.node_id} crashed and cannot rejoin")
        self.in_pool = True
        self.nic.reattach()

    def crash(self, now: float) -> None:
        """Fail-stop: power off the workstation, permanently.

        All resident processes die with the machine (the caller kills their
        coroutines); the NIC goes dark, so in-flight messages to this node
        are lost and later sends raise :class:`~repro.errors.NetworkError`.
        """
        if self.crashed:
            return
        self.crashed = True
        self.crashed_at = now
        self.in_pool = False
        self.resident_processes = 0
        self.nic.detach()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} res={self.resident_processes} pool={self.in_pool}>"
