"""The pool of workstation nodes forming the NOW."""

from __future__ import annotations

from typing import Dict, List

from ..errors import NodeUnavailableError
from ..network import Switch
from ..simcore import Simulator
from .node import Node


class NodePool:
    """Creates and tracks the workstations attached to one switch."""

    def __init__(self, sim: Simulator, switch: Switch):
        self.sim = sim
        self.switch = switch
        self.nodes: Dict[int, Node] = {}
        self._next_id = 0

    def add_node(self, speed: float = 1.0) -> Node:
        """Provision a new workstation and attach it to the switch."""
        node = Node(self.sim, self.switch, self._next_id, speed=speed)
        self.nodes[self._next_id] = node
        self._next_id += 1
        return node

    def add_nodes(self, count: int, speed: float = 1.0) -> List[Node]:
        return [self.add_node(speed) for _ in range(count)]

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NodeUnavailableError(f"no node with id {node_id}") from None

    def available_nodes(self) -> List[Node]:
        """Nodes currently offered to the computation."""
        return [n for n in self.nodes.values() if n.in_pool]

    def idle_nodes(self) -> List[Node]:
        """Available nodes with no resident computation process."""
        return [n for n in self.available_nodes() if n.resident_processes == 0]

    def __len__(self) -> int:
        return len(self.nodes)
