"""Trace-driven availability: record and replay adapt-event streams.

A *trace* is a plain-text event log (`time action node [grace]` per
line, ``#`` comments allowed) — the format one would collect from a real
workstation-pool monitor.  Traces make availability scenarios shareable
and exactly repeatable, and the generator produces synthetic day/night
patterns for long-horizon experiments.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Optional, Sequence, TextIO, Union

from ..errors import ConfigurationError
from ..simcore import RandomStreams
from .adapt_events import EventScript, ScriptedEvent


@dataclass(frozen=True)
class AvailabilityEvent:
    """One node-availability change in a trace.

    Renamed from ``TraceEvent`` (which collided with the simulator's
    :class:`~repro.simcore.trace.TraceRecord`); the old name remains as a
    deprecated alias.
    """

    time: float
    action: str  # "join" | "leave" | "crash"
    node_id: int
    grace: Optional[float] = None

    def to_line(self) -> str:
        base = f"{self.time:.6f} {self.action} {self.node_id}"
        return base if self.grace is None else f"{base} {self.grace:.6f}"


def __getattr__(name):
    if name == "TraceEvent":
        import warnings

        warnings.warn(
            "repro.cluster.traces.TraceEvent was renamed to "
            "AvailabilityEvent (it collided with simcore.trace.TraceRecord)",
            DeprecationWarning,
            stacklevel=2,
        )
        return AvailabilityEvent
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def parse_trace(source: Union[str, TextIO]) -> List[AvailabilityEvent]:
    """Parse a trace from a string or file-like object."""
    if isinstance(source, str):
        source = io.StringIO(source)
    events: List[AvailabilityEvent] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (3, 4):
            raise ConfigurationError(f"trace line {lineno}: expected 3-4 fields, got {raw!r}")
        time_s, action, node_s = parts[:3]
        if action not in ("join", "leave", "crash"):
            raise ConfigurationError(f"trace line {lineno}: unknown action {action!r}")
        if action == "crash" and len(parts) == 4:
            raise ConfigurationError(
                f"trace line {lineno}: crash takes no grace period"
            )
        try:
            time = float(time_s)
            node = int(node_s)
            grace = float(parts[3]) if len(parts) == 4 else None
        except ValueError as err:
            raise ConfigurationError(f"trace line {lineno}: {err}") from None
        if time < 0:
            raise ConfigurationError(f"trace line {lineno}: negative time")
        events.append(AvailabilityEvent(time, action, node, grace))
    events.sort(key=lambda e: (e.time, e.node_id))
    return events


def dump_trace(events: Sequence[AvailabilityEvent]) -> str:
    """Render events back to the text format (round-trips with parse)."""
    lines = ["# time action node [grace]"]
    lines += [e.to_line() for e in sorted(events, key=lambda e: (e.time, e.node_id))]
    return "\n".join(lines) + "\n"


class TraceReplay:
    """Install a parsed trace onto an adaptive runtime."""

    def __init__(self, runtime, events: Sequence[AvailabilityEvent]):
        self.runtime = runtime
        self.events = list(events)
        self.script = EventScript(
            runtime,
            [
                ScriptedEvent(e.time, e.action, e.node_id, e.grace)  # type: ignore[arg-type]
                for e in self.events
            ],
        )

    def install(self) -> None:
        self.script.install()


def synthesize_workday(
    node_ids: Sequence[int],
    day_length: float,
    seed: int = 7,
    mean_sessions: float = 2.0,
    mean_session_length: Optional[float] = None,
    grace: Optional[float] = None,
) -> List[AvailabilityEvent]:
    """A synthetic owner-activity trace over one 'day'.

    Each node's owner shows up a Poisson number of times for
    exponentially-long sessions; node leaves the pool while the owner is
    present (the §1 NOW scenario).
    """
    if day_length <= 0:
        raise ConfigurationError("day_length must be positive")
    rng = RandomStreams(seed)
    mean_len = mean_session_length if mean_session_length else day_length / 8.0
    events: List[AvailabilityEvent] = []
    for node_id in node_ids:
        stream = rng.stream(f"trace.{node_id}")
        sessions = stream.poisson(mean_sessions)
        starts = sorted(float(stream.uniform(0, day_length)) for _ in range(sessions))
        cursor = 0.0
        for start in starts:
            if start < cursor:
                continue  # overlapping session: owner already present
            length = float(stream.exponential(mean_len))
            end = min(start + length, day_length * 0.98)
            if end <= start:
                continue
            events.append(AvailabilityEvent(start, "leave", node_id, grace))
            events.append(AvailabilityEvent(end, "join", node_id, None))
            cursor = end
    events.sort(key=lambda e: (e.time, e.node_id))
    return events
