"""Calibrated timing and sizing parameters.

All durations are **simulated seconds**.  The defaults reproduce the
micro-measurements published in §5.1 of the paper for the 1999 testbed
(8 × 300 MHz Pentium II, switched full-duplex 100 Mbps Ethernet, FreeBSD
2.2.6, UDP sockets):

* round-trip latency of a 1-byte message: 126 µs,
* lock acquisition: 178–272 µs,
* diff fetch: 313–1 544 µs depending on diff size,
* full (4 KB) page transfer: 1 308 µs,
* process creation on a remote host: 0.6–0.8 s,
* process-image migration rate: ≈ 8.1 MB/s.

The derivation of each constant from those measurements is documented on
the field.  ``benchmarks/test_micro_network.py`` asserts that the simulated
micro-operations land on the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigurationError

#: Bytes per DSM page — TreadMarks uses the VM page size of the testbed.
PAGE_SIZE = 4096


@dataclass(frozen=True)
class NetworkParams:
    """Timing model of the switched full-duplex Ethernet NOW.

    A message from ``p`` to ``q`` crosses two links (``p``'s uplink and
    ``q``'s downlink).  Because the Ethernet is *switched*, the ports are
    independent; contention happens only on a per-port basis.  The time for
    one message is::

        one_way_latency + payload_bytes * per_byte

    where ``per_byte`` is the wire rate (100 Mbps = 0.08 µs/byte).
    """

    #: Fixed one-way cost of any message (UDP stack + interrupt + wire
    #: setup).  Calibrated so the 1-byte round trip is 126 µs.
    one_way_latency: float = 63.0e-6

    #: Wire time per payload byte: 100 Mbps full duplex = 12.5 MB/s.
    per_byte: float = 8.0 / 100.0e6

    #: Bytes of protocol header accounted per message (UDP/IP + TreadMarks
    #: header).  Affects traffic accounting, not latency (folded into
    #: ``one_way_latency``).
    header_bytes: int = 42

    #: Server-side occupancy of a page fetch (interrupt, page lookup, copy
    #: into the socket buffer).  Serializes concurrent requests at one node.
    page_service_server: float = 300.0e-6

    #: Requester-side fault-handling overhead (SIGSEGV dispatch, mprotect,
    #: installing the received copy).  Occupies only the faulting process.
    #: Calibrated jointly with the server share: one uncontended page
    #: transfer = RTT(126 µs) + wire(327.7 µs) + 300 µs + 554.3 µs
    #: = 1 308 µs, the §5.1 measurement.
    page_service_client: float = 554.3e-6

    #: Handler CPU consumed per lock acquisition (request processing at
    #: the manager + grant construction at the holder).  Calibrated from
    #: §5.1: manager-is-holder acquire = RTT 126 µs + 52 µs = 178 µs (the
    #: published minimum); the three-hop path lands at ~241 µs, inside the
    #: published 178-272 µs window.
    lock_service: float = 52.0e-6

    #: Fixed cost of creating or applying a diff regardless of size.
    #: Calibrated from the 313 µs minimum diff fetch: 313 − 126 ≈ 187 µs.
    diff_fixed: float = 187.0e-6

    #: Size-dependent cost of encoding + applying one diff byte (twin
    #: comparison, run-length encode, apply), *in addition to* wire time.
    #: Calibrated from the 1 544 µs full-page diff:
    #: (1 544 − 126 − 187 − 327.7) µs / 4096 B ≈ 0.22 µs/B.
    diff_per_byte: float = 0.22e-6

    #: Fraction of data-plane messages dropped by the (UDP) wire; requests
    #: retransmit on a 4 ms timeout.  0 models the paper's quiescent LAN.
    loss_rate: float = 0.0

    #: Seed for the loss model's drop decisions.
    loss_seed: int = 0xD20

    #: Cut-through forwarding latency added per *extra* switch a message
    #: crosses in a hierarchical topology (header parse + port arbitration
    #: of a late-90s store-nothing switch).  The paper's single-switch star
    #: crosses zero extra switches, so this constant never enters the
    #: reference model.
    switch_hop_latency: float = 10.0e-6

    def validate(self) -> None:
        if self.one_way_latency < 0 or self.per_byte <= 0:
            raise ConfigurationError("network timing constants must be positive")
        if self.switch_hop_latency < 0:
            raise ConfigurationError("switch_hop_latency must be >= 0")

    @property
    def page_service(self) -> float:
        """Total per-fetch software overhead (server + requester side)."""
        return self.page_service_server + self.page_service_client

    def message_time(self, payload_bytes: int) -> float:
        """One-way delivery time of a message with ``payload_bytes`` payload."""
        return self.one_way_latency + payload_bytes * self.per_byte


@dataclass(frozen=True)
class DsmParams:
    """Parameters of the TreadMarks-like DSM engine."""

    #: Page size in bytes (VM page of the testbed).
    page_size: int = PAGE_SIZE

    #: Number of interval records accumulated before the runtime forces a
    #: garbage collection (stand-in for TreadMarks' exhausted consistency
    #: memory).  Adaptation-triggered GCs happen regardless of this limit.
    gc_interval_limit: int = 4096

    #: Bytes of a write notice on the wire (page id + interval stamp).
    write_notice_bytes: int = 12

    #: Bytes of one vector-clock entry on the wire.
    clock_entry_bytes: int = 4

    #: Bytes of a per-page descriptor in the page-location map shipped to a
    #: joining process (page id + owner + protocol bit).
    page_descriptor_bytes: int = 8

    #: CPU time to make a twin (copy of one page before first write).
    twin_time: float = 35.0e-6

    def validate(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ConfigurationError("page_size must be a positive power of two")
        if self.gc_interval_limit < 1:
            raise ConfigurationError("gc_interval_limit must be >= 1")


@dataclass(frozen=True)
class MigrationParams:
    """libckpt-style process migration model (§5.3).

    The paper reports two direct cost components: creating a process on the
    new host (0.6–0.8 s) and copying the image at ≈ 8.1 MB/s.
    """

    #: Lower bound of remote process creation time.
    spawn_time_min: float = 0.6
    #: Upper bound of remote process creation time.
    spawn_time_max: float = 0.8
    #: Image copy rate in bytes per second (heap + stack).
    image_rate: float = 8.1e6
    #: Fixed process image overhead beyond the shared-data partition
    #: (code, runtime heap, stacks).
    image_overhead_bytes: int = 4 << 20

    def validate(self) -> None:
        if not (0 < self.spawn_time_min <= self.spawn_time_max):
            raise ConfigurationError("invalid spawn time range")
        if self.image_rate <= 0:
            raise ConfigurationError("image_rate must be positive")

    def spawn_time(self, u: float) -> float:
        """Spawn time for a uniform sample ``u`` in [0, 1)."""
        return self.spawn_time_min + u * (self.spawn_time_max - self.spawn_time_min)

    def copy_time(self, image_bytes: int) -> float:
        """Time to move a process image of ``image_bytes`` bytes."""
        return image_bytes / self.image_rate


@dataclass(frozen=True)
class CheckpointParams:
    """Checkpointing model (§4.3): master-only libckpt checkpoint to disk."""

    #: Sustained disk write rate for the checkpoint file (late-90s SCSI).
    disk_rate: float = 10.0e6
    #: Fixed cost of initiating a checkpoint (sync, file creation).
    fixed_cost: float = 50.0e-3

    def validate(self) -> None:
        if self.disk_rate <= 0:
            raise ConfigurationError("disk_rate must be positive")


@dataclass(frozen=True)
class FaultParams:
    """Failure detection and crash recovery (fail-stop model).

    The master probes every slave node over the ordinary NIC; a node that
    misses ``suspicion_threshold`` consecutive probes is declared crashed
    and recovery starts.  The interval/timeout trade detection latency
    against heartbeat traffic and false suspicions on congested links.
    """

    #: Period between heartbeat rounds (0 disables the detector even when
    #: the runtime asks for failure detection).
    heartbeat_interval: float = 50.0e-3

    #: How long after a probe the ack must arrive before it counts as a
    #: miss.  Must exceed an uncontended round trip (126 µs) by a healthy
    #: margin so handler-CPU contention does not produce false suspicions.
    heartbeat_timeout: float = 20.0e-3

    #: Consecutive missed probes before a node is declared crashed.
    suspicion_threshold: int = 3

    def validate(self) -> None:
        if self.heartbeat_interval < 0 or self.heartbeat_timeout <= 0:
            raise ConfigurationError("heartbeat interval/timeout must be positive")
        if self.suspicion_threshold < 1:
            raise ConfigurationError("suspicion_threshold must be >= 1")


@dataclass(frozen=True)
class PerfParams:
    """Wall-clock fast-path switches (host performance, not modelled time).

    Everything here either leaves the simulation's modelled times, traces,
    and traffic bitwise unchanged (``plan_cache``) or is an explicitly
    opt-in protocol extension that *does* change the model (``bulk_fetch``)
    and therefore defaults to off so the paper-reproduction numbers
    (Table 1/2) stay exact.  See docs/PROTOCOL.md, "Performance model vs.
    wall-clock performance".
    """

    #: Execute independent events as batched macro-events: the simulator
    #: drains whole ``(time, priority)`` runs in one call (bucketed queue,
    #: no per-event heap traffic), dispatches pre-bound ``(callback,
    #: value)`` actions without closure allocation, schedules one
    #: macro-event for homogeneous groups (bulk diff application, barrier
    #: arrival folds) and fast-forwards analytically through quiescent
    #: compute phases.  Bitwise identical to the event-by-event reference
    #: path (``macro_events=False``), including ``events_executed`` and
    #: every ``repro.obs`` span/counter; the off position is the reference
    #: the identity tests compare against.  See docs/PROTOCOL.md §10.
    macro_events: bool = True

    #: Memoize the per-(segment, reads, writes) page/range computation of
    #: ``DsmProcess.access``.  Pure memoization of a deterministic function
    #: — results are bitwise identical with the cache on or off.
    plan_cache: bool = True

    #: Entries kept in the shared access-plan cache before it is dropped
    #: wholesale (plans are tiny; the cap only bounds pathological key
    #: diversity).
    plan_cache_capacity: int = 8192

    #: Coalesce the full-page fetches of one fault burst into a single
    #: PAGE_BATCH_REQ/REPLY exchange per owner: same payload bytes on the
    #: wire, one round trip (and one header) instead of one per page —
    #: the bulk-transfer idea the paper applies to joins, applied to
    #: ordinary fault bursts.  Changes modelled time and message counts,
    #: hence off by default for paper fidelity.
    bulk_fetch: bool = False

    #: Coalesce multiple same-page diffs at fetch time into one pre-merged
    #: scatter (last-writer-wins in happens-before order) instead of
    #: applying them sequentially.  Bitwise identical to the sequential
    #: path — same ranges, wire sizes, and message counts; only the host
    #: work to apply them changes.  The off position is the reference
    #: implementation the identity tests compare against.
    diff_squash: bool = True

    #: Prune interval records from each process's log as soon as every
    #: peer's applied clock covers them (nobody can ever request their
    #: diffs again).  Bounds log memory across barrier-free lock-heavy
    #: phases.  Pure host-side bookkeeping: modelled times, traffic and
    #: GC timing are bitwise identical with pruning on or off
    #: (``tests/dsm/test_interval_prune.py``).
    interval_prune: bool = True

    #: Interval closes between prune sweeps (pruning is O(peers × pages
    #: written), so it is amortized rather than run per close).
    interval_prune_period: int = 64

    #: Fold all barrier arrivals' write-notice runs into **one** run-batched
    #: ingestion per barrier round instead of one ``apply_notices`` call per
    #: arriving process.  Each arrival carries only its own writer's runs
    #: (``sync_notices``), so concatenating them in ascending-pid order
    #: reproduces the flat per-process fold exactly; clock merges are
    #: elementwise max and hence order-free.  Bitwise identical to the
    #: one-at-a-time fold (the off position is the identity reference).
    barrier_fold_batch: bool = True

    #: Synchronize through a ``barrier_radix``-ary combining tree over pids
    #: (children of position i are k·i+1 … k·i+k; the master is the root)
    #: instead of the paper's flat all-to-one fold at the master.  Interior
    #: processes fold their subtree's write notices (run-batched, deduped)
    #: before forwarding one combined arrival upward, and releases fan back
    #: down the same tree, so the master's link carries O(radix) instead of
    #: O(N) payloads per barrier.  Changes modelled message patterns and
    #: times — off by default for paper fidelity (flat runs stay bitwise
    #: identical to the seed).  See docs/PROTOCOL.md §11.
    barrier_tree: bool = False

    #: Fan-out of the combining tree (tree height is ⌈log_k N⌉).
    barrier_radix: int = 4

    #: Transmit whole communication flights — fan-outs whose legs are all
    #: issued back-to-back within one scheduler event (FORK/release/GC
    #: waves, tree-relay hops, page-map and owner-update shipments) —
    #: through one batched pass over the link-occupancy model instead of
    #: one ``Nic.send``/``Switch.transmit`` frame stack per message.  The
    #: batched pass replays each leg's joint cut-through reservation in
    #: leg order with the reference arithmetic (same float association),
    #: so per-link ``busy_time``/``bytes_carried``/``messages_carried``,
    #: traffic stats, arrival timestamps and delivery event order are
    #: bitwise identical to the event-by-event path; only the host-side
    #: per-message overhead is skipped.  Flights fall back to the
    #: per-message reference whenever loss, fault injection, or tracing
    #: is active.  The off position is the identity reference
    #: (``tests/exec/test_flight_identity.py``).  See docs/PROTOCOL.md §13.
    flight_batch: bool = True

    #: Network topology: ``"star"`` is the paper's single switched
    #: full-duplex Ethernet segment (the bitwise-identity reference);
    #: ``"fattree"`` hangs ``topology_radix``-node leaf switches off a
    #: root switch, with per-hop link occupation and cut-through
    #: forwarding through the intermediate switch.  See PROTOCOL.md §11.
    topology: str = "star"

    #: Nodes per leaf switch in the ``fattree`` topology.
    topology_radix: int = 8

    def validate(self) -> None:
        if self.plan_cache_capacity < 1:
            raise ConfigurationError("plan_cache_capacity must be >= 1")
        if self.interval_prune_period < 1:
            raise ConfigurationError("interval_prune_period must be >= 1")
        if self.barrier_radix < 2:
            raise ConfigurationError("barrier_radix must be >= 2")
        if self.topology not in ("star", "fattree"):
            raise ConfigurationError(
                f"unknown topology {self.topology!r} (expected 'star' or 'fattree')"
            )
        if self.topology_radix < 2:
            raise ConfigurationError("topology_radix must be >= 2")


#: Default location of the content-addressed scenario-result cache
#: (relative to the working directory; gitignored).
EXEC_CACHE_DIR = "benchmarks/results/cache"

#: Extra attempts granted to a scenario whose worker process dies.
EXEC_RETRIES = 1


def __getattr__(name: str):
    """Deprecated host-side config spellings (PEP 562; PROTOCOL.md §12).

    ``ExecParams`` was the host-side (worker count, cache dir, resilience
    policy) knob bag; it grew a backend/transport axis and moved to
    :class:`repro.exec.executor.ExecutorConfig`, which is a strict
    superset — same fields, same defaults, same ``supervisor_policy()`` /
    ``effective_jobs()`` methods.  The old spelling resolves to the new
    class with a :class:`DeprecationWarning`.
    """
    if name == "ExecParams":
        import warnings

        warnings.warn(
            "repro.config.ExecParams is deprecated; use "
            "repro.exec.ExecutorConfig (docs/PROTOCOL.md §12)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .exec.executor import ExecutorConfig

        return ExecutorConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class SystemConfig:
    """Aggregate configuration for a simulated adaptive DSM system."""

    network: NetworkParams = field(default_factory=NetworkParams)
    dsm: DsmParams = field(default_factory=DsmParams)
    migration: MigrationParams = field(default_factory=MigrationParams)
    checkpoint: CheckpointParams = field(default_factory=CheckpointParams)
    faults: FaultParams = field(default_factory=FaultParams)
    perf: PerfParams = field(default_factory=PerfParams)

    #: Default grace period for leave events (seconds).  The paper calls
    #: 3 s "a reasonable grace period".
    grace_period: float = 3.0

    #: Master-side bookkeeping time charged per adapt event processed at an
    #: adaptation point (process table updates, id reassignment).
    adapt_fixed_cost: float = 5.0e-3

    #: RNG seed used for all stochastic model components (spawn times,
    #: owner activity).  Simulations are deterministic given the seed.
    seed: int = 0x5EED

    def validate(self) -> None:
        """Check all constituent parameter groups."""
        self.network.validate()
        self.dsm.validate()
        self.migration.validate()
        self.checkpoint.validate()
        self.faults.validate()
        self.perf.validate()
        if self.grace_period < 0:
            raise ConfigurationError("grace_period must be >= 0")

    def with_(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: The configuration matching the paper's testbed.
PAPER_CONFIG = SystemConfig()
