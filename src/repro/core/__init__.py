"""The paper's contribution: transparent adaptive parallelism.

Adaptation-point processing of join/leave events over the DSM, grace
periods with migration-backed urgent leaves, process-id reassignment
strategies, and adaptation-point checkpointing.
"""

from .adaptation import (
    AdaptationQueue,
    AdaptationRecord,
    JoinRequest,
    LeaveRequest,
    RequestState,
)
from .checkpoint import Checkpoint, CheckpointManager, restore_checkpoint
from .grace import GracePolicy
from .migration import MigrationOutcome, migrate_process
from .reassign import (
    STRATEGIES,
    CompactShift,
    ReassignStrategy,
    SwapLast,
    moved_fraction,
)
from .runtime import AdaptiveRuntime

__all__ = [
    "AdaptationQueue",
    "AdaptationRecord",
    "AdaptiveRuntime",
    "Checkpoint",
    "CheckpointManager",
    "CompactShift",
    "GracePolicy",
    "JoinRequest",
    "LeaveRequest",
    "MigrationOutcome",
    "ReassignStrategy",
    "RequestState",
    "STRATEGIES",
    "SwapLast",
    "migrate_process",
    "moved_fraction",
    "restore_checkpoint",
]
