"""Adapt-event bookkeeping (§3).

Join and leave requests may arrive at any time; they are *executed* at the
next adaptation point (the fork boundary of a parallel construct).  All
events received between two successive adaptation points are handled
together there — which is why batched adaptations are cheaper (§5.4).

The manager only tracks requests and grace deadlines; the protocol work
lives in :mod:`.join`, :mod:`.leave`, :mod:`.urgent` and is driven by
:class:`~repro.core.runtime.AdaptiveRuntime`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import AdaptationError


class RequestState(enum.Enum):
    PENDING = "pending"
    READY = "ready"  # joins: connections established
    URGENT = "urgent"  # leaves: grace expired, migration underway/done
    DONE = "done"
    CANCELLED = "cancelled"


@dataclass
class JoinRequest:
    """A node offering itself to the computation."""

    node_id: int
    submitted_at: float
    state: RequestState = RequestState.PENDING
    ready_at: Optional[float] = None
    completed_at: Optional[float] = None


@dataclass
class LeaveRequest:
    """A node being reclaimed by its owner."""

    node_id: int
    submitted_at: float
    grace: float
    deadline: float
    state: RequestState = RequestState.PENDING
    #: Team pid of the leaving process, resolved at submission.
    pid: Optional[int] = None
    #: Set once the process has been migrated off (urgent path).
    migrated_at: Optional[float] = None
    completed_at: Optional[float] = None
    was_urgent: bool = False


@dataclass
class AdaptationRecord:
    """One processed adaptation point (for analysis & Figure 2)."""

    time: float
    joins: List[int] = field(default_factory=list)
    leaves: List[int] = field(default_factory=list)
    urgent_leaves: List[int] = field(default_factory=list)
    nprocs_before: int = 0
    nprocs_after: int = 0
    duration: float = 0.0
    #: Network traffic generated while processing the adaptation point.
    traffic_bytes: int = 0
    #: Bytes on the busiest directional link during the adaptation (§5.4).
    max_link_bytes: int = 0
    #: Pages the master fetched from leaving processes (the drain).
    drained_pages: int = 0
    #: Pages the leaving processes owned at the adaptation point.
    leaver_owned_pages: int = 0


class AdaptationQueue:
    """Pending adapt events, consumed at adaptation points."""

    def __init__(self):
        self.joins: List[JoinRequest] = []
        self.leaves: List[LeaveRequest] = []
        self.history: List[AdaptationRecord] = []

    def add_join(self, req: JoinRequest) -> None:
        if any(j.node_id == req.node_id and j.state not in
               (RequestState.DONE, RequestState.CANCELLED) for j in self.joins):
            raise AdaptationError(f"node {req.node_id} already has a pending join")
        self.joins.append(req)

    def add_leave(self, req: LeaveRequest) -> None:
        if any(l.node_id == req.node_id and l.state in
               (RequestState.PENDING, RequestState.URGENT) for l in self.leaves):
            raise AdaptationError(f"node {req.node_id} already has a pending leave")
        self.leaves.append(req)

    def ready_joins(self) -> List[JoinRequest]:
        """Joins whose processes finished connection setup."""
        return [j for j in self.joins if j.state is RequestState.READY]

    def pending_leaves(self) -> List[LeaveRequest]:
        """Leaves awaiting execution (normal or already-migrated urgent)."""
        return [
            l for l in self.leaves
            if l.state in (RequestState.PENDING, RequestState.URGENT)
        ]

    def find_leave(self, node_id: int) -> Optional[LeaveRequest]:
        for l in self.leaves:
            if l.node_id == node_id and l.state in (
                RequestState.PENDING,
                RequestState.URGENT,
            ):
                return l
        return None
