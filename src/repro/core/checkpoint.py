"""Fault tolerance by adaptation-point checkpointing (§4.3).

At an adaptation point the slaves hold no private process state — only
shared memory.  So a checkpoint is: (1) garbage-collect, (2) the master
fetches every page it lacks a valid copy of, (3) the master libckpt's
itself to disk.  No coordination with slaves, no message logging.

Recovery restores the shared memory into a fresh runtime with the master
owning every page.  (Python cannot freeze a generator mid-flight the way
libckpt freezes a process image, so the *program driver* is restarted and
is expected to resume from application-level state kept in shared memory —
all bundled kernels store their iteration counter there.  The checkpoint
cost model is unaffected by this deviation; see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import numpy as np

from ..errors import CheckpointError
from ..network import message as mk
from ..simcore import Signal
from .leave import PIPELINE_DEPTH


@dataclass
class Checkpoint:
    """One on-disk checkpoint image (master process + all shared pages)."""

    time: float
    epoch: int
    nprocs: int
    total_pages: int
    image_bytes: int
    write_seconds: float
    #: seg name -> raw bytes of the whole segment (materialized mode only).
    segment_data: Dict[str, np.ndarray] = field(default_factory=dict)


class CheckpointManager:
    """Periodic checkpointing driven from adaptation points."""

    def __init__(self, runtime, interval: Optional[float] = None):
        self.runtime = runtime
        self.interval = interval
        self.last_time = 0.0
        self.checkpoints: List[Checkpoint] = []

    @property
    def last(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def due(self, now: float) -> bool:
        return self.interval is not None and now - self.last_time >= self.interval

    def take(self) -> Generator:
        """Take a checkpoint now (caller guarantees a fresh GC happened)."""
        runtime = self.runtime
        master = runtime.master
        sim = runtime.sim
        npages = runtime.space.total_pages

        # 1. collect every page the master has no valid copy of
        missing = []
        for page in range(npages):
            pte = master._pte(page)
            if not pte.readable:
                missing.append((page, master.owner_of(page)))
        idx = 0
        active = 0
        done = Signal(sim, "ckpt.collect")

        def fetch_one(page: int, owner: int) -> Generator:
            nonlocal active
            reply = yield from master.request_reply(
                mk.CKPT_PAGE_REQ, owner, {"page": page}, size=8
            )
            yield sim.timeout(runtime.cfg.network.page_service_client)
            pte = master._pte(page)
            if master.materialized:
                master.store.page_view(page)[:] = reply.payload["data"]
            pte.valid = True
            pte.applied.merge(reply.payload["applied"])
            pte.prune_pending()
            master.stats.page_fetches += 1
            active -= 1
            launch()
            if active == 0 and idx >= len(missing):
                done.fire()

        def launch() -> None:
            nonlocal active, idx
            while active < PIPELINE_DEPTH and idx < len(missing):
                page, owner = missing[idx]
                idx += 1
                active += 1
                sim.process(fetch_one(page, owner), name=f"ckpt.{page}", daemon=True)

        if missing:
            launch()
            yield done

        # 2. write the master image (its process image + all shared pages)
        cp = runtime.cfg.checkpoint
        image = (
            npages * runtime.cfg.dsm.page_size
            + runtime.cfg.migration.image_overhead_bytes
        )
        write_seconds = cp.fixed_cost + image / cp.disk_rate
        yield sim.timeout(write_seconds)

        segment_data = {}
        if master.materialized:
            for seg in runtime.space.segments.values():
                segment_data[seg.name] = master.store.buffer(seg)[: seg.nbytes].copy()

        ckpt = Checkpoint(
            time=sim.now,
            epoch=master.epoch,
            nprocs=runtime.team.nprocs,
            total_pages=npages,
            image_bytes=image,
            write_seconds=write_seconds,
            segment_data=segment_data,
        )
        self.checkpoints.append(ckpt)
        self.last_time = sim.now
        sim.tracer.emit(
            "adapt", "checkpoint", f"{len(missing)} pages collected, {image} B image"
        )


def _install_segments(runtime, ckpt: Checkpoint) -> None:
    """Load the checkpoint image into the current master's memory.

    The master becomes the valid owner of every shared page; every other
    process's owner map points at the master, exactly as after recovery in
    the real system.
    """
    master = runtime.master
    for seg in runtime.space.segments.values():
        if master.materialized:
            data = ckpt.segment_data.get(seg.name)
            if data is None:
                raise CheckpointError(f"checkpoint lacks segment {seg.name!r}")
            if data.shape[0] != seg.nbytes:
                raise CheckpointError(f"checkpoint size mismatch for {seg.name!r}")
            master.store.buffer(seg)[: seg.nbytes] = data
        for page in seg.pages:
            pte = master._pte(page)
            pte.valid = True
            pte.owner = master.pid
            master.owners[page] = master.pid
    for proc in runtime.procs.values():
        if proc is not master:
            proc.owners = {p: master.pid for p in range(runtime.space.total_pages)}


def restore_checkpoint(runtime, ckpt: Checkpoint) -> None:
    """Load a checkpoint into a *fresh* runtime (before ``run``)."""
    if runtime.fork_seq != 0:
        raise CheckpointError("restore_checkpoint must precede run()")
    _install_segments(runtime, ckpt)


def restore_checkpoint_live(runtime, ckpt: Checkpoint) -> None:
    """Load a checkpoint into a *running* runtime during crash recovery.

    The caller (the recovery orchestrator) guarantees the computation is
    quiesced and the process engines are freshly rebuilt: no open write
    sets, zero vector clocks, empty interval logs.
    """
    if ckpt.total_pages != runtime.space.total_pages:
        raise CheckpointError(
            f"checkpoint covers {ckpt.total_pages} pages, "
            f"address space has {runtime.space.total_pages}"
        )
    _install_segments(runtime, ckpt)
