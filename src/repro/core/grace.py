"""Grace-period policy (§3).

A leave event gets a *grace period*: if the computation reaches an
adaptation point before it expires, the leave is processed there (a
normal leave); otherwise the process is migrated off the node (an urgent
leave).  The paper notes the period can be node-specific and may even
vary during the day — :class:`GracePolicy` supports exactly that.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class GracePolicy:
    """Resolves the grace period for a leave event on a given node."""

    def __init__(
        self,
        default: float = 3.0,
        per_node: Optional[Dict[int, float]] = None,
        time_of_day: Optional[Callable[[int, float], Optional[float]]] = None,
    ):
        """``time_of_day(node_id, sim_time)`` may return a period that
        overrides the static tables (e.g. shorter during office hours)."""
        if default < 0:
            raise ValueError("grace period must be >= 0")
        self.default = default
        self.per_node = dict(per_node or {})
        self.time_of_day = time_of_day

    def period_for(self, node_id: int, now: float) -> float:
        """The grace period applying to a leave of ``node_id`` at ``now``."""
        if self.time_of_day is not None:
            dynamic = self.time_of_day(node_id, now)
            if dynamic is not None:
                return max(0.0, dynamic)
        return max(0.0, self.per_node.get(node_id, self.default))

    def set_node_period(self, node_id: int, period: float) -> None:
        """Pin a node-specific grace period."""
        if period < 0:
            raise ValueError("grace period must be >= 0")
        self.per_node[node_id] = period
