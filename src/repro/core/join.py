"""Join protocol (§4.1).

The master spawns a process on the joining node.  While the computation
continues, the new process asynchronously connects to every slave and
finally to the master — when the master sees that connection, the joiner
is ready.  At the next adaptation point (after the GC) the master sends
the joiner one message describing, for every shared page, where an
up-to-date copy lives and which protocol the page uses; data then flows
lazily through ordinary page faults.
"""

from __future__ import annotations

from typing import Generator

from ..errors import NetworkError
from ..network import message as mk
from ..network.message import Message, next_req_id
from .adaptation import JoinRequest, RequestState


def connection_setup(runtime, req: JoinRequest) -> Generator:
    """Background coroutine: spawn + connect, then mark the join ready."""
    sim = runtime.sim
    node = runtime.pool.node(req.node_id)
    spawn = runtime.cfg.migration.spawn_time(runtime.rng.uniform("join.spawn"))
    yield sim.timeout(spawn)

    # Connect to all slaves first, to the master last (§4.1) — so a
    # connection seen by the master implies the rest are up.
    targets = [runtime.team.node_of(pid) for pid in runtime.team.slave_pids]
    targets.append(runtime.team.node_of(runtime.team.MASTER_PID))
    for dst in targets:
        if dst == node.node_id:
            continue
        try:
            msg = Message(
                mk.CONNECT,
                src=node.node_id,
                dst=dst,
                size_bytes=16,
                req_id=next_req_id(),
            )
            yield node.nic.request(msg)
        except NetworkError:
            # The peer withdrew while we were connecting; the final
            # membership is fixed at the adaptation point anyway.
            continue
    if req.state is RequestState.CANCELLED:
        # Crash recovery cancelled this join while we were connecting.
        return
    req.state = RequestState.READY
    req.ready_at = sim.now
    sim.tracer.emit("adapt", "join_ready", f"node{req.node_id}")


def ship_page_map(runtime, joiner) -> None:
    """Send the joiner the page-location map (one message, §4.1)."""
    master = runtime.master
    npages = runtime.space.total_pages
    size = npages * runtime.cfg.dsm.page_descriptor_bytes
    owners = {
        page: master.owner_of(page) for page in range(npages)
    }
    master.send(mk.PAGE_MAP, joiner.pid, {"owners": owners}, size=size)
    obs = runtime.sim.obs
    if obs.enabled:
        obs.count("adapt.page_map_messages")
        obs.count("adapt.page_map_bytes", size)


def ship_page_maps(runtime, joiners) -> None:
    """Ship page-location maps to every joiner of this adaptation round.

    Flat mode (and the single-joiner case, where the direct message is
    already the cheapest route) sends one PAGE_MAP per joiner from the
    master, exactly as before.  With the combining tree enabled
    (PROTOCOL.md §11) and several joiners absorbed at once, the master
    instead sends one map per tree-child subtree containing joiners; each
    relay hop forwards it toward the remaining ``targets`` (see the
    PAGE_MAP arm of ``DsmProcess._handle_request``), so the master's link
    carries at most ``radix`` map payloads however many processes join.
    """
    master = runtime.master
    tb = master.tree_barrier
    if tb is None or len(joiners) <= 1:
        for joiner in joiners:
            ship_page_map(runtime, joiner)
        return
    from ..dsm.treebarrier import subtree_pids, tree_children

    npages = runtime.space.total_pages
    size = npages * runtime.cfg.dsm.page_descriptor_bytes
    owners = {page: master.owner_of(page) for page in range(npages)}
    targets = sorted(j.pid for j in joiners)
    pids = runtime.team.pids
    obs = runtime.sim.obs
    legs = []
    for cpid in tree_children(pids, 0, tb.radix):
        sub = set(subtree_pids(pids, pids.index(cpid), tb.radix))
        hit = [t for t in targets if t in sub]
        if not hit:
            continue
        legs.append((
            mk.PAGE_MAP,
            cpid,
            {"owners": owners, "targets": hit},
            size,
        ))
    master.send_fanout(legs)
    if obs.enabled:
        for _ in legs:
            obs.count("adapt.page_map_messages")
            obs.count("adapt.page_map_bytes", size)
