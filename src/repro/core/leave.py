"""Normal-leave protocol (§4.2).

After the adaptation-point GC, every page is valid somewhere with a known
owner.  The master then (i) fetches every page exclusively owned by the
leaving process for which the master itself holds no valid copy, and
(ii) tells all other processes that it now owns those pages.  This
master-centric transfer is the bottleneck the paper's §7 names as future
work — the Figure-2/§5.4 benches show the per-link concentration.
"""

from __future__ import annotations

from typing import Generator, List

from ..dsm.treebarrier import tree_children
from ..network import message as mk
from ..simcore import Signal

#: Outstanding page fetches kept in flight while draining a leaver.
PIPELINE_DEPTH = 32


def absorb_leaver_pages(runtime, leaver) -> Generator:
    """Master-side: pull the leaver's exclusively-owned pages, take ownership."""
    master = runtime.master
    sim = runtime.sim
    npages = runtime.space.total_pages
    owned = [p for p in range(npages) if master.owner_of(p) == leaver.pid]

    to_fetch: List[int] = []
    for page in owned:
        pte = master._pte(page)
        if not pte.readable:
            to_fetch.append(page)

    # Pipelined fetches: the leaver's service CPU and the master's downlink
    # serialize the stream, which is exactly the measured bottleneck.
    idx = 0
    active = 0
    done = Signal(sim, "leave.drain")

    def fetch_one(page: int) -> Generator:
        nonlocal active, idx
        reply = yield from master.request_reply(
            mk.PAGE_REQ, leaver.pid, {"page": page}, size=8
        )
        yield sim.timeout(runtime.cfg.network.page_service_client)
        pte = master._pte(page)
        if master.materialized:
            master.store.page_view(page)[:] = reply.payload["data"]
        pte.valid = True
        pte.applied.merge(reply.payload["applied"])
        pte.prune_pending()
        master.stats.page_fetches += 1
        active -= 1
        launch()
        if active == 0 and idx >= len(to_fetch):
            done.fire()

    def launch() -> None:
        nonlocal active, idx
        while active < PIPELINE_DEPTH and idx < len(to_fetch):
            page = to_fetch[idx]
            idx += 1
            active += 1
            sim.process(fetch_one(page), name=f"leave.fetch.{page}", daemon=True)

    if to_fetch:
        launch()
        yield done
    sim.tracer.emit(
        "adapt",
        "leave_drain",
        f"{leaver.name}: {len(to_fetch)} pages fetched of {len(owned)} owned",
    )

    # Ownership moves to the master, everywhere.
    for page in owned:
        master.owners[page] = master.pid
        if page in master.table:
            master.table.entry(page).owner = master.pid
    targets = sorted(
        pid for pid in runtime.team.pids if pid not in (master.pid, leaver.pid)
    )
    size = len(owned) * runtime.cfg.dsm.page_descriptor_bytes
    tb = master.tree_barrier
    if owned and targets:
        if tb is not None and len(targets) > 1:
            # Tree-shaped drain broadcast: the last flat all-to-master-link
            # fan-out of the adaptation protocol (ROADMAP item 2's
            # remaining headroom) relays through the PR 8 combining tree
            # instead.  The heap layout runs over ``[master] + targets`` —
            # derived from the payload itself, so no hop ever routes
            # through the leaver — and each hop forwards to its children
            # (the OWNER_UPDATE arm of ``DsmProcess._handle_request``).
            # Flat/star configurations take the branch below, which is the
            # seed's exact message pattern.
            relay = [master.pid] + targets
            master.send_fanout([
                (
                    mk.OWNER_UPDATE,
                    cpid,
                    {"pages": list(owned), "targets": targets},
                    max(size, 8),
                )
                for cpid in tree_children(relay, 0, tb.radix)
            ])
        else:
            master.send_fanout([
                (mk.OWNER_UPDATE, pid, {"pages": list(owned)}, max(size, 8))
                for pid in targets
            ])
    return len(to_fetch), len(owned)
