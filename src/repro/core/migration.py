"""libckpt-style process migration (§4.2, §5.3).

Migration writes the heap and stack of the leaving process to a freshly
created process on another node.  The paper measures two direct cost
components: creating the remote process (0.6–0.8 s) and copying the image
at ≈ 8.1 MB/s.  The copy occupies the source uplink and destination
downlink for its duration (it is network traffic) and is accounted as one
large MIGRATE_IMAGE transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..errors import MigrationError
from ..network import message as mk
from ..network.message import Message
from ..obs.core import TRACK_NETWORK


@dataclass
class MigrationOutcome:
    """What one migration cost (Figure 2.c / §5.3 accounting)."""

    pid: int
    src_node: int
    dst_node: int
    image_bytes: int
    spawn_seconds: float
    copy_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.spawn_seconds + self.copy_seconds


def migrate_process(runtime, proc, dst_node) -> Generator:
    """Move ``proc`` onto ``dst_node``; yields until the image has landed.

    The caller (urgent-leave orchestration) is responsible for freezing
    the computation around this, per §4.2: "all processes then wait for
    the completion of the migration".
    """
    src_node = proc.node
    if dst_node.node_id == src_node.node_id:
        raise MigrationError(f"migrating {proc.name} onto its own node")
    if not dst_node.in_pool:
        raise MigrationError(f"target node {dst_node.node_id} is not available")
    sim = runtime.sim
    mig = runtime.cfg.migration
    t0 = sim.now

    # 1. create the new process on the destination host
    spawn = mig.spawn_time(runtime.rng.uniform("migration.spawn"))
    yield sim.timeout(spawn)

    # 2. set up interprocess connections (one small message per peer)
    for pid in runtime.team.pids:
        if pid != proc.pid:
            peer = runtime.team.node_of(pid)
            if peer != dst_node.node_id:
                dst_node.nic.send(
                    Message(mk.CONNECT, src=dst_node.node_id, dst=peer, size_bytes=16)
                )

    # 3. copy heap + stack; occupy both port directions for the duration
    image = proc.resident_image_bytes()
    copy_seconds = mig.copy_time(image)
    switch = runtime.switch
    up = switch.uplinks[src_node.node_id]
    down = switch.downlinks[dst_node.node_id]
    start = max(sim.now, up.busy_until, down.busy_until)
    end = start + copy_seconds
    for link in (up, down):
        link.busy_until = end
        link.busy_time += copy_seconds
        link.bytes_carried += image
        link.messages_carried += 1
    switch.stats.record(
        Message(
            mk.MIGRATE_IMAGE,
            src=src_node.node_id,
            dst=dst_node.node_id,
            size_bytes=image - switch.params.header_bytes,
        ),
        uplink=up.name,
        downlink=down.name,
    )
    yield sim.timeout(end - sim.now)

    # 4. transplant the DSM engine onto the destination
    proc.move_to_node(dst_node)
    runtime.team.move_pid(proc.pid, dst_node.node_id)
    sim.tracer.emit(
        "adapt", "migrated", f"{proc.name} node{src_node.node_id}->node{dst_node.node_id}"
    )
    obs = sim.obs
    if obs.enabled:
        obs.span(
            TRACK_NETWORK,
            "migration.spawn",
            t0,
            t0 + spawn,
            category="migration",
            pid=proc.pid,
            dst=dst_node.node_id,
        )
        obs.span(
            TRACK_NETWORK,
            "migration.copy",
            t0 + spawn,
            sim.now,
            category="migration",
            pid=proc.pid,
            image_bytes=image,
            src=src_node.node_id,
            dst=dst_node.node_id,
        )
        obs.count("migration.count")
        obs.count("migration.image_bytes", image)
    return MigrationOutcome(
        pid=proc.pid,
        src_node=src_node.node_id,
        dst_node=dst_node.node_id,
        image_bytes=image,
        spawn_seconds=spawn,
        copy_seconds=sim.now - t0 - spawn,
    )
