"""Process-id reassignment strategies (§4.1, §7, Figure 3).

When processes leave and/or join, the master reassigns pids so they stay
dense ``0..n-1`` (the partitioning code requires it).  *How* ids are
reassigned determines how block partitions move across nodes — Figure 3's
point: with the shift strategy, an end-process leave re-distributes up to
50 % of the data space while a middle leave moves only ~30 %.

Strategies:

* :class:`CompactShift` — survivors keep their relative order; pids above
  each hole shift down (the paper's behaviour, Figure 3).
* :class:`SwapLast` — the highest surviving pid drops into the hole; all
  other pids are untouched (§7 names better reassignment strategies as
  future work; this is the natural candidate, ablated in the benches).

Also provides :func:`moved_fraction` — the analytic data-movement model
that reproduces Figure 3's 50 % / 30 % numbers exactly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence

from ..errors import AdaptationError


class ReassignStrategy:
    """Maps survivors' old pids to new dense pids."""

    name = "base"

    def reassign(self, old_pids: Sequence[int], leaving: Sequence[int]) -> Dict[int, int]:
        """Return {old_pid: new_pid} for every surviving pid."""
        raise NotImplementedError

    def _validate(self, old_pids: Sequence[int], leaving: Sequence[int]) -> List[int]:
        old = sorted(old_pids)
        if old != list(range(len(old))):
            raise AdaptationError(f"old pids must be dense, got {old}")
        leaving_set = set(leaving)
        if not leaving_set <= set(old):
            raise AdaptationError(f"leaving pids {sorted(leaving_set)} not all in team")
        if 0 in leaving_set:
            raise AdaptationError("the master (pid 0) cannot leave by reassignment")
        survivors = [p for p in old if p not in leaving_set]
        if not survivors:
            raise AdaptationError("cannot remove every process")
        return survivors


class CompactShift(ReassignStrategy):
    """Survivors keep order; higher pids slide down into the holes."""

    name = "compact-shift"

    def reassign(self, old_pids: Sequence[int], leaving: Sequence[int]) -> Dict[int, int]:
        survivors = self._validate(old_pids, leaving)
        return {old: new for new, old in enumerate(survivors)}


class SwapLast(ReassignStrategy):
    """Fill each hole with the current highest pid; others untouched."""

    name = "swap-last"

    def reassign(self, old_pids: Sequence[int], leaving: Sequence[int]) -> Dict[int, int]:
        survivors = self._validate(old_pids, leaving)
        assignment = {old: old for old in survivors}
        holes = sorted(p for p in set(leaving) if p < len(survivors) + len(set(leaving)))
        # Iteratively move the largest remaining pid into the lowest hole.
        holes = [h for h in holes if h < len(survivors)]
        movable = sorted((p for p in survivors if assignment[p] >= len(survivors)), reverse=True)
        for hole in holes:
            if not movable:
                break
            src = movable.pop(0)
            assignment[src] = hole
        # Whatever remains above the new range must already be dense.
        new_ids = sorted(assignment.values())
        if new_ids != list(range(len(survivors))):
            raise AdaptationError(f"swap-last produced non-dense ids {new_ids}")
        return assignment


STRATEGIES: Dict[str, ReassignStrategy] = {
    s.name: s for s in (CompactShift(), SwapLast())
}


def moved_fraction(
    n_before: int, leaving: Sequence[int], strategy: ReassignStrategy | None = None
) -> Fraction:
    """Fraction of a block-partitioned data space that changes owner node.

    Models Figure 3: the data space is block-partitioned over ``n_before``
    processes; after the leave it is re-partitioned over the survivors
    under ``strategy``.  A point of the data space "moves" when the *node*
    that owns it afterwards differs from the node that owned it before.

    For ``n_before=8``: an end leave (pid 7) moves exactly 1/2 of the data
    space; a middle leave (pid 3) moves 2/7 ≈ 30 % — the numbers printed
    under Figure 3.
    """
    strategy = strategy or CompactShift()
    old_pids = list(range(n_before))
    assignment = strategy.reassign(old_pids, leaving)  # old pid -> new pid
    n_after = len(assignment)
    new_to_old = {new: old for old, new in assignment.items()}

    moved = Fraction(0)
    # Walk the union of old (x k/n_before) and new (k/n_after) breakpoints.
    points = sorted(
        set(Fraction(k, n_before) for k in range(n_before + 1))
        | set(Fraction(k, n_after) for k in range(n_after + 1))
    )
    for lo, hi in zip(points, points[1:]):
        mid = (lo + hi) / 2
        old_owner_node = int(mid * n_before)  # old pid == node identity
        new_pid = int(mid * n_after)
        new_owner_node = new_to_old[new_pid]  # node that now holds this pid
        if old_owner_node != new_owner_node:
            moved += hi - lo
    return moved
