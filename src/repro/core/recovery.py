"""Crash recovery: rebuild the team and replay from the last checkpoint.

The checkpointing model (§4.3) makes recovery simple in principle: the
master's checkpoint holds *all* shared memory, and slaves carry no private
state across adaptation points.  On a confirmed fail-stop crash the
orchestrator therefore:

1. aborts the current epoch — kills the driver, the slave wait loops and
   every DSM engine where they stand (their in-flight protocol state is
   garbage now);
2. cancels queued adapt events (availability daemons must resubmit);
3. forms a new team from the surviving team nodes (the master's node
   first, when it survived) plus idle pool nodes, up to the old size;
4. charges the restore cost — re-reading the checkpoint image at the
   disk rate plus one remote process creation — and rebuilds fresh DSM
   engines, loading the checkpointed segments into the new master;
5. restarts the program driver.  Application kernels keep their iteration
   counter in shared memory (the same convention the pre-existing restore
   path relies on), so the replay skips the checkpointed prefix and only
   the work since the last checkpoint is lost.

A :class:`RecoveryRecord` with the detection latency, restore time and
lost work lands in ``RunResult.recoveries``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..errors import RecoveryError
from ..obs.core import TRACK_ADAPT
from .checkpoint import restore_checkpoint_live


@dataclass
class RecoveryRecord:
    """Accounting of one completed crash recovery."""

    #: Simulated time the recovery finished (driver restarted).
    time: float
    #: Time the failure was declared (threshold reached / escalation).
    detected_at: float
    #: Node ids confirmed crashed in this recovery.
    crashed_nodes: List[int] = field(default_factory=list)
    #: "heartbeat" (detector threshold) or "timeout" (request escalation).
    reason: str = "heartbeat"
    #: detected_at minus the true crash instant (0 for fenced suspicions).
    detection_latency: float = 0.0
    #: Wall time from declaration to restart (image read + rebuild).
    restore_seconds: float = 0.0
    #: Computation time between the restored checkpoint and the detection.
    lost_work_seconds: float = 0.0
    #: Timestamp of the checkpoint replayed from (None = cold restart).
    checkpoint_time: Optional[float] = None
    nprocs_before: int = 0
    nprocs_after: int = 0


def plan_new_team(runtime, nprocs_target: int) -> List[int]:
    """Choose the post-crash team: survivors first, then idle spares.

    The master's node keeps the master role when it survived; otherwise
    the lowest surviving (or spare) node hosts the new master.  Nodes with
    a join in flight are free game — their requests were cancelled.
    """
    old_mapping = runtime.team.snapshot()

    def healthy(node_id: int) -> bool:
        node = runtime.pool.node(node_id)
        return node.in_pool and not node.crashed

    survivors = [
        node_id for _, node_id in sorted(old_mapping.items()) if healthy(node_id)
    ]
    old_master = old_mapping[runtime.team.MASTER_PID]
    if old_master in survivors:
        survivors.remove(old_master)
        survivors.insert(0, old_master)
    spares = sorted(
        n.node_id
        for n in runtime.pool.idle_nodes()
        if not n.crashed and n.node_id not in survivors
    )
    team = (survivors + spares)[:nprocs_target]
    if not team:
        raise RecoveryError("no surviving or idle node left to recover onto")
    return team


def run_recovery(
    runtime,
    crashed_nodes: List[int],
    detected_at: float,
    detection_latency: float,
    reason: str,
) -> Generator:
    """Orchestrate one recovery (runs as its own simulated process)."""
    sim = runtime.sim
    t0 = sim.now
    nprocs_before = runtime.team.nprocs
    sim.tracer.emit(
        "fault", "recovery_begin", f"crashed={crashed_nodes} reason={reason}"
    )

    # 1-2. abort the epoch and clear the adaptation queue
    runtime._halt_computation()
    runtime._cancel_adaptations()

    # 3. form the new team (may shrink if the pool ran dry)
    new_nodes = plan_new_team(runtime, nprocs_before)

    # 4. restore cost: re-read the image from disk, spawn replacements
    ckpt = runtime.ckpt_mgr.last
    cp = runtime.cfg.checkpoint
    io_seconds = (
        cp.fixed_cost + ckpt.image_bytes / cp.disk_rate if ckpt is not None else 0.0
    )
    spawn_seconds = runtime.cfg.migration.spawn_time(
        runtime.rng.uniform("recovery.spawn")
    )
    yield sim.timeout(io_seconds + spawn_seconds)
    t_restore = sim.now

    # A cascading crash during the restore window invalidates the plan
    # (crashes declared while recovering are fenced, not re-entered —
    # see AdaptiveRuntime._declare_crashed).  Re-plan over the nodes
    # still healthy; when none are left this raises a structured
    # RecoveryError instead of rebuilding onto a dead node.
    if any(runtime.pool.node(n).crashed for n in new_nodes):
        crashed_mid_restore = [
            n for n in new_nodes if runtime.pool.node(n).crashed
        ]
        sim.tracer.emit(
            "fault", "recovery_replan",
            f"crashed during restore: {crashed_mid_restore}",
        )
        new_nodes = plan_new_team(runtime, nprocs_before)

    runtime._rebuild_after_crash(new_nodes)
    if ckpt is not None:
        restore_checkpoint_live(runtime, ckpt)
    runtime.ckpt_mgr.last_time = sim.now

    # 5. restart the computation; kernels resume from shared-memory state
    for pid in runtime.team.slave_pids:
        runtime._start_slave(runtime.procs[pid])
    runtime._driver_proc = sim.process(
        runtime._master_main(runtime.program), name="master.driver"
    )

    record = RecoveryRecord(
        time=sim.now,
        detected_at=detected_at,
        crashed_nodes=list(crashed_nodes),
        reason=reason,
        detection_latency=detection_latency,
        restore_seconds=sim.now - t0,
        lost_work_seconds=detected_at - (ckpt.time if ckpt is not None else 0.0),
        checkpoint_time=ckpt.time if ckpt is not None else None,
        nprocs_before=nprocs_before,
        nprocs_after=runtime.team.nprocs,
    )
    runtime.recoveries.append(record)
    runtime._finish_recovery()
    obs = sim.obs
    if obs.enabled:
        # recovery.restore + recovery.rebuild tile recovery.total, same as
        # the adaptation phases (rebuild is instantaneous in simulated
        # time — DSM engines are re-created between events — so its span
        # is usually zero-width; it is kept for the phase accounting).
        obs.span(
            TRACK_ADAPT,
            "recovery.restore",
            t0,
            t_restore,
            category="recovery",
            reason=reason,
            crashed=list(crashed_nodes),
        )
        obs.span(TRACK_ADAPT, "recovery.rebuild", t_restore, sim.now, category="recovery")
        obs.span(
            TRACK_ADAPT,
            "recovery.total",
            t0,
            sim.now,
            category="recovery",
            lost_work_seconds=record.lost_work_seconds,
            detection_latency=detection_latency,
        )
        obs.count("recovery.count")
        obs.count("recovery.lost_work_seconds", record.lost_work_seconds)
    sim.tracer.emit(
        "fault",
        "recovery_end",
        f"nprocs {nprocs_before}->{record.nprocs_after} "
        f"restore={record.restore_seconds:.3f}s lost={record.lost_work_seconds:.3f}s",
    )
