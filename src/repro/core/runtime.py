"""The adaptive runtime — the paper's primary contribution.

:class:`AdaptiveRuntime` extends the TreadMarks fork/join runtime with
transparent adaptation: adapt events submitted at any time are executed at
the next adaptation point (fork boundary), where the team is quiesced.
Processing order at an adaptation point (§4.1–§4.2):

1. garbage collection (leaves every page valid-or-owned, drops all
   consistency state — this is what makes the rest cheap);
2. master migration, if the master's node was reclaimed (§4.4: the master
   cannot perform a normal leave, but it can migrate);
3. for each leaving process: the master fetches the pages exclusively
   owned by the leaver that it lacks, and announces its new ownership;
4. process ids are reassigned (strategy pluggable, Figure 3) and joiners
   are appended to the team;
5. each joiner receives the page-location map in a single message;
6. the next ``Tmk_fork`` goes to the new team, whose partitioning code
   re-partitions the iteration space — data follows lazily via faults.

Urgent leaves (grace period expired mid-region) migrate the process to a
participating node immediately (freezing the computation for the image
copy) and multiplex it there until this same machinery removes it.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..dsm.process import DsmProcess
from ..dsm.runtime import DetectorCounters, RegionCtx, RunResult, TmkRuntime
from ..errors import AdaptationError, RecoveryError, SimulationError
from ..faults.detector import FailureDetector
from ..network import message as mk
from ..obs.core import TRACK_ADAPT
from ..simcore import RandomStreams
from .adaptation import (
    AdaptationQueue,
    AdaptationRecord,
    JoinRequest,
    LeaveRequest,
    RequestState,
)
from .checkpoint import CheckpointManager
from .grace import GracePolicy
from .join import connection_setup, ship_page_maps
from .leave import absorb_leaver_pages
from .migration import MigrationOutcome, migrate_process
from .reassign import CompactShift, ReassignStrategy
from .recovery import RecoveryRecord, run_recovery
from .urgent import grace_watchdog, pick_migration_target


class AdaptiveRuntime(TmkRuntime):
    """TreadMarks plus transparent adaptivity."""

    def __init__(
        self,
        sim,
        cfg,
        nodes,
        pool,
        materialized: bool = True,
        grace_policy: Optional[GracePolicy] = None,
        strategy: Optional[ReassignStrategy] = None,
        checkpoint_interval: Optional[float] = None,
        failure_detection: bool = False,
    ):
        super().__init__(sim, cfg, nodes, materialized=materialized)
        self.pool = pool
        self.queue = AdaptationQueue()
        self.grace_policy = grace_policy or GracePolicy(cfg.grace_period)
        self.strategy = strategy or CompactShift()
        self.rng = RandomStreams(cfg.seed)
        self.ckpt_mgr = CheckpointManager(self, checkpoint_interval)
        self.migrations: List[MigrationOutcome] = []
        self._frozen = None
        self.adaptations = 0
        self.failure_detection = failure_detection
        self.detector = FailureDetector(self, cfg.faults) if failure_detection else None
        self.recoveries: List[RecoveryRecord] = []
        self._recovering = False
        #: Nodes whose crash is being handled by the pending recovery.
        self._crash_handled: set = set()
        for proc in self.procs.values():
            self._wire_process(proc)

    # ------------------------------------------------------------------
    # event submission (called by availability daemons or tests)
    # ------------------------------------------------------------------
    def submit_join(self, node_id: int) -> JoinRequest:
        """A node became available: start the asynchronous join setup."""
        node = self.pool.node(node_id)
        if self.team.has_node(node_id):
            raise AdaptationError(f"node {node_id} is already participating")
        if not node.in_pool:
            node.rejoin()
        req = JoinRequest(node_id=node_id, submitted_at=self.sim.now)
        self.queue.add_join(req)
        self.sim.process(
            connection_setup(self, req), name=f"join.setup.{node_id}", daemon=True
        )
        self.sim.tracer.emit("adapt", "join_request", f"node{node_id}")
        return req

    def submit_leave(
        self, node_id: int, grace: Optional[float] = None
    ) -> Optional[LeaveRequest]:
        """A node is being reclaimed.  Returns None for idle nodes."""
        node = self.pool.node(node_id)
        if not self.team.has_node(node_id):
            node.withdraw()  # idle node: nothing to adapt
            return None
        period = grace if grace is not None else self.grace_policy.period_for(
            node_id, self.sim.now
        )
        pid = self.team.pid_of_node(node_id)
        req = LeaveRequest(
            node_id=node_id,
            submitted_at=self.sim.now,
            grace=period,
            deadline=self.sim.now + period,
            pid=pid,
        )
        self.queue.add_leave(req)
        if pid != self.team.MASTER_PID:
            req._watchdog = self.sim.process(
                grace_watchdog(self, req, pid), name=f"grace.{node_id}", daemon=True
            )
        self.sim.tracer.emit(
            "adapt", "leave_request", f"node{node_id} pid{pid} grace={period}"
        )
        return req

    # ------------------------------------------------------------------
    # freeze/unfreeze (urgent-leave migration barrier)
    # ------------------------------------------------------------------
    def freeze(self, reason: str = "") -> None:
        if self._frozen is None:
            self._frozen = self.sim.signal(f"freeze:{reason}")
            self.sim.tracer.emit("adapt", "freeze", reason)

    def unfreeze(self) -> None:
        if self._frozen is not None:
            frozen, self._frozen = self._frozen, None
            frozen.fire()
            self.sim.tracer.emit("adapt", "unfreeze", "")

    def stall_check(self) -> Generator:
        while self._frozen is not None:
            yield self._frozen

    def record_migration(self, outcome: MigrationOutcome) -> None:
        self.migrations.append(outcome)

    # ------------------------------------------------------------------
    # failure detection & crash recovery
    # ------------------------------------------------------------------
    def run(self, program, until=None) -> RunResult:
        if self.detector is not None:
            self.detector.start()
        try:
            return super().run(program, until=until)
        except SimulationError as err:
            # A RecoveryError inside the simulated recovery process (spare
            # pool exhausted mid-recovery) is a structured outcome of the
            # failure model, not a simulator defect: surface it as itself,
            # attributed, instead of a wrapped engine traceback.
            cause = err.__cause__
            if isinstance(cause, RecoveryError):
                raise RecoveryError(
                    f"unrecoverable: {cause} (after "
                    f"{len(self.recoveries)} completed recover(ies))"
                ) from cause
            raise

    def _wire_process(self, proc: DsmProcess) -> None:
        """Install the runtime's hooks on a (new) DSM engine."""
        proc.stall_hook = self.stall_check
        proc.peers_hook = self._live_procs
        if self.failure_detection:
            proc.crash_hook = self._report_suspected_crash

    def _find_node(self, node_id: int):
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        return self.pool.node(node_id)

    def inject_crash(self, node_id: int) -> None:
        """Fail-stop ``node_id`` right now: its processes die mid-step.

        This only *creates* the failure; detection and recovery follow
        through the heartbeat detector or request-timeout escalation (so a
        run without ``failure_detection`` simply hangs or errors, exactly
        like the base system would).
        """
        node = self._find_node(node_id)
        if node.crashed:
            return
        node.crash(self.sim.now)
        self.sim.tracer.emit("fault", "crash", f"node{node_id}")
        for proc in list(self.procs.values()):
            if proc.node is not node:
                continue
            handle = self._slave_procs.pop(proc, None)
            if handle is not None and handle.alive:
                handle.kill()
            if proc.is_master and self._driver_proc is not None and self._driver_proc.alive:
                self._driver_proc.kill()
            proc.fail_stop()

    def _report_suspected_crash(self, node_id: int, err: Exception) -> None:
        """Escalation target for request timeouts (``DsmProcess.crash_hook``)."""
        self.sim.tracer.emit("fault", "suspected", f"node{node_id}: {err}")
        self._declare_crashed(node_id, reason="timeout")

    def _declare_crashed(self, node_id: int, reason: str) -> None:
        """Confirm a crash and launch recovery (idempotent per crash)."""
        if self.finished or node_id in self._crash_handled:
            return
        self._crash_handled.add(node_id)
        node = self._find_node(node_id)
        detected_at = self.sim.now
        latency = (
            detected_at - node.crashed_at if node.crashed_at is not None else 0.0
        )
        # Fencing: a node declared crashed IS crashed from here on, even if
        # it was only partitioned — it must never talk to the new team.
        self.inject_crash(node_id)
        self.sim.tracer.emit(
            "fault",
            "declared_crashed",
            f"node{node_id} reason={reason} latency={latency:.4f}s",
        )
        if not self.team.has_node(node_id):
            return  # an idle pool node died; the computation is unaffected
        if self._recovering:
            return  # the pending recovery's rebuild will exclude this node
        self._recovering = True
        self.sim.process(
            run_recovery(self, [node_id], detected_at, latency, reason),
            name="recovery",
        )

    def _halt_computation(self) -> None:
        """Kill the driver, the slave wait loops and every DSM engine."""
        if self._driver_proc is not None and self._driver_proc.alive:
            self._driver_proc.kill()
        for handle in list(self._slave_procs.values()):
            if handle.alive:
                handle.kill()
        self._slave_procs.clear()
        for proc in self.procs.values():
            proc.halt()

    def _cancel_adaptations(self) -> None:
        """Void all queued adapt events (their world no longer exists)."""
        now = self.sim.now
        for req in self.queue.joins:
            if req.state in (RequestState.PENDING, RequestState.READY):
                req.state = RequestState.CANCELLED
                req.completed_at = now
        for req in self.queue.leaves:
            if req.state in (RequestState.PENDING, RequestState.URGENT):
                req.state = RequestState.CANCELLED
                req.completed_at = now
                watchdog = getattr(req, "_watchdog", None)
                if watchdog is not None and watchdog.alive:
                    watchdog.interrupt("cancelled by crash recovery")

    def _rebuild_after_crash(self, new_node_ids: List[int]) -> None:
        """Fresh team, fresh DSM engines — shared address space retained."""
        from ..dsm.barrier import BarrierManager
        from ..dsm.locks import LockManager
        from ..dsm.vectorclock import VectorClock

        self.team.set_mapping(dict(enumerate(new_node_ids)))
        self.nodes = [self._find_node(nid) for nid in new_node_ids]
        self.procs = {}
        for pid, node in enumerate(self.nodes):
            proc = self.PROCESS_CLS(
                self.sim,
                self.cfg,
                node,
                pid,
                self.team,
                self.space,
                materialized=self.materialized,
            )
            self._wire_process(proc)
            proc.start_server()
            self.procs[pid] = proc
        self.master = self.procs[self.team.MASTER_PID]
        self.master.barrier_mgr = BarrierManager(self.master)
        self.master.lock_mgr = LockManager(self.master)
        self.master_ctx = RegionCtx(self, self.master)
        self.slave_vcs = {
            pid: VectorClock.zeros(self.team.nprocs) for pid in self.team.slave_pids
        }
        self._frozen = None

    def _finish_recovery(self) -> None:
        self._recovering = False
        self._crash_handled.clear()
        if self.detector is not None:
            self.detector.reset()

    # ------------------------------------------------------------------
    # the adaptation point
    # ------------------------------------------------------------------
    def at_adaptation_point(self) -> Generator:
        # "All processes wait for the completion of the migration" (§4.2):
        # an in-flight urgent-leave migration blocks the fork boundary too.
        yield from self.stall_check()
        adaptable = getattr(self.program, "adaptable", True)
        if adaptable:
            yield from self._process_adaptations()
        if self.ckpt_mgr.due(self.sim.now):
            yield from self.gc_at_fork_point()
            yield from self.ckpt_mgr.take()

    def _process_adaptations(self) -> Generator:
        joins = self.queue.ready_joins()
        # An URGENT leave whose migration has not finished yet stays queued
        # for the next point (cannot drain a process that is mid-copy).
        leaves = [
            l
            for l in self.queue.pending_leaves()
            if l.state is RequestState.PENDING or l.migrated_at is not None
        ]
        if not joins and not leaves:
            return
        sim = self.sim
        t0 = sim.now
        traffic0 = self.switch.stats.snapshot()
        record = AdaptationRecord(
            time=t0,
            joins=[j.node_id for j in joins],
            leaves=[l.node_id for l in leaves if not l.was_urgent],
            urgent_leaves=[l.node_id for l in leaves if l.was_urgent],
            nprocs_before=self.team.nprocs,
        )
        sim.tracer.emit(
            "adapt",
            "adaptation_begin",
            f"joins={record.joins} leaves={record.leaves + record.urgent_leaves}",
        )

        # 1. bring shared memory into the valid-or-owned state
        yield from self.gc_at_fork_point()
        t_gc = sim.now

        # 2. master migration (its node was reclaimed)
        master_leaves = [l for l in leaves if l.pid == self.team.MASTER_PID]
        slave_leaves = [l for l in leaves if l.pid != self.team.MASTER_PID]
        deferred: List[LeaveRequest] = []
        for req in master_leaves:
            migrated = yield from self._migrate_master(req)
            if not migrated:
                deferred.append(req)
        if deferred:
            # The leave stays queued; scrub it from this record so the
            # history reflects what actually happened at this point.
            leaves = [l for l in leaves if l not in deferred]
            for req in deferred:
                for lst in (record.leaves, record.urgent_leaves):
                    if req.node_id in lst:
                        lst.remove(req.node_id)

        t_migration = sim.now

        # 3. drain leaving processes' exclusively-owned pages
        leaving_pids: List[int] = []
        for req in slave_leaves:
            leaver = self.procs[req.pid]
            fetched, owned = yield from absorb_leaver_pages(self, leaver)
            record.drained_pages += fetched
            record.leaver_owned_pages += owned
            leaving_pids.append(req.pid)
        t_fetch = sim.now

        # 4/5/6. reassign ids, retire leavers, append joiners, ship maps
        self._rebuild_team(leaving_pids, slave_leaves, joins)

        # charge fixed master bookkeeping per adapt event handled
        events = len(joins) + len(leaves)
        yield sim.timeout(self.cfg.adapt_fixed_cost * events)

        for req in joins:
            req.state = RequestState.DONE
            req.completed_at = sim.now
        for req in leaves:
            req.state = RequestState.DONE
            req.completed_at = sim.now
            watchdog = getattr(req, "_watchdog", None)
            if watchdog is not None and watchdog.alive:
                watchdog.interrupt("leave completed at adaptation point")
        self.adaptations += events
        record.nprocs_after = self.team.nprocs
        record.duration = sim.now - t0
        delta = self.switch.stats.snapshot().delta(traffic0)
        record.traffic_bytes = delta.bytes
        record.max_link_bytes = delta.max_link_bytes()
        self.queue.history.append(record)
        obs = sim.obs
        if obs.enabled:
            # The phase spans tile [t0, now] contiguously, so the phase
            # seconds sum exactly to record.duration (the harness number).
            # adapt.barrier is zero-width by construction: adaptation
            # points sit at fork boundaries where the team is already
            # quiesced (§4.1), so no extra quiesce wait is ever paid.
            end = sim.now
            detail = dict(joins=len(joins), leaves=len(leaves))
            obs.span(TRACK_ADAPT, "adapt.barrier", t0, t0, category="adapt")
            obs.span(TRACK_ADAPT, "adapt.gc", t0, t_gc, category="adapt", **detail)
            obs.span(
                TRACK_ADAPT, "adapt.migration", t_gc, t_migration, category="adapt"
            )
            obs.span(
                TRACK_ADAPT,
                "adapt.exclusive_fetch",
                t_migration,
                t_fetch,
                category="adapt",
                drained_pages=record.drained_pages,
                leaver_owned_pages=record.leaver_owned_pages,
            )
            obs.span(
                TRACK_ADAPT, "adapt.repartition", t_fetch, end, category="adapt"
            )
            obs.span(
                TRACK_ADAPT,
                "adapt.total",
                t0,
                end,
                category="adapt",
                traffic_bytes=record.traffic_bytes,
                nprocs_before=record.nprocs_before,
                nprocs_after=record.nprocs_after,
            )
            obs.count("adapt.events", events)
            obs.count("adapt.drained_pages", record.drained_pages)
            obs.count("adapt.leaver_owned_pages", record.leaver_owned_pages)
            obs.count("adapt.traffic_bytes", record.traffic_bytes)
        sim.tracer.emit(
            "adapt",
            "adaptation_end",
            f"nprocs {record.nprocs_before}->{record.nprocs_after} "
            f"in {record.duration:.3f}s",
        )

    def _migrate_master(self, req: LeaveRequest) -> Generator:
        """§4.4: the master cannot normal-leave, but it can migrate.

        Returns True when the master moved.  With no idle node to move to,
        the leave is *deferred* — it stays queued and is retried at the
        next adaptation point, when the pool may have refilled.  (The
        owner's reclaim is delayed; the alternative is aborting the run.)
        """
        pending_join_nodes = {
            j.node_id
            for j in self.queue.joins
            if j.state in (RequestState.PENDING, RequestState.READY)
        }
        idle = [
            n
            for n in self.pool.idle_nodes()
            if not self.team.has_node(n.node_id)
            and not n.crashed
            and n.node_id not in pending_join_nodes
        ]
        if not idle:
            self.sim.tracer.emit(
                "adapt",
                "master_leave_deferred",
                f"node{req.node_id}: no idle migration target",
            )
            return False
        target = min(idle, key=lambda n: n.node_id)
        old_node = self.pool.node(req.node_id)
        outcome = yield from migrate_process(self, self.master, target)
        self.record_migration(outcome)
        old_node.withdraw()
        req.was_urgent = True  # migration-based by definition
        return True

    def _rebuild_team(
        self,
        leaving_pids: List[int],
        slave_leaves: List[LeaveRequest],
        joins: List[JoinRequest],
    ) -> None:
        old_pids = self.team.pids
        old_mapping = self.team.snapshot()
        remap = self.strategy.reassign(old_pids, leaving_pids)

        # retire leavers: their wait loop cleans up on the STOP (it must
        # still be routed by the leaver's server, so no teardown here)
        self.master.send_fanout([
            (
                mk.STOP,
                req.pid,
                {"retire": True, "withdraw": not req.was_urgent},
                4,
            )
            for req in slave_leaves
        ])

        new_mapping: Dict[int, int] = {
            new_pid: old_mapping[old_pid] for old_pid, new_pid in remap.items()
        }
        joiner_pids = []
        next_pid = len(new_mapping)
        for req in joins:
            new_mapping[next_pid] = req.node_id
            joiner_pids.append(next_pid)
            next_pid += 1
        self.team.set_mapping(new_mapping)

        # re-identify surviving processes under the new team
        new_procs: Dict[int, DsmProcess] = {}
        for old_pid, new_pid in remap.items():
            proc = self.procs[old_pid]
            proc.adapt_reset(new_pid, remap)
            new_procs[new_pid] = proc
        # create joiner processes and ship them the page-location map
        for new_pid in joiner_pids:
            node = self.pool.node(new_mapping[new_pid])
            proc = DsmProcess(
                self.sim,
                self.cfg,
                node,
                new_pid,
                self.team,
                self.space,
                materialized=self.materialized,
            )
            self._wire_process(proc)
            proc.start_server()
            new_procs[new_pid] = proc
        self.procs = new_procs
        self.master = self.procs[self.team.MASTER_PID]
        ship_page_maps(self, [self.procs[p] for p in joiner_pids])
        for new_pid in joiner_pids:
            self._start_slave(self.procs[new_pid])

        from ..dsm.vectorclock import VectorClock

        self.slave_vcs = {
            pid: VectorClock.zeros(self.team.nprocs) for pid in self.team.slave_pids
        }

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result(self) -> RunResult:
        res = super().result()
        res.adaptations = self.adaptations
        res.adapt_log = list(self.queue.history)
        res.recoveries = list(self.recoveries)
        if self.detector is not None:
            res.detector = DetectorCounters(
                heartbeats_sent=self.detector.heartbeats_sent,
                heartbeat_misses=self.detector.heartbeat_misses,
                false_suspicions=self.detector.false_suspicions,
            )
        return res
