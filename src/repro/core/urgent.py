"""Urgent leaves (§3, §4.2, Figure 2.c).

If a leave's grace period expires before the computation reaches an
adaptation point, the leaving process is migrated to another node that is
already participating and *multiplexed* there (the two processes share one
CPU, idling the other ``t − 2`` nodes at the next synchronization) until
the next adaptation point, where a normal leave removes it from the team.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import MigrationError
from .adaptation import LeaveRequest, RequestState
from .migration import migrate_process


def pick_migration_target(runtime, leaving_pid: int):
    """The participating node to multiplex onto: least loaded, lowest id."""
    candidates = []
    for pid in runtime.team.pids:
        if pid == leaving_pid:
            continue
        node = runtime.pool.node(runtime.team.node_of(pid))
        candidates.append((node.resident_processes, node.node_id, node))
    if not candidates:
        raise MigrationError("no node left to migrate to")
    return min(candidates)[2]


def grace_watchdog(runtime, req: LeaveRequest, pid: int) -> Generator:
    """Background coroutine: trigger the urgent path at deadline expiry."""
    sim = runtime.sim
    delay = max(0.0, req.deadline - sim.now)
    yield sim.timeout(delay)
    if req.state is not RequestState.PENDING:
        return  # handled at an adaptation point within the grace period
    req.state = RequestState.URGENT
    req.was_urgent = True
    sim.tracer.emit("adapt", "grace_expired", f"node{req.node_id} pid{pid}")
    yield from urgent_leave(runtime, req, pid)


def urgent_leave(runtime, req: LeaveRequest, pid: int) -> Generator:
    """Freeze the computation, migrate the process off, free the node."""
    sim = runtime.sim
    proc = runtime.procs[pid]
    src_node = runtime.pool.node(req.node_id)
    target = pick_migration_target(runtime, pid)

    # "All processes then wait for the completion of the migration."
    runtime.freeze(f"urgent leave of node {req.node_id}")
    try:
        outcome = yield from migrate_process(runtime, proc, target)
    finally:
        runtime.unfreeze()
    req.migrated_at = sim.now
    runtime.record_migration(outcome)

    # The workstation owner gets the machine back right away (the process
    # already moved off); the migrated process is dissolved at the next
    # adaptation point by a normal leave.
    src_node.withdraw()
    sim.tracer.emit(
        "adapt",
        "urgent_leave",
        f"node{req.node_id}: P{pid} multiplexed on node{target.node_id}",
    )
