"""TreadMarks-style lazy-release-consistency software DSM.

The protocol engine (:class:`DsmProcess`), fork/join runtime
(:class:`TmkRuntime`), page/interval/diff machinery, barriers, locks,
garbage collection, and shared-array handles.
"""

from .barrier import BarrierManager
from .diffs import apply_diffs_in_order, changed_ranges, make_diff
from .gc import gc_new_owners
from .intervals import Diff, IntervalLog, IntervalRecord, WriteNotice
from .locks import LockManager
from .memory import AddressSpace, LocalStore, SharedSegment
from .page import AccessMode, PageTable, PageTableEntry, Protocol
from .process import DsmProcess
from .runtime import MasterApi, RegionCtx, RunResult, TmkProgram, TmkRuntime
from .sc import ScProcess, ScRuntime
from .sharedarray import SharedArray, partition_ranges
from .statistics import DsmStats, TeamStats
from .team import TeamView
from .treebarrier import TreeBarrier
from .vectorclock import VectorClock

__all__ = [
    "TreeBarrier",
    "AccessMode",
    "AddressSpace",
    "BarrierManager",
    "Diff",
    "DsmProcess",
    "DsmStats",
    "IntervalLog",
    "IntervalRecord",
    "LocalStore",
    "LockManager",
    "MasterApi",
    "PageTable",
    "PageTableEntry",
    "Protocol",
    "RegionCtx",
    "RunResult",
    "ScProcess",
    "ScRuntime",
    "SharedArray",
    "SharedSegment",
    "TeamStats",
    "TeamView",
    "TmkProgram",
    "TmkRuntime",
    "VectorClock",
    "WriteNotice",
    "apply_diffs_in_order",
    "changed_ranges",
    "gc_new_owners",
    "make_diff",
    "partition_ranges",
]
