"""Centralized barrier manager (runs at the master, §2).

TreadMarks barriers are all-to-one/one-to-all: arrivals carry the write
notices created since the arriving process last synchronized, the release
carries every notice the arriving process has not yet seen.  When any
participant's interval log hit its limit (or a GC was forced), a garbage
collection round is appended: release(gc) -> each process flushes ->
GC_DONE -> GC_GO -> everyone resets to a fresh epoch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List

from ..errors import ProtocolError
from ..network import message as mk
from ..network.message import Message
from .intervals import WriteNotice
from .team import TeamView
from .vectorclock import VectorClock

if TYPE_CHECKING:  # pragma: no cover
    from .process import DsmProcess


class BarrierManager:
    """Barrier state machine living on the master process."""

    def __init__(self, master: "DsmProcess"):
        self.master = master
        self.round = 0
        #: Force a GC at the next barrier (used by tests and the runtime).
        self.force_gc = False
        self._arrivals: Dict[int, dict] = {}
        self._local_done = None

    @property
    def _expected(self) -> List[int]:
        return self.master.team.pids

    # -- arrivals -----------------------------------------------------------
    def arrive_local(self, proc: "DsmProcess", notices: List[WriteNotice], want_gc: bool):
        """The master's own arrival; returns a waitable for its release."""
        if proc is not self.master:
            raise ProtocolError("arrive_local must be called by the master")
        self._local_done = self.master.sim.signal(f"barrier{self.round}.master")
        self._record(proc.pid, notices, proc.vc.snapshot(), want_gc)
        return self._local_done

    def on_arrive(self, msg: Message) -> None:
        """A slave's BARRIER_ARRIVE message (fed by the server loop)."""
        p = msg.payload
        self._record(p["pid"], p["notices"], p["vc"], p["want_gc"])

    def _record(self, pid: int, notices: List[WriteNotice], vc: VectorClock, want_gc: bool) -> None:
        if pid in self._arrivals:
            raise ProtocolError(f"pid {pid} arrived twice at barrier {self.round}")
        self._arrivals[pid] = {"notices": notices, "vc": vc, "want_gc": want_gc}
        if set(self._arrivals) == set(self._expected):
            self.master.sim.process(
                self._release(), name=f"barrier{self.round}.release", daemon=True
            )

    # -- release ------------------------------------------------------------
    def _release(self) -> Generator:
        master = self.master
        arrivals, self._arrivals = self._arrivals, {}
        local_done, self._local_done = self._local_done, None
        this_round = self.round
        self.round += 1

        # Fold every arrival's notices into the master's knowledge.
        if master.cfg.perf.barrier_fold_batch:
            # One run-batched ingestion for the whole round: each arrival
            # carries only its own writer's strictly-ascending runs
            # (sync_notices), so concatenating them in ascending-pid order
            # is the same per-writer run sequence the per-arrival fold
            # feeds apply_notices — and apply_notices never reads the
            # master's clock mid-fold, so deferring the (elementwise-max,
            # order-free) clock merges below changes nothing.  Bitwise
            # identical to the one-at-a-time path; the off position is the
            # identity reference.
            batched: List[WriteNotice] = []
            for pid in sorted(arrivals):
                if pid != master.pid:
                    batched.extend(arrivals[pid]["notices"])
            if batched:
                master.apply_notices(batched, master.vc.snapshot())
            for pid in sorted(arrivals):
                if pid != master.pid:
                    master.vc.merge(arrivals[pid]["vc"])
        else:
            for pid in sorted(arrivals):
                if pid == master.pid:
                    continue
                master.apply_notices(arrivals[pid]["notices"], arrivals[pid]["vc"])

        do_gc = (
            self.force_gc
            or master.wants_gc
            or any(a["want_gc"] for a in arrivals.values())
        )
        self.force_gc = False

        # One release wave: every leg is issued back-to-back in this event,
        # so the whole fan-out flies as one batched flight (PROTOCOL.md §13).
        legs = []
        for pid in sorted(arrivals):
            if pid == master.pid:
                continue
            notices = master.notices_unknown_to(arrivals[pid]["vc"])
            size = (
                master.notice_wire_bytes(len(notices)) + master.vc_wire_bytes + 8
            )
            legs.append((
                mk.BARRIER_RELEASE,
                pid,
                {
                    "round": this_round,
                    "notices": notices,
                    "vc": master.vc.snapshot(),
                    "gc": do_gc,
                },
                size,
            ))
        master.send_fanout(legs)

        if do_gc:
            yield from master.gc_flush()
            for _ in range(len(arrivals) - 1):
                yield master.gc_done_store.get()
            master.send_fanout([
                (mk.GC_GO, pid, {}, 4)
                for pid in sorted(arrivals)
                if pid != master.pid
            ])
            master.gc_reset()

        local_done.fire()
