"""Twin/diff creation and application.

In materialized mode a diff is computed by comparing the page against its
*twin* (the pristine copy made at the first write of the interval) —
vectorized with numpy.  In traced mode the diff carries only the declared
dirty ranges; its wire size is identical because the declared ranges are
exact.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .intervals import Diff
from .ranges import Range, normalize
from .vectorclock import VectorClock


def changed_ranges(twin: np.ndarray, current: np.ndarray) -> List[Range]:
    """Byte ranges where ``current`` differs from ``twin`` (coalesced runs)."""
    if twin.shape != current.shape:
        raise ValueError("twin/page shape mismatch")
    neq = twin != current
    if not neq.any():
        return []
    # Run-length encode the boolean mask: starts where 0->1, ends where 1->0.
    padded = np.empty(neq.size + 2, dtype=np.int8)
    padded[0] = padded[-1] = 0
    padded[1:-1] = neq
    edges = np.flatnonzero(np.diff(padded))
    starts, ends = edges[0::2], edges[1::2]
    return list(zip(starts.tolist(), ends.tolist()))


def make_diff(
    proc: int,
    seq: int,
    page: int,
    vc: VectorClock,
    declared_ranges: List[Range],
    twin: Optional[np.ndarray] = None,
    current: Optional[np.ndarray] = None,
    declared_normalized: bool = False,
) -> Optional[Diff]:
    """Encode the diff of one page for one interval.

    Materialized mode (``twin``/``current`` given): the real changed bytes
    are compared; the result is clipped to actual changes (a write of the
    same value produces no run, matching real TreadMarks).  Traced mode:
    the declared ranges stand in for the comparison.

    ``declared_normalized`` lets callers that already hold normalized
    ranges (interval write sets are ``merge`` outputs) skip the
    re-normalization on the traced-mode path.

    Returns ``None`` when nothing changed.
    """
    if twin is not None and current is not None:
        ranges = changed_ranges(twin, current)
        if not ranges:
            return None
        data = [current[s:e].copy() for s, e in ranges]
        return Diff(proc=proc, seq=seq, page=page, vc=vc.copy(), ranges=ranges, data=data)
    ranges = declared_ranges if declared_normalized else normalize(declared_ranges)
    if not ranges:
        return None
    # No twin (single-writer page later demoted to multiple-writer): the
    # declared write ranges stand in; with real bytes available, ship them.
    data = [current[s:e].copy() for s, e in ranges] if current is not None else None
    return Diff(proc=proc, seq=seq, page=page, vc=vc.copy(), ranges=ranges, data=data)


def apply_diffs_in_order(diffs: List[Diff], page_buffer: Optional[np.ndarray]) -> List[Diff]:
    """Apply ``diffs`` in happens-before order; returns the sorted list.

    ``page_buffer`` may be ``None`` in traced mode (ordering still
    computed, since callers use it to update applied clocks).
    """
    ordered = sorted(diffs, key=lambda d: d.sort_key())
    if page_buffer is not None:
        for diff in ordered:
            diff.apply(page_buffer)
    return ordered
