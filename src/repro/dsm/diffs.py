"""Twin/diff creation and application.

In materialized mode a diff is computed by comparing the page against its
*twin* (the pristine copy made at the first write of the interval) —
vectorized with numpy.  In traced mode the diff carries only the declared
dirty ranges; its wire size is identical because the declared ranges are
exact.

The encode path works directly from the boolean change mask: the changed
bytes are gathered into the diff's contiguous ``buf`` with one masked
read, and the flat dirty positions (``np.flatnonzero``) are kept on the
diff so application is a single scatter.  Fetching several diffs of the
same page *squashes* them: positions/values of all diffs are concatenated
in happens-before order and deduplicated last-writer-wins, so the page is
written once regardless of how many intervals touched it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .intervals import Diff
from .ranges import Range, normalize
from .vectorclock import VectorClock


def changed_ranges(twin: np.ndarray, current: np.ndarray) -> List[Range]:
    """Byte ranges where ``current`` differs from ``twin`` (coalesced runs)."""
    if twin.shape != current.shape:
        raise ValueError("twin/page shape mismatch")
    neq = twin != current
    if not neq.any():
        return []
    # Run-length encode the boolean mask: starts where 0->1, ends where 1->0.
    padded = np.empty(neq.size + 2, dtype=np.int8)
    padded[0] = padded[-1] = 0
    padded[1:-1] = neq
    edges = np.flatnonzero(np.diff(padded))
    starts, ends = edges[0::2], edges[1::2]
    return list(zip(starts.tolist(), ends.tolist()))


def _ranges_from_positions(positions: np.ndarray) -> List[Range]:
    """Coalesce sorted flat positions into (start, end) runs."""
    gaps = np.flatnonzero(positions[1:] != positions[:-1] + 1)
    starts = np.concatenate(([positions[0]], positions[gaps + 1]))
    ends = np.concatenate((positions[gaps], [positions[-1]])) + 1
    return list(zip(starts.tolist(), ends.tolist()))


def make_diff(
    proc: int,
    seq: int,
    page: int,
    vc: VectorClock,
    declared_ranges: List[Range],
    twin: Optional[np.ndarray] = None,
    current: Optional[np.ndarray] = None,
    declared_normalized: bool = False,
    vc_is_snapshot: bool = False,
) -> Optional[Diff]:
    """Encode the diff of one page for one interval.

    Materialized mode (``twin``/``current`` given): the real changed bytes
    are compared; the result is clipped to actual changes (a write of the
    same value produces no run, matching real TreadMarks).  Traced mode:
    the declared ranges stand in for the comparison.

    ``declared_normalized`` lets callers that already hold normalized
    ranges (interval write sets are ``merge`` outputs) skip the
    re-normalization on the traced-mode path.

    The stored clock is a frozen snapshot of ``vc``'s current value.
    Callers that already hold a frozen snapshot (the interval record's
    clock) pass ``vc_is_snapshot=True`` to intern it — every diff and
    notice of one interval then shares a single clock object.

    Returns ``None`` when nothing changed.
    """
    if not vc_is_snapshot:
        vc = vc.snapshot()
    if twin is not None and current is not None:
        mask = twin != current
        positions = np.flatnonzero(mask)
        if not positions.size:
            return None
        diff = Diff(
            proc=proc,
            seq=seq,
            page=page,
            vc=vc,
            ranges=_ranges_from_positions(positions),
            buf=current[mask],
        )
        diff._positions = positions
        return diff
    ranges = declared_ranges if declared_normalized else normalize(declared_ranges)
    if not ranges:
        return None
    # No twin (single-writer page later demoted to multiple-writer): the
    # declared write ranges stand in; with real bytes available, ship them.
    buf = None
    if current is not None:
        chunks = [current[s:e] for s, e in ranges]
        buf = np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()
    return Diff(proc=proc, seq=seq, page=page, vc=vc, ranges=ranges, buf=buf)


def apply_diffs_in_order(
    diffs: List[Diff], page_buffer: Optional[np.ndarray], squash: bool = True
) -> List[Diff]:
    """Apply ``diffs`` in happens-before order; returns the sorted list.

    ``page_buffer`` may be ``None`` in traced mode (ordering still
    computed, since callers use it to update applied clocks).

    With ``squash`` (the default), multiple materialized diffs are merged
    into one scatter: positions/values are concatenated in application
    order and deduplicated last-writer-wins, which is bitwise-identical to
    applying them sequentially.  ``squash=False`` keeps the sequential
    per-diff path (used by identity tests as the reference).
    """
    ordered = sorted(diffs, key=Diff.sort_key) if len(diffs) > 1 else list(diffs)
    if page_buffer is None:
        return ordered
    if squash and len(ordered) > 1 and all(d.buf is not None for d in ordered):
        positions = np.concatenate([d.positions() for d in ordered])
        values = np.concatenate([d.buf for d in ordered])
        # np.unique keeps the first occurrence; reversing first makes that
        # the *last* write in application order (last-writer-wins).
        rev_positions = positions[::-1]
        uniq, first_in_rev = np.unique(rev_positions, return_index=True)
        page_buffer[uniq] = values[::-1][first_in_rev]
        return ordered
    for diff in ordered:
        diff.apply(page_buffer)
    return ordered
