"""Garbage collection (§4.1).

GC removes all consistency bookkeeping (twins, diffs, write notices,
intervals) and leaves every page either valid and up-to-date at a process,
or invalid with its owner field naming a process that holds a complete
copy.  The paper's adaptive system triggers a GC at every adaptation point
precisely because this state is cheap to describe to a joining process and
cheap to hand off at a leave.

The *new-owner rule* is a pure function of the epoch's write notices, so
every process computes the same owner map locally — no extra messages are
needed to agree on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from .intervals import WriteNotice


def gc_new_owners(
    notices: Iterable[WriteNotice],
    current_owner: Mapping[int, int] | None = None,
) -> Dict[int, int]:
    """Owner map changes implied by this epoch's write notices.

    For every written page the new owner is the writer of the *latest*
    interval in happens-before order (vector-clock sort key; concurrent
    multi-writer intervals tie-break deterministically toward the lower
    pid).  Unwritten pages keep their current owner and do not appear in
    the result.
    """
    best: Dict[int, tuple] = {}
    for n in notices:
        key = (*n.vc.sort_key(), -n.proc)
        if n.page not in best or key > best[n.page]:
            best[n.page] = key
    owners = {page: -key[-1] for page, key in best.items()}
    if current_owner is not None:
        # Drop no-op entries to keep owner-update payloads minimal.
        owners = {
            p: w for p, w in owners.items() if current_owner.get(p) != w
        }
    return owners
