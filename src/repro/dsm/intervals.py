"""Interval records, write notices, and diffs.

TreadMarks structures each process's execution into *intervals* delimited
by releases (barrier arrivals, lock releases).  Closing an interval ticks
the process's vector clock, records the pages written (the write set), and
— in this implementation — eagerly encodes the diffs of multiple-writer
pages from their twins ("eager diff creation, lazy diff fetching").  Write
notices advertising the interval travel with the next synchronization;
remote processes invalidate the named pages and fetch diffs on demand.

All of this bookkeeping is exactly what garbage collection (§4.1) wipes:
after a GC every page is valid somewhere with a known owner and no
interval/notice/diff state survives, which is what makes adaptation cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .ranges import Range, diff_wire_size, total_bytes
from .vectorclock import VectorClock


@dataclass(slots=True)
class Diff:
    """The encoded writes of one interval to one page.

    ``ranges`` always holds the dirty byte ranges (exact in both modes);
    ``data`` additionally holds the real bytes in materialized mode as a
    list parallel to ``ranges``.
    """

    proc: int
    seq: int
    page: int
    vc: VectorClock
    ranges: List[Range]
    data: Optional[List[np.ndarray]] = None

    @property
    def dirty_bytes(self) -> int:
        return total_bytes(self.ranges)

    @property
    def wire_size(self) -> int:
        """Bytes this diff occupies in a DIFF_REPLY message."""
        return diff_wire_size(self.ranges)

    def apply(self, page_buffer: np.ndarray) -> None:
        """Write the diff's bytes into a page-sized uint8 buffer."""
        if self.data is None:
            raise ValueError("cannot apply a traced-mode diff to real data")
        for (start, end), chunk in zip(self.ranges, self.data):
            page_buffer[start:end] = chunk

    def sort_key(self):
        """Happens-before-consistent application order."""
        return (*self.vc.sort_key(), self.proc, self.seq)


@dataclass(slots=True)
class WriteNotice:
    """Advertisement that ``proc``'s interval ``seq`` wrote ``page``."""

    proc: int
    seq: int
    page: int
    vc: VectorClock

    def covered_by(self, applied: VectorClock) -> bool:
        """True if the advertised writes are already in a copy with ``applied``."""
        return applied.covers_interval(self.proc, self.seq)


@dataclass(slots=True)
class IntervalRecord:
    """One closed interval of one process (kept by the writer until GC)."""

    proc: int
    seq: int
    vc: VectorClock
    #: page id -> dirty byte ranges within the page.
    write_ranges: Dict[int, List[Range]] = field(default_factory=dict)
    #: page id -> encoded diff (multiple-writer pages only).
    diffs: Dict[int, Diff] = field(default_factory=dict)

    def notices(self) -> List[WriteNotice]:
        """The write notices advertising this interval."""
        return [
            WriteNotice(proc=self.proc, seq=self.seq, page=page, vc=self.vc)
            for page in sorted(self.write_ranges)
        ]


class IntervalLog:
    """Per-process store of closed intervals for the current GC epoch."""

    def __init__(self, proc: int):
        self.proc = proc
        self._by_seq: Dict[int, IntervalRecord] = {}

    def __len__(self) -> int:
        return len(self._by_seq)

    def add(self, record: IntervalRecord) -> None:
        if record.seq in self._by_seq:
            raise ValueError(f"duplicate interval seq {record.seq} for proc {self.proc}")
        self._by_seq[record.seq] = record

    def get(self, seq: int) -> IntervalRecord:
        return self._by_seq[seq]

    def diffs_for(self, page: int, from_seq_exclusive: int, to_seq_inclusive: int) -> List[Diff]:
        """All diffs of ``page`` in intervals ``(from, to]`` (ascending seq)."""
        out = []
        for seq in range(from_seq_exclusive + 1, to_seq_inclusive + 1):
            rec = self._by_seq.get(seq)
            if rec is not None and page in rec.diffs:
                out.append(rec.diffs[page])
        return out

    def clear(self) -> None:
        """Drop everything (garbage collection)."""
        self._by_seq.clear()
