"""Interval records, write notices, and diffs.

TreadMarks structures each process's execution into *intervals* delimited
by releases (barrier arrivals, lock releases).  Closing an interval ticks
the process's vector clock, records the pages written (the write set), and
— in this implementation — eagerly encodes the diffs of multiple-writer
pages from their twins ("eager diff creation, lazy diff fetching").  Write
notices advertising the interval travel with the next synchronization;
remote processes invalidate the named pages and fetch diffs on demand.

All of this bookkeeping is exactly what garbage collection (§4.1) wipes:
after a GC every page is valid somewhere with a known owner and no
interval/notice/diff state survives, which is what makes adaptation cheap.

Diff payloads are stored *contiguously*: one uint8 buffer holding every
changed byte, plus an int64 ``(starts, ends, offsets)`` index derived from
``ranges``.  Application is a single scatter (or a short run of slice
assignments for few-range diffs) instead of a Python loop over chunk
objects, and several same-page diffs can be squashed into one scatter by
concatenating their position/value arrays (see
:func:`repro.dsm.diffs.apply_diffs_in_order`).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .ranges import RUN_HEADER_BYTES, Range, total_bytes
from .vectorclock import VectorClock


@dataclass(slots=True)
class Diff:
    """The encoded writes of one interval to one page.

    ``ranges`` always holds the dirty byte ranges (exact in both modes);
    ``buf`` additionally holds the real bytes in materialized mode — all
    changed bytes concatenated in range order into one contiguous uint8
    array.  ``dirty_bytes``/``wire_size`` are computed once at
    construction (they sit on the DIFF_REQ/REPLY accounting hot path).
    """

    proc: int
    seq: int
    page: int
    vc: VectorClock
    ranges: List[Range]
    buf: Optional[np.ndarray] = None
    dirty_bytes: int = field(default=-1, compare=False)
    wire_size: int = field(default=-1, compare=False)
    _index: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _positions: Optional[np.ndarray] = field(default=None, init=False, repr=False, compare=False)
    _key: Optional[tuple] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.dirty_bytes < 0:
            buf = self.buf
            if buf is not None:
                self.dirty_bytes = int(buf.size)
            elif len(self.ranges) == 1:
                # Traced single-run diffs dominate interval closes; skip
                # the generator expression inside total_bytes for them.
                s, e = self.ranges[0]
                self.dirty_bytes = e - s
            else:
                self.dirty_bytes = total_bytes(self.ranges)
        if self.wire_size < 0:
            self.wire_size = self.dirty_bytes + RUN_HEADER_BYTES * len(self.ranges)

    @property
    def data(self) -> Optional[List[np.ndarray]]:
        """Per-range views of the payload (compatibility accessor).

        The storage is the contiguous ``buf``; this slices it back into
        the historical list-of-chunks shape.  ``None`` for traced diffs.
        """
        if self.buf is None:
            return None
        out = []
        off = 0
        for start, end in self.ranges:
            ln = end - start
            out.append(self.buf[off : off + ln])
            off += ln
        return out

    def index(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, ends, offsets)`` int64 arrays; ``offsets[i]`` is the
        position of range ``i``'s first byte within ``buf``.  Cached."""
        idx = self._index
        if idx is None:
            n = len(self.ranges)
            starts = np.empty(n, dtype=np.int64)
            ends = np.empty(n, dtype=np.int64)
            for i, (s, e) in enumerate(self.ranges):
                starts[i] = s
                ends[i] = e
            offsets = np.empty(n, dtype=np.int64)
            if n:
                offsets[0] = 0
                np.cumsum(ends[:-1] - starts[:-1], out=offsets[1:])
            idx = self._index = (starts, ends, offsets)
        return idx

    def positions(self) -> np.ndarray:
        """Flat page offsets of every dirty byte, in range order.  Cached;
        parallel to ``buf`` so ``page[positions()] = buf`` applies the diff."""
        pos = self._positions
        if pos is None:
            starts, ends, offsets = self.index()
            lens = ends - starts
            total = self.dirty_bytes
            # positions = for each range, start + [0..len): one vectorized
            # arange shifted per-range by (start - offset_into_buf).
            pos = np.arange(total, dtype=np.int64)
            if len(self.ranges) > 1 or (len(self.ranges) == 1 and starts[0] != 0):
                pos += np.repeat(starts - offsets, lens)
            self._positions = pos
        return pos

    def apply(self, page_buffer: np.ndarray) -> None:
        """Write the diff's bytes into a page-sized uint8 buffer."""
        buf = self.buf
        if buf is None:
            raise ValueError("cannot apply a traced-mode diff to real data")
        ranges = self.ranges
        if len(ranges) <= 8:
            off = 0
            for start, end in ranges:
                ln = end - start
                page_buffer[start:end] = buf[off : off + ln]
                off += ln
        else:
            page_buffer[self.positions()] = buf

    def sort_key(self):
        """Happens-before-consistent application order (cached)."""
        key = self._key
        if key is None:
            key = self._key = (*self.vc.sort_key(), self.proc, self.seq)
        return key


#: Bits reserved for the page id in packed ``(seq << PAGE_BITS) | page``
#: notice keys (see :attr:`WriteNotice.key`).  Page ids are checked against
#: this bound at map time (:meth:`repro.dsm.page.PageTable.map_page`).
PAGE_BITS = 21


class WriteNotice:
    """Advertisement that ``proc``'s interval ``seq`` wrote ``page``.

    A hand-rolled slots class rather than a dataclass: one notice is
    created per (interval, page) at the writer — tens of thousands per
    run — and the generated ``__init__``/``__post_init__`` pair is
    measurable at that volume.
    """

    __slots__ = ("proc", "seq", "page", "vc", "key")

    def __init__(self, proc: int, seq: int, page: int, vc: VectorClock):
        self.proc = proc
        self.seq = seq
        self.page = page
        self.vc = vc
        #: Packed ``(seq << PAGE_BITS) | page`` — the per-writer bucket
        #: sort / dedupe key of the consistency engine.  Computed at
        #: construction: the notice is built once at the writer but
        #: indexed at every receiver.
        self.key = (seq << PAGE_BITS) | page

    def covered_by(self, applied: VectorClock) -> bool:
        """True if the advertised writes are already in a copy with ``applied``."""
        return applied.covers_interval(self.proc, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"WriteNotice(proc={self.proc}, seq={self.seq}, "
                f"page={self.page})")


@dataclass(slots=True)
class IntervalRecord:
    """One closed interval of one process (kept by the writer until GC)."""

    proc: int
    seq: int
    vc: VectorClock
    #: page id -> dirty byte ranges within the page.
    write_ranges: Dict[int, List[Range]] = field(default_factory=dict)
    #: page id -> encoded diff (multiple-writer pages only).
    diffs: Dict[int, Diff] = field(default_factory=dict)

    def notices(self) -> List[WriteNotice]:
        """The write notices advertising this interval."""
        return [
            WriteNotice(proc=self.proc, seq=self.seq, page=page, vc=self.vc)
            for page in sorted(self.write_ranges)
        ]


class IntervalLog:
    """Per-process store of closed intervals for the current GC epoch.

    Besides the primary seq -> record map, the log keeps a per-page index
    of the (seq-ascending) intervals that wrote each page, so diff lookups
    for a seq window bisect a short page-local list instead of probing
    every seq in the window.
    """

    def __init__(self, proc: int):
        self.proc = proc
        self._by_seq: Dict[int, IntervalRecord] = {}
        #: page id -> ascending [(seq, record), ...] of intervals writing it.
        self._by_page: Dict[int, List[Tuple[int, IntervalRecord]]] = {}

    def __len__(self) -> int:
        return len(self._by_seq)

    def add(self, record: IntervalRecord) -> None:
        if record.seq in self._by_seq:
            raise ValueError(f"duplicate interval seq {record.seq} for proc {self.proc}")
        self._by_seq[record.seq] = record
        by_page = self._by_page
        entry = (record.seq, record)
        for page in record.write_ranges:
            bucket = by_page.get(page)
            if bucket is None:
                by_page[page] = [entry]
            elif bucket[-1][0] < record.seq:
                bucket.append(entry)
            else:
                insort(bucket, entry, key=lambda item: item[0])

    def get(self, seq: int) -> IntervalRecord:
        return self._by_seq[seq]

    def pages(self) -> List[int]:
        """Pages with at least one live record (prune-candidate keys)."""
        return list(self._by_page)

    def records_for(
        self, page: int, from_seq_exclusive: int, to_seq_inclusive: int
    ) -> List[IntervalRecord]:
        """Intervals that wrote ``page`` with seq in ``(from, to]`` (ascending)."""
        bucket = self._by_page.get(page)
        if not bucket:
            return []
        lo = bisect_right(bucket, from_seq_exclusive, key=lambda item: item[0])
        hi = bisect_left(bucket, to_seq_inclusive + 1, key=lambda item: item[0])
        return [rec for _, rec in bucket[lo:hi]]

    def diffs_for(self, page: int, from_seq_exclusive: int, to_seq_inclusive: int) -> List[Diff]:
        """All diffs of ``page`` in intervals ``(from, to]`` (ascending seq)."""
        out = []
        for rec in self.records_for(page, from_seq_exclusive, to_seq_inclusive):
            diff = rec.diffs.get(page)
            if diff is not None:
                out.append(diff)
        return out

    def prune_covered(self, cover: Dict[int, int]) -> int:
        """Drop records every peer's applied clock already covers.

        ``cover[page]`` is the *cover frontier* for this writer on
        ``page``: the minimum, over all peers, of the seq up to which the
        peer has applied this writer's diffs on that page (0 when a peer
        has no mapping yet — a later notice would lazily map the page
        with a zero applied clock and request diffs from seq 0).  A
        record is dead once **every** page it wrote is covered at or
        beyond its seq: no DIFF_REQ can ever name it again, because
        requests ask for ``(applied[writer], to]`` windows.

        Returns the number of records dropped.  Purely host-side
        bookkeeping — no messages, no simulated time — so pruning never
        changes simulated results (see ``tests/dsm/test_interval_prune.py``).
        """
        if not self._by_seq:
            return 0
        dead = [
            seq for seq, rec in self._by_seq.items()
            if all(cover.get(page, 0) >= seq for page in rec.write_ranges)
        ]
        for seq in dead:
            rec = self._by_seq.pop(seq)
            by_page = self._by_page
            for page in rec.write_ranges:
                bucket = by_page.get(page)
                if bucket is None:
                    continue
                lo = bisect_left(bucket, seq, key=lambda item: item[0])
                if lo < len(bucket) and bucket[lo][0] == seq:
                    del bucket[lo]
                if not bucket:
                    del by_page[page]
        return len(dead)

    def clear(self) -> None:
        """Drop everything (garbage collection)."""
        self._by_seq.clear()
        self._by_page.clear()
