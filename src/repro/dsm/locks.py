"""Centralized-manager, distributed-queue locks (§2, §5.1).

The master is the manager of every lock.  An acquire goes to the manager,
which forwards it to the tail of the lock's request chain; the previous
tail grants the lock directly to the requester when it releases (or at
once if it already has).  The grant carries the write notices the
requester has not seen — the LRC acquire.  The three-message path
(request, forward, grant) lands in the paper's measured 178–272 µs
acquisition window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from ..network import message as mk
from ..network.message import Message
from .team import TeamView

if TYPE_CHECKING:  # pragma: no cover
    from .process import DsmProcess


class LockManager:
    """Per-lock chain-tail bookkeeping on the master."""

    def __init__(self, master: "DsmProcess"):
        self.master = master
        #: lock id -> pid of the last requester (tail of the chain).
        self._tails: Dict[int, int] = {}

    def on_request(self, msg: Message) -> None:
        """Forward a LOCK_REQ to the current chain tail."""
        lock_id = msg.payload["lock"]
        requester = msg.payload["pid"]
        vc = msg.payload["vc"]
        tail = self._tails.get(lock_id, TeamView.MASTER_PID)
        self._tails[lock_id] = requester
        self.master.send(
            mk.LOCK_FORWARD,
            tail,
            {"lock": lock_id, "requester": requester, "vc": vc},
            size=8 + self.master.vc_wire_bytes,
        )

    def reset(self) -> None:
        """Drop chain state (garbage collection starts a fresh epoch)."""
        self._tails.clear()
