"""Shared-memory address space and per-process backing store.

:class:`AddressSpace` is the global page-id allocator: every shared
segment (array) occupies a page-aligned run of global page ids.  It is
metadata only — actual bytes live in each process's :class:`LocalStore`
(materialized mode) because every DSM process has its *own copy* of every
page it maps, exactly like nodes of a real DSM.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import AllocationError
from .page import Protocol


@dataclass(frozen=True)
class SharedSegment:
    """A page-aligned shared allocation (one logical array)."""

    seg_id: int
    name: str
    nbytes: int
    page0: int
    npages: int
    protocol: Protocol
    #: Node id whose process initially owns (has valid copies of) the pages.
    home: int
    dtype: str = "uint8"
    shape: Tuple[int, ...] = ()

    @property
    def pages(self) -> range:
        """Global page ids of this segment."""
        return range(self.page0, self.page0 + self.npages)

    def page_window(self, page: int, page_size: int) -> Tuple[int, int]:
        """Byte window ``[lo, hi)`` of ``page`` within the segment."""
        idx = page - self.page0
        if not 0 <= idx < self.npages:
            raise AllocationError(f"page {page} not in segment {self.name!r}")
        lo = idx * page_size
        return lo, min(lo + page_size, self.nbytes)

    def pages_for_range(self, lo: int, hi: int) -> range:
        """Global page ids overlapping segment byte range ``[lo, hi)``."""
        if not (0 <= lo <= hi <= self.nbytes):
            raise AllocationError(
                f"byte range [{lo}, {hi}) outside segment {self.name!r} of {self.nbytes}B"
            )
        if lo == hi:
            return range(0)
        page_size = self._page_size_hint
        return range(self.page0 + lo // page_size, self.page0 + (hi - 1) // page_size + 1)

    # Set by AddressSpace.alloc (a frozen dataclass; use object.__setattr__).
    _page_size_hint: int = 4096


class AddressSpace:
    """Global allocator of page-aligned shared segments."""

    def __init__(self, page_size: int):
        self.page_size = page_size
        self.segments: Dict[int, SharedSegment] = {}
        self._by_name: Dict[str, int] = {}
        self._starts: List[int] = []  # sorted page0 list for page->segment lookup
        self._start_ids: List[int] = []
        self._next_page = 0
        self._next_seg = 0
        # Access-plan memo shared by every process of this address space
        # (imported lazily to avoid a cycle with plans -> memory).
        from .plans import PlanCache

        self.plan_cache = PlanCache()

    @property
    def total_pages(self) -> int:
        return self._next_page

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.segments.values())

    def alloc(
        self,
        name: str,
        nbytes: int,
        protocol: Protocol = Protocol.MULTIPLE_WRITER,
        home: int = 0,
        dtype: str = "uint8",
        shape: Tuple[int, ...] = (),
    ) -> SharedSegment:
        """Allocate a page-aligned segment of ``nbytes``."""
        if nbytes <= 0:
            raise AllocationError(f"segment {name!r}: nbytes must be positive")
        if name in self._by_name:
            raise AllocationError(f"segment name {name!r} already allocated")
        npages = -(-nbytes // self.page_size)
        seg = SharedSegment(
            seg_id=self._next_seg,
            name=name,
            nbytes=nbytes,
            page0=self._next_page,
            npages=npages,
            protocol=protocol,
            home=home,
            dtype=dtype,
            shape=shape,
        )
        object.__setattr__(seg, "_page_size_hint", self.page_size)
        self.segments[seg.seg_id] = seg
        self._by_name[name] = seg.seg_id
        self._starts.append(seg.page0)
        self._start_ids.append(seg.seg_id)
        self._next_page += npages
        self._next_seg += 1
        return seg

    def by_name(self, name: str) -> SharedSegment:
        try:
            return self.segments[self._by_name[name]]
        except KeyError:
            raise AllocationError(f"no segment named {name!r}") from None

    def segment_of_page(self, page: int) -> SharedSegment:
        """The segment containing global page id ``page``."""
        if not 0 <= page < self._next_page:
            raise AllocationError(f"page {page} outside allocated space")
        i = bisect.bisect_right(self._starts, page) - 1
        return self.segments[self._start_ids[i]]


class LocalStore:
    """Materialized-mode byte storage of one process.

    One padded uint8 buffer per segment; page copies and application data
    are views into it, so applying a diff updates what the app reads.
    """

    def __init__(self, space: AddressSpace):
        self.space = space
        self._buffers: Dict[int, np.ndarray] = {}

    def buffer(self, seg: SharedSegment) -> np.ndarray:
        """The full padded buffer for ``seg`` (created zeroed on first use)."""
        buf = self._buffers.get(seg.seg_id)
        if buf is None:
            buf = np.zeros(seg.npages * self.space.page_size, dtype=np.uint8)
            self._buffers[seg.seg_id] = buf
        return buf

    def page_view(self, page: int) -> np.ndarray:
        """Mutable uint8 view of one page's bytes (padded to page size)."""
        seg = self.space.segment_of_page(page)
        idx = page - seg.page0
        ps = self.space.page_size
        return self.buffer(seg)[idx * ps : (idx + 1) * ps]

    def array_view(self, seg: SharedSegment) -> np.ndarray:
        """The segment's data viewed with its declared dtype/shape."""
        flat = self.buffer(seg)[: seg.nbytes].view(seg.dtype)
        return flat.reshape(seg.shape) if seg.shape else flat
