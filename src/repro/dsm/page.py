"""Per-process page table.

Each DSM process keeps one :class:`PageTableEntry` per shared page it has
touched.  The entry records validity (do we hold a base copy), the access
mode (read-only vs write with a twin), the *applied* vector clock (whose
intervals' writes our copy reflects), and the pending write notices that
invalidated the page.

Page *protocols* follow §4.1's page-location map ("what protocol is used,
single or multiple writer"):

* ``MULTIPLE_WRITER`` — concurrent writers allowed; faults on a stale copy
  fetch diffs (twin-based).  Used for Jacobi's non-page-aligned partitions.
* ``SINGLE_WRITER`` — one writer per epoch; faults always fetch the full
  page from the current owner; no twins or diffs.  Used for Gauss/FFT/NBF,
  which is why Table 1 reports zero diffs for them.

Pending invalidations are stored per writer
(:attr:`PageTableEntry.pending_by_writer` — writer pid to that writer's
*latest* pending notice).  Only the newest interval per writer matters:
diff requests fetch the whole ``(applied, latest]`` range from each
writer, and the single-writer refresh needs the most recent writer's
clock, which the latest notice carries.  One dict entry per writer is
therefore the complete invalidation state, and notice ingestion — the
engine's hottest path — pays one dict get/set per notice instead of a
list append plus key-set insert plus dict update.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import DsmError
from .intervals import WriteNotice
from .vectorclock import VectorClock


class Protocol(enum.Enum):
    """Consistency protocol of a page (fixed per shared segment)."""

    SINGLE_WRITER = "single_writer"
    MULTIPLE_WRITER = "multiple_writer"


class AccessMode(enum.Enum):
    """Current access mode of a local page copy."""

    NONE = 0
    READ = 1
    WRITE = 2


@dataclass(slots=True)
class PageTableEntry:
    """State of one shared page at one process."""

    page: int
    protocol: Protocol
    #: Do we hold a base copy of the page's bytes at all?
    valid: bool = False
    mode: AccessMode = AccessMode.NONE
    #: Which node holds a guaranteed-complete copy (set at alloc/GC/adapt).
    owner: int = 0
    #: Writes of which intervals are reflected in our copy.
    applied: Optional[VectorClock] = None
    #: writer pid -> that writer's latest pending (un-applied) notice.
    #: Empty means no invalidation is outstanding.
    pending_by_writer: Dict[int, WriteNotice] = field(default_factory=dict)
    #: Twin (pristine pre-write copy) in materialized mode.
    twin: Optional[np.ndarray] = None
    #: GC epoch in which this process last accessed the page (§5.4 c5).
    last_access_epoch: int = -1

    @property
    def pending(self) -> List[WriteNotice]:
        """Pending notices, one (the latest) per writer — inspection view."""
        return list(self.pending_by_writer.values())

    @property
    def readable(self) -> bool:
        """A fault-free read is possible: valid copy with nothing pending."""
        return self.valid and not self.pending_by_writer

    def add_notice(self, notice: WriteNotice) -> None:
        """Record an invalidating write notice (idempotent)."""
        proc = notice.proc
        seq = notice.seq
        applied = self.applied
        if applied is not None and applied.entries[proc] >= seq:
            return
        by_writer = self.pending_by_writer
        prev = by_writer.get(proc)
        if prev is None or seq > prev.seq:
            by_writer[proc] = notice
        self.mode = AccessMode.NONE  # next access faults

    def prune_pending(self) -> None:
        """Drop pending notices now covered by the applied clock."""
        applied = self.applied
        by_writer = self.pending_by_writer
        if applied is None or not by_writer:
            return
        entries = applied.entries
        covered = [p for p, n in by_writer.items() if entries[p] >= n.seq]
        for p in covered:
            del by_writer[p]

    def clear_pending(self) -> None:
        """Drop all pending notices (after fetching them)."""
        self.pending_by_writer.clear()


class PageTable:
    """All page table entries of one process."""

    __slots__ = ("proc_name", "_entries")

    def __init__(self, proc_name: str):
        self.proc_name = proc_name
        self._entries: Dict[int, PageTableEntry] = {}

    def __contains__(self, page: int) -> bool:
        return page in self._entries

    def __iter__(self):
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, page: int) -> PageTableEntry:
        """The entry for ``page``; raises if the page was never mapped."""
        try:
            return self._entries[page]
        except KeyError:
            raise DsmError(f"{self.proc_name}: page {page} not mapped") from None

    def get(self, page: int) -> Optional[PageTableEntry]:
        """The entry for ``page`` or ``None`` (no-raise hot-path lookup)."""
        return self._entries.get(page)

    def map_page(
        self, page: int, protocol: Protocol, owner: int, valid: bool, width: int
    ) -> PageTableEntry:
        """Create (or reset) the entry for ``page``.

        Page ids must fit the packed ``(seq << 21) | page`` notice-bucket
        keys of the consistency engine (2**21 pages = 8 GB of shared
        segments at the default page size — far beyond any simulated NOW).
        """
        if page >= 1 << 21:
            raise DsmError(f"{self.proc_name}: page id {page} exceeds 2**21 - 1")
        pte = PageTableEntry(
            page=page,
            protocol=protocol,
            valid=valid,
            owner=owner,
            applied=VectorClock.zeros(width),
        )
        self._entries[page] = pte
        return pte

    def entries_snapshot(self) -> List[PageTableEntry]:
        """Deterministically ordered list of entries."""
        return [self._entries[p] for p in sorted(self._entries)]
