"""Cached access plans for shared-region accesses.

``TmkProcess.access`` / ``access_batch`` translate byte ranges of a shared
segment into the set of pages to touch and the per-page local write
ranges.  For iterative applications (Jacobi sweeps, Gauss rows) the same
(segment, ranges) tuples recur every iteration, so this pure computation
is memoized here.

An :class:`AccessPlan` is a *pure function* of

* the segment geometry (element size, page alignment, length),
* the requested read/write byte ranges, and
* the system page size,

none of which change during normal execution.  The cache is therefore
bitwise-neutral: a hit returns exactly what the miss path would have
computed.  Team changes (join / leave / migration) repartition segments
conceptually, so :class:`PlanCache.invalidate` bumps an epoch that lazily
discards all cached plans; ``TmkProcess.adapt_reset`` calls it on every
adaptation.  The cache can be disabled wholesale via
``PerfParams.plan_cache`` — the e2e identity test runs both ways and
compares traces bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .memory import SharedSegment
from .ranges import Range, clip, normalize

#: Cache key: (segment id, read ranges, write ranges, page size).
PlanKey = Tuple[int, Tuple[Range, ...], Tuple[Range, ...], int]


class AccessPlan:
    """Precomputed page set and per-page write ranges for one access."""

    __slots__ = ("pages", "write_ranges", "steps")

    def __init__(
        self,
        pages: Tuple[Tuple[int, bool], ...],
        write_ranges: Dict[int, List[Range]],
    ):
        #: ``(page, is_write)`` sorted by page number — the fault order.
        self.pages = pages
        #: page -> normalized page-local write ranges (read-only; copy
        #: before mutating).
        self.write_ranges = write_ranges
        #: ``(page, is_write, write_ranges_or_None)`` — the same walk with
        #: the per-page range list pre-joined, so the access fast path
        #: does one tuple unpack instead of a dict lookup per written
        #: page.  The lists are the ``write_ranges`` values themselves:
        #: read-only by the same contract.
        self.steps: Tuple[Tuple[int, bool, List[Range] | None], ...] = tuple(
            (page, is_write, write_ranges.get(page)) for page, is_write in pages
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AccessPlan pages={len(self.pages)}>"


def build_plan(
    seg: SharedSegment,
    reads: Tuple[Range, ...],
    writes: Tuple[Range, ...],
    page_size: int,
) -> AccessPlan:
    """Compute the plan the uncached ``access`` path would compute.

    Mirrors the original per-access logic exactly: pages are the union of
    read and write page sets, visited in ascending page order; each
    written page carries its page-local normalized write ranges.
    """
    write_pages: Dict[int, List[Range]] = {}
    for lo, hi in writes:
        for page in seg.pages_for_range(lo, hi):
            wlo, whi = seg.page_window(page, page_size)
            local = [(s - wlo, e - wlo) for s, e in clip([(lo, hi)], wlo, whi)]
            prev = write_pages.get(page)
            if prev is None:
                write_pages[page] = normalize(local)
            else:
                write_pages[page] = normalize(prev + local)
    read_pages = set()
    for lo, hi in reads:
        read_pages.update(seg.pages_for_range(lo, hi))
    pages = tuple(
        (page, page in write_pages)
        for page in sorted(read_pages | set(write_pages))
    )
    return AccessPlan(pages=pages, write_ranges=write_pages)


class PlanCache:
    """Epoch-invalidated memo of :class:`AccessPlan` objects.

    Shared by all processes of one address space (the plan depends only on
    segment geometry, not on the asking process).  ``invalidate()`` is
    O(1): it bumps the epoch and the next lookup clears the table.
    """

    __slots__ = ("capacity", "epoch", "hits", "misses", "_plans", "_plans_epoch")

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self._plans: Dict[PlanKey, AccessPlan] = {}
        self._plans_epoch = 0

    def invalidate(self) -> None:
        """Discard all plans (team membership / partition changed)."""
        self.epoch += 1

    def lookup(
        self,
        seg: SharedSegment,
        reads: Tuple[Range, ...],
        writes: Tuple[Range, ...],
        page_size: int,
    ) -> AccessPlan:
        """Cached plan for this access, building it on a miss."""
        plans = self._plans
        if self._plans_epoch != self.epoch:
            plans.clear()
            self._plans_epoch = self.epoch
        key = (seg.seg_id, reads, writes, page_size)
        plan = plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        # Not cached on failure: build first, insert after.
        plan = build_plan(seg, reads, writes, page_size)
        self.misses += 1
        if len(plans) >= self.capacity:
            plans.clear()
        plans[key] = plan
        return plan
