"""The per-node DSM protocol engine.

A :class:`DsmProcess` is one TreadMarks process: it owns a page table, a
vector clock, an interval log, and a server coroutine that services
protocol requests (page fetches, diff fetches, lock traffic) concurrently
with the main computation — the analogue of TreadMarks' SIGIO handlers.

The main computation drives the engine through:

* :meth:`access` — declare the byte ranges a code section reads/writes;
  faults (page fetches, diff fetches, twin creation) happen here;
* :meth:`compute` — charge CPU time on the current node;
* :meth:`barrier`, :meth:`lock_acquire`, :meth:`lock_release` — lazy
  release consistency synchronization;
* the fork/join driver in :mod:`repro.dsm.runtime`.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..errors import DsmError, NetworkError, ProtocolError
from ..network import message as mk
from ..network.message import Message
from ..simcore import Channel, Simulator, Store
from .diffs import apply_diffs_in_order, make_diff
from .intervals import PAGE_BITS, Diff, IntervalLog, IntervalRecord, WriteNotice
from .memory import AddressSpace, LocalStore, SharedSegment
from .page import AccessMode, PageTable, PageTableEntry, Protocol
from .plans import build_plan
from .ranges import Range, merge
from .statistics import DsmStats
from .team import TeamView
from .vectorclock import VectorClock

#: Bits reserved for the page id in the packed (seq, page) bucket keys:
#: ``key = (seq << _PAGE_BITS) | page``.  One int compare then orders
#: notices by (seq, page) with no per-notice tuple construction — the
#: dominant cost of the old triple-keyed ``seen`` dict.  Page ids are
#: bounded at map time (:meth:`PageTable.map_page`); seqs above 2**21 pack
#: into larger ints with ordering intact, so only the page bound matters.
#: Notices precompute their own key at construction
#: (:attr:`~repro.dsm.intervals.WriteNotice.key`).
_PAGE_BITS = PAGE_BITS

#: Message kinds routed to the main coroutine rather than a handler.
MAIN_KINDS = frozenset(
    {
        mk.FORK,
        mk.STOP,
        mk.BARRIER_RELEASE,
        mk.BARRIER_TREE_RELEASE,
        mk.GC_GO,
        mk.GC_REQ,
        mk.LOCK_GRANT,
    }
)


class DsmProcess:
    """One TreadMarks-style DSM process."""

    def __init__(
        self,
        sim: Simulator,
        cfg: SystemConfig,
        node,
        pid: int,
        team: TeamView,
        space: AddressSpace,
        materialized: bool = True,
    ):
        self.sim = sim
        self.cfg = cfg
        self.node = node
        self.pid = pid
        self.team = team
        self.space = space
        self.materialized = materialized
        self.store: Optional[LocalStore] = LocalStore(space) if materialized else None

        self.table = PageTable(proc_name=self.name)
        self.vc = VectorClock.zeros(team.nprocs)
        self.log = IntervalLog(pid)
        self.epoch = 0
        #: Per-writer index of every notice known this epoch, as parallel
        #: lists ``(keys, notices)`` sorted by the packed
        #: ``(seq << _PAGE_BITS) | page`` key.  This is both the dedupe
        #: structure (membership is one int compare against the tail, or a
        #: key-free C-level bisect on out-of-order arrival) and the
        #: "everything newer than vc[w]" index (a bisect + slice).
        self._seen_by_proc: Dict[int, Tuple[List[int], List[WriteNotice]]] = {}
        #: page -> dirty ranges of the *open* interval.
        self.current_writes: Dict[int, List[Range]] = {}
        #: page -> owner pid overrides (default: segment home).
        self.owners: Dict[int, int] = {}
        self.stats = DsmStats()
        #: Highest own interval seq already reported to the master.
        self._sent_to_master_seq = 0
        # Hot-path caches (see PerfParams): plan memoization toggle, the
        # opt-in bulk-fetch protocol extension, and wire-size constants.
        self._plan_cache_enabled = cfg.perf.plan_cache
        self._bulk_fetch = cfg.perf.bulk_fetch
        self._diff_squash = cfg.perf.diff_squash
        self._flight_on = cfg.perf.flight_batch
        # Incremental interval-log pruning (PerfParams.interval_prune):
        # drop records every peer's applied clock covers, every
        # ``interval_prune_period`` closes.  Host-side memory bounding
        # only — bitwise identical on or off.
        self._prune_enabled = cfg.perf.interval_prune
        self._prune_period = cfg.perf.interval_prune_period
        self._prune_countdown = self._prune_period
        #: Intervals closed since the last GC; drives ``wants_gc`` (the
        #: §4.1 consistency-memory limit) independently of pruning, so
        #: GC timing is identical whether or not the log was pruned.
        self._intervals_this_epoch = 0
        space.plan_cache.capacity = cfg.perf.plan_cache_capacity
        self._notice_bytes = cfg.dsm.write_notice_bytes
        self._vc_bytes: Tuple[int, int] = (-1, 0)  # (vc width, cached bytes)

        #: Control messages for the main coroutine (fork, release, grants...).
        self.main_inbox = Channel(sim, name=f"{self.name}.main")
        #: Master-side collectors.
        self.join_store = Store(sim, name=f"{self.name}.joins")
        self.gc_done_store = Store(sim, name=f"{self.name}.gcdone")
        self.barrier_mgr = None  # set for the master by the runtime
        self.lock_mgr = None  # set for the master by the runtime
        #: Combining-tree barrier engine (PerfParams.barrier_tree, §11);
        #: None runs the paper's flat all-to-one barrier.
        self.tree_barrier = None
        if cfg.perf.barrier_tree:
            from .treebarrier import TreeBarrier

            self.tree_barrier = TreeBarrier(self)
        #: Per-process distributed lock state: lock id -> dict.
        self._lock_state: Dict[int, Dict[str, Any]] = {}
        #: Set by the runtime: a generator-returning callable that blocks
        #: while the system is frozen (urgent-leave migration, §4.2).  It
        #: is consulted between individual page faults so a long fault
        #: sequence cannot run through a freeze.
        self.stall_hook = None
        #: req_ids currently being served (duplicate retransmissions of a
        #: request we are still working on are suppressed).
        self._inflight_reqs: set = set()
        self._server_proc = None
        #: Live request-handler coroutines (killed on crash/halt).
        self._handlers: List = []
        #: Handlers finished since the last reap; the server loop prunes
        #: ``_handlers`` in place only when this is nonzero instead of
        #: rebuilding the list on every dispatched message.
        self._handlers_dead = 0
        #: Set by the runtime when failure detection is on: called as
        #: ``crash_hook(dst_node_id, err)`` when a request to a peer times
        #: out or the peer's NIC is dark — escalates the NetworkError into a
        #: suspected-crash report instead of failing the simulation.
        self.crash_hook = None
        #: Set by the runtime: zero-argument callable returning the live
        #: pid -> process map.  Interval-log pruning reads peers' applied
        #: clocks through it — pure host-side bookkeeping, no messages.
        self.peers_hook = None
        node.add_process()

    # ------------------------------------------------------------------
    # identity & plumbing
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"P{self.pid}"

    @property
    def is_master(self) -> bool:
        return self.pid == TeamView.MASTER_PID

    @property
    def vc_wire_bytes(self) -> int:
        # Cached per clock width; adaptations change the team size (and
        # with it the clock width), so the cache key is the width itself.
        width = self.vc.width
        cached = self._vc_bytes
        if cached[0] == width:
            return cached[1]
        val = width * self.cfg.dsm.clock_entry_bytes
        self._vc_bytes = (width, val)
        return val

    def notice_wire_bytes(self, n_notices: int) -> int:
        return n_notices * self._notice_bytes

    def send(
        self,
        kind: str,
        dst_pid: int,
        payload: Any = None,
        size: int = 8,
        req_id: Optional[int] = None,
        is_reply: bool = False,
    ) -> Message:
        """Build and transmit a protocol message to another process."""
        msg = Message(
            kind=kind,
            src=self.node.node_id,
            dst=self.team.node_of(dst_pid),
            size_bytes=size,
            payload=payload,
            req_id=req_id,
            is_reply=is_reply,
            src_pid=self.pid,
            dst_pid=dst_pid,
        )
        try:
            self.node.nic.send(msg)
        except NetworkError as err:
            # Fail-stop world: a dark peer means the message is simply
            # lost.  With a crash hook installed the failure is escalated
            # to the runtime (suspected crash); without one it propagates,
            # as the base system has no notion of node failure.
            if self.crash_hook is None:
                raise
            self.crash_hook(msg.dst, err)
        return msg

    def send_fanout(
        self, legs: List[Tuple[str, int, Any, int]]
    ) -> List[Message]:
        """Transmit ``(kind, dst_pid, payload, size)`` legs as one flight.

        Only valid for sends issued back-to-back with no yield between
        them (a fan-out wave); then batching the transport is bitwise
        identical to ``[self.send(*leg) for leg in legs]`` — see
        docs/PROTOCOL.md §13.  With ``PerfParams.flight_batch`` off (or a
        wire that cannot take the fast path) the legs go through
        :meth:`send` one at a time, which is the identity reference.
        """
        nic = self.node.nic
        if self._flight_on and len(legs) >= 2 and nic.attached:
            switch = nic.switch
            if (
                switch._faults is None
                and switch.loss is None
                and not self.sim.tracer.enabled
            ):
                node_of = self.team.node_of
                src = self.node.node_id
                pid = self.pid
                msgs = [
                    Message(
                        kind=kind,
                        src=src,
                        dst=node_of(dst_pid),
                        size_bytes=size,
                        payload=payload,
                        src_pid=pid,
                        dst_pid=dst_pid,
                    )
                    for kind, dst_pid, payload, size in legs
                ]
                crash_hook = self.crash_hook
                on_error = (
                    None
                    if crash_hook is None
                    else lambda m, e: crash_hook(m.dst, e)
                )
                nic.send_flight(msgs, on_error)
                return msgs
        return [
            self.send(kind, dst_pid, payload, size)
            for kind, dst_pid, payload, size in legs
        ]

    def request(self, kind: str, dst_pid: int, payload: Any, size: int):
        """Waitable request/reply to another process's server."""
        msg = Message(
            kind=kind,
            src=self.node.node_id,
            dst=self.team.node_of(dst_pid),
            size_bytes=size,
            payload=payload,
            req_id=mk.next_req_id(),
            src_pid=self.pid,
            dst_pid=dst_pid,
        )
        return self.node.nic.request(msg)

    def request_reply(
        self, kind: str, dst_pid: int, payload: Any, size: int
    ) -> Generator:
        """Request/reply with crash escalation (``reply = yield from ...``).

        A :class:`~repro.errors.NetworkError` (retransmissions exhausted, or
        the peer's NIC already dark) is reported through ``crash_hook`` and
        the calling coroutine parks forever — recovery tears it down and
        restarts the computation from the last checkpoint.  Without a hook
        the error propagates unchanged (base-system behaviour).
        """
        dst_node = self.team.node_of(dst_pid)
        try:
            reply = yield self.request(kind, dst_pid, payload, size)
        except NetworkError as err:
            if self.crash_hook is None:
                raise
            self.crash_hook(dst_node, err)
            # Park until recovery kills this coroutine: there is no answer
            # coming, and the caller cannot make progress without one.
            from ..simcore import Signal

            yield Signal(self.sim, name=f"{self.name}.parked")
            raise ProtocolError(f"{self.name}: parked coroutine resumed")
        return reply

    # ------------------------------------------------------------------
    # server: request handling (the SIGIO side of TreadMarks)
    # ------------------------------------------------------------------
    def start_server(self) -> None:
        """(Re)start the server coroutine on the current node's NIC."""
        if self._server_proc is not None and self._server_proc.alive:
            self._server_proc.interrupt("server restart")
        self._server_proc = self.sim.process(
            self._server_loop(), name=f"{self.name}.server", daemon=True
        )

    def _server_loop(self) -> Generator:
        inbox = self.node.nic.inbox
        # Only take messages addressed to this process (or to the node
        # as a whole) — two multiplexed processes share one NIC.  One
        # shared match closure (building one per message is measurable);
        # it must read ``self.pid`` dynamically — adaptation renumbers
        # pids while the loop is parked on a recv.
        match = (
            lambda m, s=self: m.dst_pid is None or m.dst_pid == s.pid
        )  # noqa: E731
        # Handler names cached per kind (two f-strings per dispatched
        # request otherwise); invalidated when adaptation renumbers us.
        names: dict = {}
        names_pid = self.pid
        while True:
            msg = yield inbox.recv(match=match)
            if msg.kind in MAIN_KINDS:
                self.main_inbox.put(msg)
            elif msg.kind == mk.BARRIER_ARRIVE:
                self.barrier_mgr.on_arrive(msg)
            elif msg.kind == mk.BARRIER_TREE_ARRIVE:
                self.tree_barrier.on_arrive(msg)
            elif msg.kind == mk.JOIN_DONE:
                self.join_store.put(msg)
            elif msg.kind == mk.GC_DONE:
                self.gc_done_store.put(msg)
            elif msg.kind == mk.LOCK_REQ:
                self.lock_mgr.on_request(msg)
            else:
                if msg.req_id is not None:
                    if msg.req_id in self._inflight_reqs:
                        continue  # duplicate of a request already in service
                    self._inflight_reqs.add(msg.req_id)
                kind = msg.kind
                if self.pid != names_pid:
                    names_pid = self.pid
                    names = {}
                name = names.get(kind)
                if name is None:
                    name = names[kind] = f"{self.name}.h.{kind}"
                handler = self.sim.process(
                    self._dispatch(msg),
                    name=name,
                    daemon=True,
                )
                # Reap finished handlers lazily: only when at least one has
                # completed since the last prune (previously the list was
                # rebuilt on every dispatched message — O(handlers) per
                # message on the server hot path).
                if self._handlers_dead:
                    self._handlers = [h for h in self._handlers if h.alive]
                    self._handlers_dead = 0
                self._handlers.append(handler)

    def _dispatch(self, msg: Message) -> Generator:
        try:
            yield from self._handle_request(msg)
        finally:
            self._handlers_dead += 1
            if msg.req_id is not None:
                self._inflight_reqs.discard(msg.req_id)

    def _handle_request(self, msg: Message) -> Generator:
        if msg.kind == mk.PAGE_REQ:
            yield from self._serve_page(msg)
        elif msg.kind == mk.PAGE_BATCH_REQ:
            yield from self._serve_page_batch(msg)
        elif msg.kind == mk.DIFF_REQ:
            yield from self._serve_diff(msg)
        elif msg.kind == mk.LOCK_FORWARD:
            yield from self._on_lock_forward(msg)
        elif msg.kind == mk.CKPT_PAGE_REQ:
            yield from self._serve_page(msg, reply_kind=mk.CKPT_PAGE_REPLY)
        elif msg.kind == mk.CONNECT:
            # A joining process dialing in (§4.1): acknowledge.
            yield from self.node.service(50.0e-6)
            self.node.nic.send(msg.reply(mk.CONNECT_ACK, size_bytes=4))
        elif msg.kind == mk.HEARTBEAT:
            # Failure-detector probe from the master: ack goes through the
            # handler CPU, so a node buried in protocol work acks late —
            # that is what the detector's timeout margin is tuned against.
            yield from self.node.service(10.0e-6)
            try:
                self.node.nic.send(msg.reply(mk.HEARTBEAT_ACK, size_bytes=4))
            except NetworkError:
                pass  # the prober's NIC went dark; nothing to tell it
        elif msg.kind == mk.PAGE_MAP:
            # The page-location map shipped to a joiner at absorption.
            payload = msg.payload
            targets = payload.get("targets") if isinstance(payload, dict) else None
            if targets is None:
                self.owners = dict(payload["owners"])
                self.sim.tracer.emit(
                    "adapt", "page_map", f"{self.name} {len(self.owners)} pages"
                )
            else:
                # Tree-relayed map (PROTOCOL.md §11): install it if we are
                # one of the addressed joiners, then forward one copy to
                # each tree child whose subtree still contains targets.
                if self.pid in targets:
                    self.owners = dict(payload["owners"])
                    self.sim.tracer.emit(
                        "adapt", "page_map",
                        f"{self.name} {len(self.owners)} pages",
                    )
                from .treebarrier import subtree_pids, tree_children

                pids = self.team.pids
                pos = pids.index(self.pid)
                radix = self.cfg.perf.barrier_radix
                size = (
                    len(payload["owners"])
                    * self.cfg.dsm.page_descriptor_bytes
                )
                obs = self.sim.obs
                legs = []
                for cpid in tree_children(pids, pos, radix):
                    sub = set(subtree_pids(pids, pids.index(cpid), radix))
                    hit = [t for t in targets if t in sub]
                    if not hit:
                        continue
                    legs.append((
                        mk.PAGE_MAP,
                        cpid,
                        {"owners": payload["owners"], "targets": hit},
                        size,
                    ))
                self.send_fanout(legs)
                if obs.enabled:
                    for _ in legs:
                        obs.count("adapt.page_map_messages")
                        obs.count("adapt.page_map_bytes", size)
        elif msg.kind == mk.OWNER_UPDATE:
            # The master took over a leaver's pages (§4.2).
            payload = msg.payload
            for page in payload["pages"]:
                self.owners[page] = TeamView.MASTER_PID
                if page in self.table:
                    self.table.entry(page).owner = TeamView.MASTER_PID
            targets = payload.get("targets") if isinstance(payload, dict) else None
            if targets:
                # Tree-relayed drain broadcast (PROTOCOL.md §13): forward
                # one copy to each of our children in the heap layout over
                # ``[master] + targets``.  The layout comes from the
                # payload, so it never includes (or routes through) the
                # leaver; every relay node is itself a target and has
                # already installed the update above.
                from .treebarrier import tree_children

                relay = [TeamView.MASTER_PID] + list(targets)
                pos = relay.index(self.pid)
                size = len(payload["pages"]) * self.cfg.dsm.page_descriptor_bytes
                # The drain's rebuild may renumber the team while a hop is
                # in flight; pids that no longer exist are dropped here —
                # the same best-effort contract flat mode gets from the
                # server loop's dst_pid mismatch check.  (A reused pid
                # still receives the update, which is harmless: "the
                # master owns these pages" is globally true post-drain.)
                alive = set(self.team.pids)
                self.send_fanout([
                    (mk.OWNER_UPDATE, cpid, payload, max(size, 8))
                    for cpid in tree_children(relay, pos, self.cfg.perf.barrier_radix)
                    if cpid in alive
                ])
        else:
            raise ProtocolError(f"{self.name}: unexpected request {msg!r}")

    def _serve_page(self, msg: Message, reply_kind: str = mk.PAGE_REPLY) -> Generator:
        page = msg.payload["page"]
        # Lazily map: the home/owner of a page holds a valid (zero-filled)
        # copy even before ever touching it.
        pte = self._pte(page)
        if not pte.valid:
            raise ProtocolError(
                f"{self.name}: asked for page {page} but holds no valid copy"
            )
        yield from self.node.service(self.cfg.network.page_service_server)
        data = None
        if self.materialized:
            data = self.store.page_view(page).copy()
        payload = {
            "page": page,
            # Frozen snapshot: retransmissions of this reply must carry the
            # clock value at send time, and COW mutators guarantee it.
            "applied": pte.applied.snapshot(),
            "data": data,
        }
        size = self.cfg.dsm.page_size + self.vc_wire_bytes
        self.node.nic.send(msg.reply(reply_kind, size_bytes=size, payload=payload))

    def _serve_page_batch(self, msg: Message) -> Generator:
        """Serve several full pages in one reply (``PerfParams.bulk_fetch``).

        The reply carries exactly the payload bytes of the per-page replies
        it replaces (n × (page + applied clock)); only the per-message
        header and the extra round trips are saved.
        """
        pages = msg.payload["pages"]
        applied = []
        data = []
        for page in pages:
            pte = self._pte(page)
            if not pte.valid:
                raise ProtocolError(
                    f"{self.name}: asked for page {page} but holds no valid copy"
                )
            applied.append(pte.applied.snapshot())
            data.append(self.store.page_view(page).copy() if self.materialized else None)
        n = len(pages)
        yield from self.node.service(n * self.cfg.network.page_service_server)
        size = n * (self.cfg.dsm.page_size + self.vc_wire_bytes)
        self.node.nic.send(
            msg.reply(
                mk.PAGE_BATCH_REPLY,
                size_bytes=size,
                payload={
                    "pages": list(pages),
                    "applied": applied,
                    "data": data,
                    "n_pages": n,
                },
            )
        )

    def _serve_diff(self, msg: Message) -> Generator:
        page = msg.payload["page"]
        from_seq = msg.payload["from_seq"]
        to_seq = msg.payload["to_seq"]
        self._encode_lazy_diffs(page, from_seq, to_seq)
        diffs = self.log.diffs_for(page, from_seq, to_seq)
        dirty = 0
        size = 4
        for d in diffs:
            dirty += d.dirty_bytes
            size += d.wire_size
        cost = self.cfg.network.diff_fixed + dirty * self.cfg.network.diff_per_byte
        yield from self.node.service(cost)
        self.node.nic.send(
            msg.reply(
                mk.DIFF_REPLY,
                size_bytes=size,
                payload={"diffs": diffs, "n_diffs": len(diffs)},
            )
        )

    def _encode_lazy_diffs(self, page: int, from_seq: int, to_seq: int) -> None:
        """Encode diffs for intervals that skipped eager creation.

        Happens only for pages demoted from single-writer after their
        interval closed.  In materialized mode the current page bytes stand
        in for the (long gone) interval snapshot; the declared ranges are
        exact, and later intervals' diffs overwrite in apply order, so the
        reader converges to the same bytes.
        """
        created = 0
        for rec in self.log.records_for(page, from_seq, to_seq):
            if page in rec.diffs:
                continue
            diff = make_diff(
                proc=self.pid,
                seq=rec.seq,
                page=page,
                vc=rec.vc,
                declared_ranges=rec.write_ranges[page],
                current=self.store.page_view(page) if self.materialized else None,
                vc_is_snapshot=True,
            )
            if diff is not None:
                rec.diffs[page] = diff
                created += 1
        if created:
            self.stats.diffs_created += created
            obs = self.sim.obs
            if obs.enabled:
                obs.count("dsm.diff.created", created)

    # ------------------------------------------------------------------
    # page ownership and notices
    # ------------------------------------------------------------------
    def owner_of(self, page: int) -> int:
        """Current owner pid of ``page`` as known to this process."""
        own = self.owners.get(page)
        if own is not None:
            return own
        return self.space.segment_of_page(page).home

    def _pte(self, page: int) -> PageTableEntry:
        """Get or lazily map the entry for ``page``."""
        pte = self.table.get(page)
        if pte is not None:
            return pte
        seg = self.space.segment_of_page(page)
        owner = self.owner_of(page)
        return self.table.map_page(
            page,
            protocol=seg.protocol,
            owner=owner,
            valid=(owner == self.pid),
            width=self.vc.width,
        )

    def apply_notice(self, notice: WriteNotice) -> None:
        """Record a remote write notice (invalidate the page).

        This is the single hottest function of the engine (the master
        re-broadcasts every slave's notices at each barrier), hence the
        local bindings and inlined covered-by checks.
        """
        proc = notice.proc
        seq = notice.seq
        page = notice.page
        if not self._index_notice(notice):
            return  # duplicate delivery (e.g. a lock grant overlapping a barrier)
        if proc == self.pid:
            return
        pte = self.table.get(page)
        if pte is None:
            pte = self._pte(page)
        if pte.protocol is Protocol.SINGLE_WRITER:
            # Another process wrote a single-writer page: possibly demote
            # to the multiple-writer (diff) protocol — as TreadMarks does
            # when it detects write sharing.
            self._apply_notice_single_writer(notice, pte, proc, seq, page)
        else:
            pte.add_notice(notice)

    def apply_notices(self, notices: Iterable[WriteNotice], sender_vc: VectorClock) -> None:
        """Apply a batch of notices and merge the sender's clock.

        The fused loop below is :meth:`apply_notice` inlined for the
        multiple-writer common case — synchronization batches carry
        hundreds of notices (the master re-broadcasts every slave's
        notices at each barrier), making this the engine's hottest loop.
        Behaviour is identical; the inline arm is
        ``PageTableEntry.add_notice`` minus the covered-check reload (the
        bucket dedupe already guarantees a (proc, seq, page) triple is
        applied at most once).

        Dedupe and indexing are one operation: each writer's bucket is
        sorted by the packed ``(seq << _PAGE_BITS) | page`` key, batches
        arrive per-writer in that order, so freshness is a single int
        compare against the bucket tail (bisect on the rare out-of-order
        delivery).
        """
        if type(notices) is not list:
            notices = list(notices)
        seen_by_proc = self._seen_by_proc
        table_entries = self.table._entries
        my_pid = self.pid
        mw = Protocol.MULTIPLE_WRITER
        sw = Protocol.SINGLE_WRITER
        mode_none = AccessMode.NONE
        current_writes = self.current_writes
        owners = self.owners
        n_total = len(notices)
        i = 0
        while i < n_total:
            # One per-writer run of the batch (senders emit bucket slices,
            # so runs are long: every notice of one writer in one go).
            proc = notices[i].proc
            j = i + 1
            while j < n_total and notices[j].proc == proc:
                j += 1
            run = notices[i:j]
            i = j
            run_keys = [n.key for n in run]
            pair = seen_by_proc.get(proc)
            if pair is None:
                pair = seen_by_proc[proc] = ([], [])
            keys, bucket = pair
            prev_key = keys[-1] if keys else -1
            ordered = run_keys[0] > prev_key
            if ordered:
                for key in run_keys:
                    if key <= prev_key:
                        ordered = False
                        break
                    prev_key = key
            if ordered:
                # Strictly ascending past the bucket tail (the normal
                # delivery): index the whole run with two C-level extends
                # and apply every notice — nothing can be a duplicate.
                keys.extend(run_keys)
                bucket.extend(run)
                fresh = run
            else:
                # Out-of-order or duplicate delivery (lock grants can
                # overlap barrier broadcasts): per-notice bisect dedupe.
                fresh = []
                last_key = keys[-1] if keys else -1
                for n, key in zip(run, run_keys):
                    if key > last_key:
                        keys.append(key)
                        bucket.append(n)
                        last_key = key
                    else:
                        k = bisect_left(keys, key)
                        if k < len(keys) and keys[k] == key:
                            continue
                        keys.insert(k, key)
                        bucket.insert(k, n)
                    fresh.append(n)
            if proc == my_pid:
                continue
            for n in fresh:
                seq = n.seq
                page = n.page
                pte = table_entries.get(page)
                if pte is None:
                    pte = self._pte(page)
                if pte.protocol is mw:
                    # inline pte.add_notice for the multiple-writer case
                    if pte.applied.entries[proc] >= seq:
                        continue
                    by_writer = pte.pending_by_writer
                    prev = by_writer.get(proc)
                    if prev is None or seq > prev.seq:
                        by_writer[proc] = n
                    pte.mode = mode_none
                else:
                    # inline _apply_notice_single_writer: the demote check
                    # plus add_notice, minus the repeated covered reload —
                    # page-aligned kernels (Gauss/FFT/NBF) funnel every
                    # notice of every barrier broadcast through this arm.
                    applied_entries = pte.applied.entries
                    if applied_entries[proc] < seq:
                        own_seq = applied_entries[my_pid]
                        if (
                            own_seq > 0 and n.vc.entries[my_pid] < own_seq
                        ) or page in current_writes:
                            pte.protocol = mw
                            self.sim.tracer.emit(
                                "dsm", "demote",
                                f"{self.name} pg{page} -> multiple-writer",
                            )
                        by_writer = pte.pending_by_writer
                        prev = by_writer.get(proc)
                        if prev is None or seq > prev.seq:
                            by_writer[proc] = n
                        pte.mode = mode_none
                    if pte.protocol is sw:
                        # The latest writer holds the complete page.
                        pte.owner = proc
                        owners[page] = proc
        self.vc.merge(sender_vc)

    def _apply_notice_single_writer(
        self, notice: WriteNotice, pte: PageTableEntry, proc: int, seq: int, page: int
    ) -> None:
        """Single-writer arm of :meth:`apply_notice` (shared with the
        batch loop; the caller has already deduplicated and indexed)."""
        applied = pte.applied
        if applied.entries[proc] < seq:  # not covered by our copy
            own_seq = applied.entries[self.pid]
            concurrent = (
                own_seq > 0 and notice.vc.entries[self.pid] < own_seq
            ) or page in self.current_writes
            if concurrent:
                pte.protocol = Protocol.MULTIPLE_WRITER
                self.sim.tracer.emit(
                    "dsm", "demote", f"{self.name} pg{page} -> multiple-writer"
                )
        pte.add_notice(notice)
        if pte.protocol is Protocol.SINGLE_WRITER:
            # The latest writer holds the complete page.
            pte.owner = proc
            self.owners[page] = proc

    def _index_notice(self, notice: WriteNotice) -> bool:
        """Insert into the per-writer bucket; False if already known."""
        key = notice.key
        pair = self._seen_by_proc.get(notice.proc)
        if pair is None:
            self._seen_by_proc[notice.proc] = ([key], [notice])
            return True
        keys, bucket = pair
        if key > keys[-1]:
            keys.append(key)
            bucket.append(notice)
            return True
        i = bisect_left(keys, key)
        if i < len(keys) and keys[i] == key:
            return False
        keys.insert(i, key)
        bucket.insert(i, notice)
        return True

    def _known_notices(self) -> Iterable[WriteNotice]:
        """Every notice known this epoch (any writer, bucket order)."""
        for _, bucket in self._seen_by_proc.values():
            yield from bucket

    def notices_unknown_to(self, other_vc: VectorClock) -> List[WriteNotice]:
        """All epoch notices this process knows that ``other_vc`` does not cover."""
        out: List[WriteNotice] = []
        entries = other_vc.entries
        width = other_vc.width
        for proc in sorted(self._seen_by_proc):
            keys, bucket = self._seen_by_proc[proc]
            floor_key = (entries[proc] + 1) << _PAGE_BITS if proc < width else 1 << _PAGE_BITS
            if keys[-1] < floor_key:
                continue  # whole bucket already covered (last seq <= floor)
            # first entry with seq > floor (page bits zero sort lowest)
            out.extend(bucket[bisect_left(keys, floor_key) :])
        return out

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def access(
        self,
        seg: SharedSegment,
        reads: Iterable[Range] = (),
        writes: Iterable[Range] = (),
    ) -> Generator:
        """Declare that the program now reads/writes these segment byte ranges.

        Pages not valid locally fault and fetch; written pages get twins
        and enter the open interval's write set.  This is the page-level
        equivalent of the SEGV handler firing as compiled code touches
        shared arrays.
        """
        reads = tuple(reads)
        writes = tuple(writes)
        page_size = self.cfg.dsm.page_size
        # The page set and per-page write ranges are a pure function of the
        # segment geometry and the requested ranges, so iterative programs
        # (same ranges every sweep) hit the memo instead of recomputing.
        if self._plan_cache_enabled:
            plan = self.space.plan_cache.lookup(seg, reads, writes, page_size)
        else:
            plan = build_plan(seg, reads, writes, page_size)
        if self._bulk_fetch:
            yield from self._bulk_fetch_pages(plan)
        current_writes = self.current_writes
        table_get = self.table._entries.get
        epoch = self.epoch
        mode_none = AccessMode.NONE
        mode_write = AccessMode.WRITE
        stall = self.stall_hook
        for page, is_write, wr in plan.steps:
            if stall is not None:
                yield from stall()
            # Fast path: a valid, up-to-date copy needs no fault — skip
            # the _ensure_access generator machinery entirely.
            pte = table_get(page)
            if pte is None or not pte.valid or pte.pending_by_writer:
                yield from self._ensure_access(page, write=is_write)
                if is_write:
                    prev = current_writes.get(page)
                    if prev:
                        current_writes[page] = merge(prev, wr)
                    else:
                        current_writes[page] = list(wr)
                continue
            pte.last_access_epoch = epoch
            if is_write:
                prev = current_writes.get(page)
                if prev:
                    # Repeat write in the same interval: the twin/owner
                    # work of _prepare_write already happened (mode WRITE
                    # implies it ran and nothing reset it since).
                    if pte.mode is not mode_write:
                        self._prepare_write(pte)
                    if prev != wr:
                        current_writes[page] = merge(prev, wr)
                else:
                    # First write of the interval to this page: the plan's
                    # normalized ranges are exactly merge([], ranges).
                    self._prepare_write(pte)
                    current_writes[page] = list(wr)
            elif pte.mode is mode_none:
                pte.mode = AccessMode.READ

    def access_batch(self, specs) -> Generator:
        """Access several segments in one region step.

        Under LRC this is simply the accesses in sequence; the SC baseline
        overrides it to make the combined write set atomic.
        """
        for seg, reads, writes in specs:
            yield from self.access(seg, reads, writes)

    def _bulk_fetch_pages(self, plan) -> Generator:
        """Coalesce the plan's invalid-page fetches by owner (opt-in).

        With ``PerfParams.bulk_fetch`` on, a fault burst that would issue N
        per-page PAGE_REQ/PAGE_REPLY exchanges to the same owner issues one
        PAGE_BATCH_REQ instead: identical payload bytes on the wire, but
        N-1 fewer message headers and a single round trip of latency.
        Pages needing diffs (pending notices) still go through the normal
        per-page path afterwards.
        """
        by_owner: Dict[int, List[int]] = {}
        for page, _ in plan.pages:
            pte = self._pte(page)
            if pte.valid:
                continue
            owner = self.owner_of(page)
            if owner == self.pid:
                continue  # first touch at home: no network involved
            by_owner.setdefault(owner, []).append(page)
        for owner in sorted(by_owner):
            pages = by_owner[owner]
            if len(pages) < 2:
                continue  # a single page takes the standard PAGE_REQ path
            if self.stall_hook is not None:
                yield from self.stall_hook()
            t0 = self.sim.now
            reply = yield from self.request_reply(
                mk.PAGE_BATCH_REQ, owner, {"pages": pages}, size=8 * len(pages)
            )
            yield self.sim.timeout(
                len(pages) * self.cfg.network.page_service_client
            )
            payload = reply.payload
            tracer = self.sim.tracer
            for page, applied, data in zip(
                payload["pages"], payload["applied"], payload["data"]
            ):
                pte = self._pte(page)
                if self.materialized:
                    self.store.page_view(page)[:] = data
                pte.valid = True
                pte.applied.merge(applied)
                pte.prune_pending()
                self.stats.page_fetches += 1
                if tracer.enabled:
                    tracer.emit(
                        "dsm", "page_fetch", f"{self.name}<-P{owner} pg{page} (bulk)"
                    )
            self.stats.fault_wait_time += self.sim.now - t0
            obs = self.sim.obs
            if obs.enabled and obs.per_process:
                obs.span(
                    f"P{self.pid}",
                    "fault.wait",
                    t0,
                    self.sim.now,
                    category="dsm",
                    pages=len(pages),
                    bulk=True,
                )

    def _ensure_access(self, page: int, write: bool) -> Generator:
        """Fault in one page for read or write access."""
        pte = self._pte(page)
        pte.last_access_epoch = self.epoch
        needs_fetch = (not pte.valid) or bool(pte.pending_by_writer)
        if needs_fetch:
            t0 = self.sim.now
            self.stats.read_faults += 0 if write else 1
            self.stats.write_faults += 1 if write else 0
            if not pte.valid:
                yield from self._fetch_page(pte, self.owner_of(page))
            if pte.pending_by_writer:
                yield from self._fetch_pending(pte)
            self.stats.fault_wait_time += self.sim.now - t0
            obs = self.sim.obs
            if obs.enabled and obs.per_process:
                obs.span(
                    f"P{self.pid}",
                    "fault.wait",
                    t0,
                    self.sim.now,
                    category="dsm",
                    page=page,
                    write=write,
                )
        if write:
            self._prepare_write(pte)
        elif pte.mode is AccessMode.NONE:
            pte.mode = AccessMode.READ

    def _fetch_page(self, pte: PageTableEntry, from_pid: int) -> Generator:
        """Fetch a full page copy from ``from_pid``."""
        if from_pid == self.pid:
            # First touch at the home/owner: the zero-filled copy is valid.
            pte.valid = True
            return
        reply = yield from self.request_reply(
            mk.PAGE_REQ, from_pid, {"page": pte.page}, size=8
        )
        yield self.sim.timeout(self.cfg.network.page_service_client)
        if self.materialized:
            self.store.page_view(pte.page)[:] = reply.payload["data"]
        pte.valid = True
        pte.applied.merge(reply.payload["applied"])
        pte.prune_pending()
        self.stats.page_fetches += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit("dsm", "page_fetch", f"{self.name}<-P{from_pid} pg{pte.page}")

    def _fetch_pending(self, pte: PageTableEntry) -> Generator:
        """Bring a stale copy up to date (diffs, or full page re-fetch)."""
        if pte.protocol is Protocol.SINGLE_WRITER:
            # One notice per writer suffices here: a writer's later interval
            # clock dominates its earlier ones, so the per-writer latest
            # notice attains the maximum.
            latest = max(
                pte.pending_by_writer.values(),
                key=lambda n: (*n.vc.sort_key(), -n.proc),
            )
            yield from self._fetch_page_refresh(pte, latest.proc)
            pte.prune_pending()
            if not pte.pending_by_writer:
                return
            # Concurrent writers after all: demote and fall through to the
            # diff path for the remaining intervals.
            pte.protocol = Protocol.MULTIPLE_WRITER
            self.sim.tracer.emit(
                "dsm", "demote", f"{self.name} pg{pte.page} -> multiple-writer"
            )
        by_writer = pte.pending_by_writer
        t_fetch = self.sim.now
        collected: List[Diff] = []
        for writer in sorted(by_writer):
            if writer == self.pid:
                raise ProtocolError(f"{self.name}: pending notice from self")
            from_seq = pte.applied.entries[writer]
            to_seq = by_writer[writer].seq
            reply = yield from self.request_reply(
                mk.DIFF_REQ,
                writer,
                {"page": pte.page, "from_seq": from_seq, "to_seq": to_seq},
                size=16,
            )
            collected.extend(reply.payload["diffs"])
            self.stats.diff_requests += 1
        buffer = self.store.page_view(pte.page) if self.materialized else None
        ordered = apply_diffs_in_order(collected, buffer, squash=self._diff_squash)
        applied = pte.applied
        dirty = 0
        for diff in ordered:
            # COW-aware: ``applied`` may be shared with an in-flight
            # PAGE_REPLY snapshot, so never poke its entries directly.
            applied.advance(diff.proc, diff.seq)
            dirty += diff.dirty_bytes
        # Notices may name intervals that produced no diff for this page
        # (e.g. a write of identical bytes); cover them explicitly.
        for writer, notice in by_writer.items():
            applied.advance(writer, notice.seq)
        self.stats.diffs_fetched += len(collected)
        obs = self.sim.obs
        if obs.enabled:
            obs.count("dsm.diff.fetched", len(collected))
            obs.count("dsm.diff.bytes", dirty)
            if buffer is not None and len(ordered) > 1 and self._diff_squash:
                obs.count("dsm.diff.squashes", 1)
            if obs.per_process:
                obs.span(
                    f"P{self.pid}",
                    "dsm.diff.fetch",
                    t_fetch,
                    self.sim.now,
                    category="dsm",
                    page=pte.page,
                    n_diffs=len(collected),
                )
        pte.clear_pending()

    def _fetch_page_refresh(self, pte: PageTableEntry, from_pid: int) -> Generator:
        """Re-fetch a full page (single-writer protocol update path)."""
        reply = yield from self.request_reply(
            mk.PAGE_REQ, from_pid, {"page": pte.page}, size=8
        )
        yield self.sim.timeout(self.cfg.network.page_service_client)
        if self.materialized:
            self.store.page_view(pte.page)[:] = reply.payload["data"]
        pte.valid = True
        pte.applied.merge(reply.payload["applied"])
        pte.owner = from_pid
        self.owners[pte.page] = from_pid
        self.stats.page_fetches += 1

    def _prepare_write(self, pte: PageTableEntry) -> None:
        """First write to a page in the open interval: twin it."""
        if pte.page not in self.current_writes:
            if self.materialized and pte.protocol is Protocol.MULTIPLE_WRITER:
                pte.twin = self.store.page_view(pte.page).copy()
            self.stats.twins_created += 1
            self.node.busy_time += self.cfg.dsm.twin_time
            self.current_writes[pte.page] = []
        if pte.protocol is Protocol.SINGLE_WRITER and pte.owner != self.pid:
            pte.owner = self.pid
            self.owners[pte.page] = self.pid
        pte.valid = True
        pte.mode = AccessMode.WRITE

    # ------------------------------------------------------------------
    # intervals & releases
    # ------------------------------------------------------------------
    def close_interval(self) -> List[WriteNotice]:
        """Close the open interval (at a release); returns its notices."""
        if not self.current_writes:
            return []
        self.vc.tick(self.pid)
        pid = self.pid
        seq = self.vc.entries[pid]
        # One frozen snapshot per interval: its notices AND its diffs all
        # share this clock object (make_diff with vc_is_snapshot=True).
        rec = IntervalRecord(proc=pid, seq=seq, vc=self.vc.snapshot())
        rec_vc = rec.vc
        table_entries = self.table._entries
        write_ranges = rec.write_ranges
        diffs = rec.diffs
        mode_read = AccessMode.READ
        mw = Protocol.MULTIPLE_WRITER
        materialized = self.materialized
        stats = self.stats
        for page, ranges in sorted(self.current_writes.items()):
            pte = table_entries[page]
            write_ranges[page] = ranges
            # Multiple-writer pages encode their diff now, from the twin.
            # Single-writer pages serve full-page refreshes instead; should
            # one be demoted later (write sharing after an adaptation), its
            # diff is encoded lazily at the first DIFF_REQ from the
            # recorded ranges (see _serve_diff).
            if pte.protocol is mw:
                if materialized:
                    diff = make_diff(
                        proc=pid,
                        seq=seq,
                        page=page,
                        vc=rec_vc,
                        declared_ranges=ranges,
                        twin=pte.twin,
                        current=self.store.page_view(page),
                        declared_normalized=True,
                        vc_is_snapshot=True,
                    )
                else:
                    # Traced mode: the declared (already-normalized)
                    # ranges ARE the diff — make_diff would only wrap
                    # them, so skip its dispatch on this per-page path.
                    diff = (
                        Diff(proc=pid, seq=seq, page=page, vc=rec_vc, ranges=ranges)
                        if ranges
                        else None
                    )
                if diff is not None:
                    diffs[page] = diff
                    stats.diffs_created += 1
            pte.twin = None
            pte.mode = mode_read
            # seq is a fresh tick, so this is a pure advance; COW-aware
            # because ``applied`` may be shared with a reply snapshot.
            pte.applied.advance(pid, seq)
        self.log.add(rec)
        if diffs:
            obs = self.sim.obs
            if obs.enabled:
                obs.count("dsm.diff.created", len(diffs))
        self.current_writes = {}
        self.stats.intervals_closed += 1
        self._intervals_this_epoch += 1
        if self._prune_enabled:
            self._prune_countdown -= 1
            if self._prune_countdown <= 0:
                self._prune_countdown = self._prune_period
                if len(self.log) >= self._prune_period:
                    self._prune_interval_log()
        notices = rec.notices()
        # Index our own notices directly: ``seq`` is a fresh maximum for
        # our bucket and notices() is page-ascending, so plain appends
        # keep the packed-key order _index_notice would establish.
        pair = self._seen_by_proc.get(pid)
        if pair is None:
            pair = self._seen_by_proc[pid] = ([], [])
        keys, bucket = pair
        for n in notices:
            keys.append(n.key)
            bucket.append(n)
        return notices

    def sync_notices(self) -> List[WriteNotice]:
        """Close the open interval and return all own notices the master
        has not yet been told about (lock releases create intervals the
        master never sees otherwise)."""
        self.close_interval()
        last_sent = self._sent_to_master_seq
        my_seq = self.vc.entries[self.pid]
        keys, bucket = self._seen_by_proc.get(self.pid, ((), ()))
        start = bisect_left(keys, (last_sent + 1) << _PAGE_BITS)
        below = (my_seq + 1) << _PAGE_BITS  # keys with seq <= my_seq
        out = [n for k, n in zip(keys[start:], bucket[start:]) if k < below]
        self._sent_to_master_seq = my_seq
        return out

    @property
    def wants_gc(self) -> bool:
        """True when enough intervals closed this epoch (§4.1).

        Counts *closes*, not live log records, so incremental pruning
        (which shrinks the log) never shifts when GCs happen — the
        simulated schedule is identical with pruning on or off.
        """
        return self._intervals_this_epoch >= self.cfg.dsm.gc_interval_limit

    def _prune_interval_log(self) -> int:
        """Drop log records no peer can ever request diffs from again.

        A peer asks this writer for diffs of page ``p`` in the window
        ``(applied[p][us], seq]`` (see :meth:`_fetch_pending`), and its
        per-page applied clock only advances within an epoch.  So the
        *cover frontier* — the minimum over all peers of their applied
        clock for us on ``p``, with 0 for peers that never mapped ``p``
        (a later notice lazily maps it with a zero applied clock) — is a
        safe lower bound: records whose every written page is covered at
        or beyond their seq are unreachable and can be dropped.

        Skipped entirely unless every peer is in our GC epoch (applied
        clocks reset across GC/adaptation, so cross-epoch reads would be
        meaningless).  Reads peer state through ``peers_hook`` — an
        oracle read of host memory, no simulated messages or time, which
        is why pruning is bitwise invisible to the simulation.
        """
        peers_hook = self.peers_hook
        if peers_hook is None:
            return 0
        pid = self.pid
        epoch = self.epoch
        peers = [q for q in peers_hook().values() if q.pid != pid]
        if not peers:
            return 0
        for q in peers:
            if q.epoch != epoch:
                return 0
        cover: Dict[int, int] = {}
        for page in self.log.pages():
            frontier: Optional[int] = None
            for q in peers:
                pte = q.table.get(page)
                if pte is None:
                    frontier = 0
                    break
                applied = pte.applied.entries
                seq = applied[pid] if pid < len(applied) else 0
                if seq == 0:
                    frontier = 0
                    break
                if frontier is None or seq < frontier:
                    frontier = seq
            if frontier:
                cover[page] = frontier
        if not cover:
            return 0
        pruned = self.log.prune_covered(cover)
        if pruned:
            self.stats.intervals_pruned += pruned
        return pruned

    # ------------------------------------------------------------------
    # barrier (client side; the manager lives on the master)
    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        """TreadMarks barrier with write-notice exchange."""
        t0 = self.sim.now
        if self.tree_barrier is not None:
            self.stats.barriers += 1
            yield from self.tree_barrier.barrier()
            self.stats.barrier_wait_time += self.sim.now - t0
            obs = self.sim.obs
            if obs.enabled and obs.per_process:
                obs.span(
                    f"P{self.pid}", "barrier.wait", t0, self.sim.now,
                    category="dsm",
                )
            return
        notices = self.sync_notices()
        self.stats.barriers += 1
        if self.is_master:
            done = self.barrier_mgr.arrive_local(self, notices, self.wants_gc)
            yield done
        else:
            size = self.notice_wire_bytes(len(notices)) + self.vc_wire_bytes + 8
            self.send(
                mk.BARRIER_ARRIVE,
                TeamView.MASTER_PID,
                {
                    "pid": self.pid,
                    "notices": notices,
                    "vc": self.vc.snapshot(),
                    "want_gc": self.wants_gc,
                },
                size=size,
            )
            msg = yield self.main_inbox.recv(match=lambda m: m.kind == mk.BARRIER_RELEASE)
            self.apply_notices(msg.payload["notices"], msg.payload["vc"])
            if msg.payload["gc"]:
                yield from self.gc_participate()
        self.stats.barrier_wait_time += self.sim.now - t0
        obs = self.sim.obs
        if obs.enabled and obs.per_process:
            obs.span(f"P{self.pid}", "barrier.wait", t0, self.sim.now, category="dsm")

    # ------------------------------------------------------------------
    # garbage collection participation
    # ------------------------------------------------------------------
    def gc_flush(self) -> Generator:
        """Make our copies of pages we will own complete (flush phase)."""
        from .gc import gc_new_owners

        new_owners = gc_new_owners(self._known_notices())
        for page, owner in sorted(new_owners.items()):
            if owner != self.pid:
                continue
            pte = self._pte(page)
            if not pte.valid:
                raise ProtocolError(
                    f"{self.name}: GC made us owner of page {page} we never wrote"
                )
            if pte.pending_by_writer:
                yield from self._fetch_pending(pte)
        self._gc_pending_owners = new_owners

    def gc_reset(self) -> None:
        """Drop all consistency bookkeeping and start a new epoch."""
        new_owners = getattr(self, "_gc_pending_owners", {})
        self.owners.update(new_owners)
        for pte in self.table:
            pte.owner = self.owners.get(pte.page, pte.owner)
            if not pte.readable:
                pte.valid = False
            pte.clear_pending()
            pte.applied = VectorClock.zeros(self.team.nprocs)
            pte.twin = None
            pte.mode = AccessMode.NONE
            # A fresh epoch restores the segment's protocol hint (pages
            # demoted by transient write sharing become single-writer again).
            pte.protocol = self.space.segment_of_page(pte.page).protocol
        if self.current_writes:
            raise ProtocolError(f"{self.name}: GC with an open write set")
        self.log.clear()
        self._seen_by_proc.clear()
        self.vc = VectorClock.zeros(self.team.nprocs)
        self.epoch += 1
        self._intervals_this_epoch = 0
        self._prune_countdown = self._prune_period
        self._sent_to_master_seq = 0
        self._lock_state.clear()
        if self.lock_mgr is not None:
            self.lock_mgr.reset()
        self._gc_pending_owners = {}
        if self.tree_barrier is not None:
            # Subtree knowledge floors are per-epoch (clocks reset).
            self.tree_barrier.reset()
        self.stats.gcs += 1
        self.sim.tracer.emit("dsm", "gc", f"{self.name} epoch={self.epoch}")

    def gc_participate(self, ack: bool = False) -> Generator:
        """Slave-side GC phase: flush, report done, await go, reset.

        With ``ack`` (fork-point GC), a second GC_DONE confirms the reset —
        the master must not rebuild the team while a slave still holds the
        old epoch's state.
        """
        yield from self.gc_flush()
        self.send(
            mk.GC_DONE, TeamView.MASTER_PID, {"pid": self.pid, "phase": "flush"}, size=8
        )
        yield self.main_inbox.recv(match=lambda m: m.kind == mk.GC_GO)
        self.gc_reset()
        if ack:
            self.send(
                mk.GC_DONE,
                TeamView.MASTER_PID,
                {"pid": self.pid, "phase": "reset"},
                size=8,
            )

    # ------------------------------------------------------------------
    # locks (distributed queue, master as manager)
    # ------------------------------------------------------------------
    def _lock(self, lock_id: int) -> Dict[str, Any]:
        state = self._lock_state.get(lock_id)
        if state is None:
            # The master conceptually holds (and has released) every lock at
            # epoch start — it carries one release "token".  Tokens count
            # completed tenures whose successor forward has not arrived yet:
            # a forward can race past our release *and* our re-request, so
            # matching forwards to releases needs explicit accounting.
            master = self.is_master
            state = {
                "status": "released" if master else "idle",
                "pending": None,
                "tokens": 1 if master else 0,
            }
            self._lock_state[lock_id] = state
        return state

    def lock_acquire(self, lock_id: int) -> Generator:
        """Acquire a TreadMarks lock (an LRC acquire)."""
        t0 = self.sim.now
        state = self._lock(lock_id)
        if state["status"] in ("waiting", "held"):
            raise DsmError(f"{self.name}: lock {lock_id} already requested/held")
        state["status"] = "waiting"
        self.send(
            mk.LOCK_REQ,
            TeamView.MASTER_PID,
            {"lock": lock_id, "pid": self.pid, "vc": self.vc.snapshot()},
            size=8 + self.vc_wire_bytes,
        )
        msg = yield self.main_inbox.recv(
            match=lambda m: m.kind == mk.LOCK_GRANT and m.payload["lock"] == lock_id
        )
        self.apply_notices(msg.payload["notices"], msg.payload["vc"])
        state["status"] = "held"
        self.stats.locks_acquired += 1
        self.stats.lock_wait_time += self.sim.now - t0

    def lock_release(self, lock_id: int) -> None:
        """Release a lock (an LRC release: closes the interval)."""
        state = self._lock(lock_id)
        if state["status"] != "held":
            raise DsmError(f"{self.name}: releasing lock {lock_id} it does not hold")
        self.close_interval()
        state["status"] = "released"
        pending, state["pending"] = state["pending"], None
        if pending is not None:
            self._grant_lock(lock_id, pending["requester"], pending["vc"])
        else:
            # no successor known yet: bank the release for the forward that
            # is still on its way (or may never come this epoch)
            state["tokens"] += 1

    def _grant_lock(self, lock_id: int, requester: int, requester_vc: VectorClock) -> None:
        notices = self.notices_unknown_to(requester_vc)
        size = 8 + self.notice_wire_bytes(len(notices)) + self.vc_wire_bytes
        self.send(
            mk.LOCK_GRANT,
            requester,
            {"lock": lock_id, "notices": notices, "vc": self.vc.snapshot()},
            size=size,
        )

    def _on_lock_forward(self, msg: Message) -> Generator:
        """The manager forwarded a lock request to us (last in the chain)."""
        lock_id = msg.payload["lock"]
        requester = msg.payload["requester"]
        requester_vc = msg.payload["vc"]
        yield from self.node.service(self.cfg.network.lock_service)
        state = self._lock(lock_id)
        if state["tokens"] > 0:
            # a completed tenure is waiting for exactly this forward (this
            # also covers our own request chaining back to us, and the
            # master's epoch-start conceptual release)
            state["tokens"] -= 1
            self._grant_lock(lock_id, requester, requester_vc)
        elif state["status"] in ("waiting", "held"):
            if state["pending"] is not None:
                raise ProtocolError(f"{self.name}: two pending forwards for lock {lock_id}")
            state["pending"] = {"requester": requester, "vc": requester_vc}
        else:
            raise ProtocolError(
                f"{self.name}: forwarded lock {lock_id} with no tenure to match"
            )
        return
        yield  # pragma: no cover - generator form for the dispatch table

    # ------------------------------------------------------------------
    # compute & data access helpers
    # ------------------------------------------------------------------
    def compute(self, seconds: float) -> Generator:
        """Charge ``seconds`` of application CPU work on the current node."""
        self.stats.compute_time += seconds
        t0 = self.sim.now
        yield from self.node.compute(seconds)
        obs = self.sim.obs
        if obs.enabled and obs.per_process:
            obs.span(f"P{self.pid}", "compute", t0, self.sim.now, category="app")

    def array(self, seg: SharedSegment) -> np.ndarray:
        """Materialized view of a segment's local copy (shape/dtype applied)."""
        if not self.materialized:
            raise DsmError("array views are only available in materialized mode")
        return self.store.array_view(seg)

    # ------------------------------------------------------------------
    # migration support (urgent leaves)
    # ------------------------------------------------------------------
    def resident_image_bytes(self) -> int:
        """Heap+stack image size moved by libckpt (§5.3).

        The checkpoint image covers every *mapped* shared page (libckpt
        dumps the heap; DSM mappings are part of it whether currently valid
        or not) plus the runtime's own heap/stack overhead.  This matches
        the paper's per-application migration costs, which correspond to
        roughly the whole shared segment at 8.1 MB/s.
        """
        mapped_pages = len(self.table)
        return (
            mapped_pages * self.cfg.dsm.page_size
            + self.cfg.migration.image_overhead_bytes
        )

    def adapt_reset(self, new_pid: int, owner_remap: Dict[int, int]) -> None:
        """Re-identify this process after an adaptation (§4.1).

        Must follow a GC (all clocks zero, no pending notices).  ``new_pid``
        is the reassigned process id; ``owner_remap`` maps old owner pids to
        new ones for every page-owner reference we hold.
        """
        if self._seen_by_proc or self.current_writes or len(self.log):
            raise ProtocolError(f"{self.name}: adapt_reset without a preceding GC")
        # Team membership changed: conceptually a repartition, so drop all
        # memoized access plans (they are rebuilt lazily on first use).
        self.space.plan_cache.invalidate()
        self.pid = new_pid
        width = self.team.nprocs
        self.vc = VectorClock.zeros(width)
        self._sent_to_master_seq = 0
        self.owners = {
            page: owner_remap.get(owner, TeamView.MASTER_PID)
            for page, owner in self.owners.items()
        }
        for pte in self.table:
            pte.owner = owner_remap.get(pte.owner, TeamView.MASTER_PID)
            pte.applied = VectorClock.zeros(width)
        self.table.proc_name = self.name
        if self.tree_barrier is not None:
            # Pids were renumbered; the tree is rebuilt from the new team.
            self.tree_barrier.reset()

    def terminate(self) -> None:
        """Tear down after leaving the computation."""
        if self._server_proc is not None and self._server_proc.alive:
            self._server_proc.interrupt("process left")
        self.node.remove_process()

    def fail_stop(self) -> None:
        """Die with the node: server and in-flight handlers stop cold.

        The node's own crash already zeroed its resident-process count, so
        no node bookkeeping happens here.
        """
        for handler in self._handlers:
            handler.kill()
        self._handlers.clear()
        if self._server_proc is not None:
            self._server_proc.kill()

    def halt(self) -> None:
        """Stop serving (recovery teardown of a *surviving* process).

        Unlike :meth:`fail_stop` the node is healthy: the resident-process
        slot is handed back so recovery can place a fresh engine on it.
        """
        for handler in self._handlers:
            handler.kill()
        self._handlers.clear()
        if self._server_proc is not None:
            self._server_proc.kill()
        if not getattr(self.node, "crashed", False):
            self.node.remove_process()

    def move_to_node(self, new_node) -> None:
        """Transplant this process onto ``new_node`` (after image copy)."""
        self.node.remove_process()
        self.node = new_node
        new_node.add_process()
        self.start_server()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DsmProcess {self.name} on node {self.node.node_id}>"
