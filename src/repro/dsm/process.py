"""The per-node DSM protocol engine.

A :class:`DsmProcess` is one TreadMarks process: it owns a page table, a
vector clock, an interval log, and a server coroutine that services
protocol requests (page fetches, diff fetches, lock traffic) concurrently
with the main computation — the analogue of TreadMarks' SIGIO handlers.

The main computation drives the engine through:

* :meth:`access` — declare the byte ranges a code section reads/writes;
  faults (page fetches, diff fetches, twin creation) happen here;
* :meth:`compute` — charge CPU time on the current node;
* :meth:`barrier`, :meth:`lock_acquire`, :meth:`lock_release` — lazy
  release consistency synchronization;
* the fork/join driver in :mod:`repro.dsm.runtime`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..errors import DsmError, NetworkError, ProtocolError
from ..network import message as mk
from ..network.message import Message
from ..simcore import Channel, Simulator, Store
from .diffs import make_diff
from .intervals import Diff, IntervalLog, IntervalRecord, WriteNotice
from .memory import AddressSpace, LocalStore, SharedSegment
from .page import AccessMode, PageTable, PageTableEntry, Protocol
from .ranges import Range, clip, merge
from .statistics import DsmStats
from .team import TeamView
from .vectorclock import VectorClock

#: Message kinds routed to the main coroutine rather than a handler.
MAIN_KINDS = frozenset(
    {mk.FORK, mk.STOP, mk.BARRIER_RELEASE, mk.GC_GO, mk.GC_REQ, mk.LOCK_GRANT}
)


class DsmProcess:
    """One TreadMarks-style DSM process."""

    def __init__(
        self,
        sim: Simulator,
        cfg: SystemConfig,
        node,
        pid: int,
        team: TeamView,
        space: AddressSpace,
        materialized: bool = True,
    ):
        self.sim = sim
        self.cfg = cfg
        self.node = node
        self.pid = pid
        self.team = team
        self.space = space
        self.materialized = materialized
        self.store: Optional[LocalStore] = LocalStore(space) if materialized else None

        self.table = PageTable(proc_name=self.name)
        self.vc = VectorClock.zeros(team.nprocs)
        self.log = IntervalLog(pid)
        self.epoch = 0
        #: (proc, seq, page) -> WriteNotice; everything known this epoch.
        self.seen: Dict[Tuple[int, int, int], WriteNotice] = {}
        #: Per-writer index of the same notices, ordered by seq, so that
        #: "everything newer than vc[w]" is a bisect instead of a scan.
        self._seen_by_proc: Dict[int, List[Tuple[int, int, WriteNotice]]] = {}
        #: page -> dirty ranges of the *open* interval.
        self.current_writes: Dict[int, List[Range]] = {}
        #: page -> owner pid overrides (default: segment home).
        self.owners: Dict[int, int] = {}
        self.stats = DsmStats()
        #: Highest own interval seq already reported to the master.
        self._sent_to_master_seq = 0

        #: Control messages for the main coroutine (fork, release, grants...).
        self.main_inbox = Channel(sim, name=f"{self.name}.main")
        #: Master-side collectors.
        self.join_store = Store(sim, name=f"{self.name}.joins")
        self.gc_done_store = Store(sim, name=f"{self.name}.gcdone")
        self.barrier_mgr = None  # set for the master by the runtime
        self.lock_mgr = None  # set for the master by the runtime
        #: Per-process distributed lock state: lock id -> dict.
        self._lock_state: Dict[int, Dict[str, Any]] = {}
        #: Set by the runtime: a generator-returning callable that blocks
        #: while the system is frozen (urgent-leave migration, §4.2).  It
        #: is consulted between individual page faults so a long fault
        #: sequence cannot run through a freeze.
        self.stall_hook = None
        #: req_ids currently being served (duplicate retransmissions of a
        #: request we are still working on are suppressed).
        self._inflight_reqs: set = set()
        self._server_proc = None
        #: Live request-handler coroutines (killed on crash/halt).
        self._handlers: List = []
        #: Set by the runtime when failure detection is on: called as
        #: ``crash_hook(dst_node_id, err)`` when a request to a peer times
        #: out or the peer's NIC is dark — escalates the NetworkError into a
        #: suspected-crash report instead of failing the simulation.
        self.crash_hook = None
        node.add_process()

    # ------------------------------------------------------------------
    # identity & plumbing
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"P{self.pid}"

    @property
    def is_master(self) -> bool:
        return self.pid == TeamView.MASTER_PID

    @property
    def vc_wire_bytes(self) -> int:
        return self.vc.width * self.cfg.dsm.clock_entry_bytes

    def notice_wire_bytes(self, n_notices: int) -> int:
        return n_notices * self.cfg.dsm.write_notice_bytes

    def send(
        self,
        kind: str,
        dst_pid: int,
        payload: Any = None,
        size: int = 8,
        req_id: Optional[int] = None,
        is_reply: bool = False,
    ) -> Message:
        """Build and transmit a protocol message to another process."""
        msg = Message(
            kind=kind,
            src=self.node.node_id,
            dst=self.team.node_of(dst_pid),
            size_bytes=size,
            payload=payload,
            req_id=req_id,
            is_reply=is_reply,
            src_pid=self.pid,
            dst_pid=dst_pid,
        )
        try:
            self.node.nic.send(msg)
        except NetworkError as err:
            # Fail-stop world: a dark peer means the message is simply
            # lost.  With a crash hook installed the failure is escalated
            # to the runtime (suspected crash); without one it propagates,
            # as the base system has no notion of node failure.
            if self.crash_hook is None:
                raise
            self.crash_hook(msg.dst, err)
        return msg

    def request(self, kind: str, dst_pid: int, payload: Any, size: int):
        """Waitable request/reply to another process's server."""
        msg = Message(
            kind=kind,
            src=self.node.node_id,
            dst=self.team.node_of(dst_pid),
            size_bytes=size,
            payload=payload,
            req_id=mk.next_req_id(),
            src_pid=self.pid,
            dst_pid=dst_pid,
        )
        return self.node.nic.request(msg)

    def request_reply(
        self, kind: str, dst_pid: int, payload: Any, size: int
    ) -> Generator:
        """Request/reply with crash escalation (``reply = yield from ...``).

        A :class:`~repro.errors.NetworkError` (retransmissions exhausted, or
        the peer's NIC already dark) is reported through ``crash_hook`` and
        the calling coroutine parks forever — recovery tears it down and
        restarts the computation from the last checkpoint.  Without a hook
        the error propagates unchanged (base-system behaviour).
        """
        dst_node = self.team.node_of(dst_pid)
        try:
            reply = yield self.request(kind, dst_pid, payload, size)
        except NetworkError as err:
            if self.crash_hook is None:
                raise
            self.crash_hook(dst_node, err)
            # Park until recovery kills this coroutine: there is no answer
            # coming, and the caller cannot make progress without one.
            from ..simcore import Signal

            yield Signal(self.sim, name=f"{self.name}.parked")
            raise ProtocolError(f"{self.name}: parked coroutine resumed")
        return reply

    # ------------------------------------------------------------------
    # server: request handling (the SIGIO side of TreadMarks)
    # ------------------------------------------------------------------
    def start_server(self) -> None:
        """(Re)start the server coroutine on the current node's NIC."""
        if self._server_proc is not None and self._server_proc.alive:
            self._server_proc.interrupt("server restart")
        self._server_proc = self.sim.process(
            self._server_loop(), name=f"{self.name}.server", daemon=True
        )

    def _server_loop(self) -> Generator:
        inbox = self.node.nic.inbox
        while True:
            # Only take messages addressed to this process (or to the node
            # as a whole) — two multiplexed processes share one NIC.
            msg = yield inbox.recv(
                match=lambda m: m.dst_pid is None or m.dst_pid == self.pid
            )
            if msg.kind in MAIN_KINDS:
                self.main_inbox.put(msg)
            elif msg.kind == mk.BARRIER_ARRIVE:
                self.barrier_mgr.on_arrive(msg)
            elif msg.kind == mk.JOIN_DONE:
                self.join_store.put(msg)
            elif msg.kind == mk.GC_DONE:
                self.gc_done_store.put(msg)
            elif msg.kind == mk.LOCK_REQ:
                self.lock_mgr.on_request(msg)
            else:
                if msg.req_id is not None:
                    if msg.req_id in self._inflight_reqs:
                        continue  # duplicate of a request already in service
                    self._inflight_reqs.add(msg.req_id)
                handler = self.sim.process(
                    self._dispatch(msg),
                    name=f"{self.name}.h.{msg.kind}",
                    daemon=True,
                )
                self._handlers = [h for h in self._handlers if h.alive]
                self._handlers.append(handler)

    def _dispatch(self, msg: Message) -> Generator:
        try:
            yield from self._handle_request(msg)
        finally:
            if msg.req_id is not None:
                self._inflight_reqs.discard(msg.req_id)

    def _handle_request(self, msg: Message) -> Generator:
        if msg.kind == mk.PAGE_REQ:
            yield from self._serve_page(msg)
        elif msg.kind == mk.DIFF_REQ:
            yield from self._serve_diff(msg)
        elif msg.kind == mk.LOCK_FORWARD:
            yield from self._on_lock_forward(msg)
        elif msg.kind == mk.CKPT_PAGE_REQ:
            yield from self._serve_page(msg, reply_kind=mk.CKPT_PAGE_REPLY)
        elif msg.kind == mk.CONNECT:
            # A joining process dialing in (§4.1): acknowledge.
            yield from self.node.service(50.0e-6)
            self.node.nic.send(msg.reply(mk.CONNECT_ACK, size_bytes=4))
        elif msg.kind == mk.HEARTBEAT:
            # Failure-detector probe from the master: ack goes through the
            # handler CPU, so a node buried in protocol work acks late —
            # that is what the detector's timeout margin is tuned against.
            yield from self.node.service(10.0e-6)
            try:
                self.node.nic.send(msg.reply(mk.HEARTBEAT_ACK, size_bytes=4))
            except NetworkError:
                pass  # the prober's NIC went dark; nothing to tell it
        elif msg.kind == mk.PAGE_MAP:
            # The page-location map shipped to a joiner at absorption.
            self.owners = dict(msg.payload["owners"])
            self.sim.tracer.emit("adapt", "page_map", f"{self.name} {len(self.owners)} pages")
        elif msg.kind == mk.OWNER_UPDATE:
            # The master took over a leaver's pages (§4.2).
            for page in msg.payload["pages"]:
                self.owners[page] = TeamView.MASTER_PID
                if page in self.table:
                    self.table.entry(page).owner = TeamView.MASTER_PID
        else:
            raise ProtocolError(f"{self.name}: unexpected request {msg!r}")

    def _serve_page(self, msg: Message, reply_kind: str = mk.PAGE_REPLY) -> Generator:
        page = msg.payload["page"]
        # Lazily map: the home/owner of a page holds a valid (zero-filled)
        # copy even before ever touching it.
        pte = self._pte(page)
        if not pte.valid:
            raise ProtocolError(
                f"{self.name}: asked for page {page} but holds no valid copy"
            )
        yield from self.node.service(self.cfg.network.page_service_server)
        data = None
        if self.materialized:
            data = self.store.page_view(page).copy()
        payload = {
            "page": page,
            "applied": pte.applied.copy(),
            "data": data,
        }
        size = self.cfg.dsm.page_size + self.vc_wire_bytes
        self.node.nic.send(msg.reply(reply_kind, size_bytes=size, payload=payload))

    def _serve_diff(self, msg: Message) -> Generator:
        page = msg.payload["page"]
        from_seq = msg.payload["from_seq"]
        to_seq = msg.payload["to_seq"]
        self._encode_lazy_diffs(page, from_seq, to_seq)
        diffs = self.log.diffs_for(page, from_seq, to_seq)
        dirty = sum(d.dirty_bytes for d in diffs)
        cost = self.cfg.network.diff_fixed + dirty * self.cfg.network.diff_per_byte
        yield from self.node.service(cost)
        size = sum(d.wire_size for d in diffs) + 4
        self.node.nic.send(
            msg.reply(
                mk.DIFF_REPLY,
                size_bytes=size,
                payload={"diffs": diffs, "n_diffs": len(diffs)},
            )
        )

    def _encode_lazy_diffs(self, page: int, from_seq: int, to_seq: int) -> None:
        """Encode diffs for intervals that skipped eager creation.

        Happens only for pages demoted from single-writer after their
        interval closed.  In materialized mode the current page bytes stand
        in for the (long gone) interval snapshot; the declared ranges are
        exact, and later intervals' diffs overwrite in apply order, so the
        reader converges to the same bytes.
        """
        for seq in range(from_seq + 1, to_seq + 1):
            try:
                rec = self.log.get(seq)
            except KeyError:
                continue
            if page not in rec.write_ranges or page in rec.diffs:
                continue
            diff = make_diff(
                proc=self.pid,
                seq=seq,
                page=page,
                vc=rec.vc,
                declared_ranges=rec.write_ranges[page],
                current=self.store.page_view(page) if self.materialized else None,
            )
            if diff is not None:
                rec.diffs[page] = diff
                self.stats.diffs_created += 1

    # ------------------------------------------------------------------
    # page ownership and notices
    # ------------------------------------------------------------------
    def owner_of(self, page: int) -> int:
        """Current owner pid of ``page`` as known to this process."""
        own = self.owners.get(page)
        if own is not None:
            return own
        return self.space.segment_of_page(page).home

    def _pte(self, page: int) -> PageTableEntry:
        """Get or lazily map the entry for ``page``."""
        if page in self.table:
            return self.table.entry(page)
        seg = self.space.segment_of_page(page)
        owner = self.owner_of(page)
        return self.table.map_page(
            page,
            protocol=seg.protocol,
            owner=owner,
            valid=(owner == self.pid),
            width=self.vc.width,
        )

    def apply_notice(self, notice: WriteNotice) -> None:
        """Record a remote write notice (invalidate the page)."""
        key = (notice.proc, notice.seq, notice.page)
        if key in self.seen:
            return
        self.seen[key] = notice
        self._index_notice(notice)
        if notice.proc == self.pid:
            return
        pte = self._pte(notice.page)
        if pte.protocol is Protocol.SINGLE_WRITER and not notice.covered_by(pte.applied):
            # Another process wrote this page without having seen our own
            # write: the single-writer optimization no longer applies, so
            # demote the page to the multiple-writer (diff) protocol — as
            # TreadMarks does when it detects write sharing.
            own_seq = pte.applied.entries[self.pid]
            concurrent = (
                own_seq > 0 and notice.vc.entries[self.pid] < own_seq
            ) or notice.page in self.current_writes
            if concurrent:
                pte.protocol = Protocol.MULTIPLE_WRITER
                self.sim.tracer.emit(
                    "dsm", "demote", f"{self.name} pg{notice.page} -> multiple-writer"
                )
        pte.add_notice(notice)
        if pte.protocol is Protocol.SINGLE_WRITER:
            # The latest writer holds the complete page.
            pte.owner = notice.proc
            self.owners[notice.page] = notice.proc

    def apply_notices(self, notices: Iterable[WriteNotice], sender_vc: VectorClock) -> None:
        """Apply a batch of notices and merge the sender's clock."""
        for n in notices:
            self.apply_notice(n)
        self.vc.merge(sender_vc)

    def _index_notice(self, notice: WriteNotice) -> None:
        import bisect

        bucket = self._seen_by_proc.setdefault(notice.proc, [])
        entry = (notice.seq, notice.page, notice)
        if not bucket or entry[:2] >= bucket[-1][:2]:
            bucket.append(entry)
        else:
            bisect.insort(bucket, entry[:2] + (notice,), key=lambda e: e[:2])

    def notices_unknown_to(self, other_vc: VectorClock) -> List[WriteNotice]:
        """All epoch notices this process knows that ``other_vc`` does not cover."""
        import bisect

        out: List[WriteNotice] = []
        for proc in sorted(self._seen_by_proc):
            bucket = self._seen_by_proc[proc]
            floor = other_vc.entries[proc] if proc < other_vc.width else 0
            # first entry with seq > floor (pages sort after -1)
            start = bisect.bisect_left(bucket, (floor + 1, -1), key=lambda e: e[:2])
            out.extend(entry[2] for entry in bucket[start:])
        return out

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def access(
        self,
        seg: SharedSegment,
        reads: Iterable[Range] = (),
        writes: Iterable[Range] = (),
    ) -> Generator:
        """Declare that the program now reads/writes these segment byte ranges.

        Pages not valid locally fault and fetch; written pages get twins
        and enter the open interval's write set.  This is the page-level
        equivalent of the SEGV handler firing as compiled code touches
        shared arrays.
        """
        reads = list(reads)
        writes = list(writes)
        write_pages: Dict[int, List[Range]] = {}
        read_pages = set()
        for lo, hi in writes:
            for page in seg.pages_for_range(lo, hi):
                wlo, whi = seg.page_window(page, self.cfg.dsm.page_size)
                local = [
                    (s - wlo, e - wlo)
                    for s, e in clip([(lo, hi)], wlo, whi)
                ]
                write_pages.setdefault(page, []).extend(local)
        for lo, hi in reads:
            read_pages.update(seg.pages_for_range(lo, hi))

        for page in sorted(read_pages | set(write_pages)):
            if self.stall_hook is not None:
                yield from self.stall_hook()
            yield from self._ensure_access(page, write=page in write_pages)
            if page in write_pages:
                prev = self.current_writes.setdefault(page, [])
                self.current_writes[page] = merge(prev, write_pages[page])

    def access_batch(self, specs) -> Generator:
        """Access several segments in one region step.

        Under LRC this is simply the accesses in sequence; the SC baseline
        overrides it to make the combined write set atomic.
        """
        for seg, reads, writes in specs:
            yield from self.access(seg, reads, writes)

    def _ensure_access(self, page: int, write: bool) -> Generator:
        """Fault in one page for read or write access."""
        pte = self._pte(page)
        pte.last_access_epoch = self.epoch
        needs_fetch = (not pte.valid) or bool(pte.pending)
        if needs_fetch:
            t0 = self.sim.now
            self.stats.read_faults += 0 if write else 1
            self.stats.write_faults += 1 if write else 0
            if not pte.valid:
                yield from self._fetch_page(pte, self.owner_of(page))
            if pte.pending:
                yield from self._fetch_pending(pte)
            self.stats.fault_wait_time += self.sim.now - t0
        if write:
            self._prepare_write(pte)
        elif pte.mode is AccessMode.NONE:
            pte.mode = AccessMode.READ

    def _fetch_page(self, pte: PageTableEntry, from_pid: int) -> Generator:
        """Fetch a full page copy from ``from_pid``."""
        if from_pid == self.pid:
            # First touch at the home/owner: the zero-filled copy is valid.
            pte.valid = True
            return
        reply = yield from self.request_reply(
            mk.PAGE_REQ, from_pid, {"page": pte.page}, size=8
        )
        yield self.sim.timeout(self.cfg.network.page_service_client)
        if self.materialized:
            self.store.page_view(pte.page)[:] = reply.payload["data"]
        pte.valid = True
        pte.applied.merge(reply.payload["applied"])
        pte.prune_pending()
        self.stats.page_fetches += 1
        self.sim.tracer.emit("dsm", "page_fetch", f"{self.name}<-P{from_pid} pg{pte.page}")

    def _fetch_pending(self, pte: PageTableEntry) -> Generator:
        """Bring a stale copy up to date (diffs, or full page re-fetch)."""
        if pte.protocol is Protocol.SINGLE_WRITER:
            latest = max(pte.pending, key=lambda n: (*n.vc.sort_key(), -n.proc))
            yield from self._fetch_page_refresh(pte, latest.proc)
            pte.prune_pending()
            if not pte.pending:
                return
            # Concurrent writers after all: demote and fall through to the
            # diff path for the remaining intervals.
            pte.protocol = Protocol.MULTIPLE_WRITER
            self.sim.tracer.emit(
                "dsm", "demote", f"{self.name} pg{pte.page} -> multiple-writer"
            )
        by_writer: Dict[int, int] = {}
        for n in pte.pending:
            by_writer[n.proc] = max(by_writer.get(n.proc, 0), n.seq)
        collected: List[Diff] = []
        for writer in sorted(by_writer):
            if writer == self.pid:
                raise ProtocolError(f"{self.name}: pending notice from self")
            from_seq = pte.applied.entries[writer]
            to_seq = by_writer[writer]
            reply = yield from self.request_reply(
                mk.DIFF_REQ,
                writer,
                {"page": pte.page, "from_seq": from_seq, "to_seq": to_seq},
                size=16,
            )
            collected.extend(reply.payload["diffs"])
            self.stats.diff_requests += 1
        buffer = self.store.page_view(pte.page) if self.materialized else None
        for diff in sorted(collected, key=lambda d: d.sort_key()):
            if buffer is not None:
                diff.apply(buffer)
            pte.applied.entries[diff.proc] = max(pte.applied.entries[diff.proc], diff.seq)
        # Notices may name intervals that produced no diff for this page
        # (e.g. a write of identical bytes); cover them explicitly.
        for writer, seq in by_writer.items():
            pte.applied.entries[writer] = max(pte.applied.entries[writer], seq)
        self.stats.diffs_fetched += len(collected)
        pte.clear_pending()

    def _fetch_page_refresh(self, pte: PageTableEntry, from_pid: int) -> Generator:
        """Re-fetch a full page (single-writer protocol update path)."""
        reply = yield from self.request_reply(
            mk.PAGE_REQ, from_pid, {"page": pte.page}, size=8
        )
        yield self.sim.timeout(self.cfg.network.page_service_client)
        if self.materialized:
            self.store.page_view(pte.page)[:] = reply.payload["data"]
        pte.valid = True
        pte.applied.merge(reply.payload["applied"])
        pte.owner = from_pid
        self.owners[pte.page] = from_pid
        self.stats.page_fetches += 1

    def _prepare_write(self, pte: PageTableEntry) -> None:
        """First write to a page in the open interval: twin it."""
        if pte.page not in self.current_writes:
            if self.materialized and pte.protocol is Protocol.MULTIPLE_WRITER:
                pte.twin = self.store.page_view(pte.page).copy()
            self.stats.twins_created += 1
            self.node.busy_time += self.cfg.dsm.twin_time
            self.current_writes[pte.page] = []
        if pte.protocol is Protocol.SINGLE_WRITER and pte.owner != self.pid:
            pte.owner = self.pid
            self.owners[pte.page] = self.pid
        pte.valid = True
        pte.mode = AccessMode.WRITE

    # ------------------------------------------------------------------
    # intervals & releases
    # ------------------------------------------------------------------
    def close_interval(self) -> List[WriteNotice]:
        """Close the open interval (at a release); returns its notices."""
        if not self.current_writes:
            return []
        self.vc.tick(self.pid)
        seq = self.vc.entries[self.pid]
        rec = IntervalRecord(proc=self.pid, seq=seq, vc=self.vc.copy())
        for page, ranges in sorted(self.current_writes.items()):
            pte = self.table.entry(page)
            rec.write_ranges[page] = ranges
            # Multiple-writer pages encode their diff now, from the twin.
            # Single-writer pages serve full-page refreshes instead; should
            # one be demoted later (write sharing after an adaptation), its
            # diff is encoded lazily at the first DIFF_REQ from the
            # recorded ranges (see _serve_diff).
            if pte.protocol is Protocol.MULTIPLE_WRITER:
                diff = make_diff(
                    proc=self.pid,
                    seq=seq,
                    page=page,
                    vc=self.vc,
                    declared_ranges=ranges,
                    twin=pte.twin,
                    current=self.store.page_view(page) if self.materialized else None,
                )
                if diff is not None:
                    rec.diffs[page] = diff
                    self.stats.diffs_created += 1
            pte.twin = None
            pte.mode = AccessMode.READ
            pte.applied.entries[self.pid] = seq
        self.log.add(rec)
        self.current_writes = {}
        self.stats.intervals_closed += 1
        notices = rec.notices()
        for n in notices:
            self.seen[(n.proc, n.seq, n.page)] = n
            self._index_notice(n)
        return notices

    def sync_notices(self) -> List[WriteNotice]:
        """Close the open interval and return all own notices the master
        has not yet been told about (lock releases create intervals the
        master never sees otherwise)."""
        self.close_interval()
        import bisect

        last_sent = self._sent_to_master_seq
        my_seq = self.vc.entries[self.pid]
        bucket = self._seen_by_proc.get(self.pid, [])
        start = bisect.bisect_left(bucket, (last_sent + 1, -1), key=lambda e: e[:2])
        out = [entry[2] for entry in bucket[start:] if entry[0] <= my_seq]
        self._sent_to_master_seq = my_seq
        return out

    @property
    def wants_gc(self) -> bool:
        """True when the interval log hit the configured limit (§4.1)."""
        return len(self.log) >= self.cfg.dsm.gc_interval_limit

    # ------------------------------------------------------------------
    # barrier (client side; the manager lives on the master)
    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        """TreadMarks barrier with write-notice exchange."""
        t0 = self.sim.now
        notices = self.sync_notices()
        self.stats.barriers += 1
        if self.is_master:
            done = self.barrier_mgr.arrive_local(self, notices, self.wants_gc)
            yield done
        else:
            size = self.notice_wire_bytes(len(notices)) + self.vc_wire_bytes + 8
            self.send(
                mk.BARRIER_ARRIVE,
                TeamView.MASTER_PID,
                {
                    "pid": self.pid,
                    "notices": notices,
                    "vc": self.vc.copy(),
                    "want_gc": self.wants_gc,
                },
                size=size,
            )
            msg = yield self.main_inbox.recv(match=lambda m: m.kind == mk.BARRIER_RELEASE)
            self.apply_notices(msg.payload["notices"], msg.payload["vc"])
            if msg.payload["gc"]:
                yield from self.gc_participate()
        self.stats.barrier_wait_time += self.sim.now - t0

    # ------------------------------------------------------------------
    # garbage collection participation
    # ------------------------------------------------------------------
    def gc_flush(self) -> Generator:
        """Make our copies of pages we will own complete (flush phase)."""
        from .gc import gc_new_owners

        new_owners = gc_new_owners(self.seen.values())
        for page, owner in sorted(new_owners.items()):
            if owner != self.pid:
                continue
            pte = self._pte(page)
            if not pte.valid:
                raise ProtocolError(
                    f"{self.name}: GC made us owner of page {page} we never wrote"
                )
            if pte.pending:
                yield from self._fetch_pending(pte)
        self._gc_pending_owners = new_owners

    def gc_reset(self) -> None:
        """Drop all consistency bookkeeping and start a new epoch."""
        new_owners = getattr(self, "_gc_pending_owners", {})
        self.owners.update(new_owners)
        for pte in self.table:
            pte.owner = self.owners.get(pte.page, pte.owner)
            if not pte.readable:
                pte.valid = False
            pte.clear_pending()
            pte.applied = VectorClock.zeros(self.team.nprocs)
            pte.twin = None
            pte.mode = AccessMode.NONE
            # A fresh epoch restores the segment's protocol hint (pages
            # demoted by transient write sharing become single-writer again).
            pte.protocol = self.space.segment_of_page(pte.page).protocol
        if self.current_writes:
            raise ProtocolError(f"{self.name}: GC with an open write set")
        self.log.clear()
        self.seen.clear()
        self._seen_by_proc.clear()
        self.vc = VectorClock.zeros(self.team.nprocs)
        self.epoch += 1
        self._sent_to_master_seq = 0
        self._lock_state.clear()
        if self.lock_mgr is not None:
            self.lock_mgr.reset()
        self._gc_pending_owners = {}
        self.stats.gcs += 1
        self.sim.tracer.emit("dsm", "gc", f"{self.name} epoch={self.epoch}")

    def gc_participate(self, ack: bool = False) -> Generator:
        """Slave-side GC phase: flush, report done, await go, reset.

        With ``ack`` (fork-point GC), a second GC_DONE confirms the reset —
        the master must not rebuild the team while a slave still holds the
        old epoch's state.
        """
        yield from self.gc_flush()
        self.send(
            mk.GC_DONE, TeamView.MASTER_PID, {"pid": self.pid, "phase": "flush"}, size=8
        )
        yield self.main_inbox.recv(match=lambda m: m.kind == mk.GC_GO)
        self.gc_reset()
        if ack:
            self.send(
                mk.GC_DONE,
                TeamView.MASTER_PID,
                {"pid": self.pid, "phase": "reset"},
                size=8,
            )

    # ------------------------------------------------------------------
    # locks (distributed queue, master as manager)
    # ------------------------------------------------------------------
    def _lock(self, lock_id: int) -> Dict[str, Any]:
        state = self._lock_state.get(lock_id)
        if state is None:
            # The master conceptually holds (and has released) every lock at
            # epoch start — it carries one release "token".  Tokens count
            # completed tenures whose successor forward has not arrived yet:
            # a forward can race past our release *and* our re-request, so
            # matching forwards to releases needs explicit accounting.
            master = self.is_master
            state = {
                "status": "released" if master else "idle",
                "pending": None,
                "tokens": 1 if master else 0,
            }
            self._lock_state[lock_id] = state
        return state

    def lock_acquire(self, lock_id: int) -> Generator:
        """Acquire a TreadMarks lock (an LRC acquire)."""
        t0 = self.sim.now
        state = self._lock(lock_id)
        if state["status"] in ("waiting", "held"):
            raise DsmError(f"{self.name}: lock {lock_id} already requested/held")
        state["status"] = "waiting"
        self.send(
            mk.LOCK_REQ,
            TeamView.MASTER_PID,
            {"lock": lock_id, "pid": self.pid, "vc": self.vc.copy()},
            size=8 + self.vc_wire_bytes,
        )
        msg = yield self.main_inbox.recv(
            match=lambda m: m.kind == mk.LOCK_GRANT and m.payload["lock"] == lock_id
        )
        self.apply_notices(msg.payload["notices"], msg.payload["vc"])
        state["status"] = "held"
        self.stats.locks_acquired += 1
        self.stats.lock_wait_time += self.sim.now - t0

    def lock_release(self, lock_id: int) -> None:
        """Release a lock (an LRC release: closes the interval)."""
        state = self._lock(lock_id)
        if state["status"] != "held":
            raise DsmError(f"{self.name}: releasing lock {lock_id} it does not hold")
        self.close_interval()
        state["status"] = "released"
        pending, state["pending"] = state["pending"], None
        if pending is not None:
            self._grant_lock(lock_id, pending["requester"], pending["vc"])
        else:
            # no successor known yet: bank the release for the forward that
            # is still on its way (or may never come this epoch)
            state["tokens"] += 1

    def _grant_lock(self, lock_id: int, requester: int, requester_vc: VectorClock) -> None:
        notices = self.notices_unknown_to(requester_vc)
        size = 8 + self.notice_wire_bytes(len(notices)) + self.vc_wire_bytes
        self.send(
            mk.LOCK_GRANT,
            requester,
            {"lock": lock_id, "notices": notices, "vc": self.vc.copy()},
            size=size,
        )

    def _on_lock_forward(self, msg: Message) -> Generator:
        """The manager forwarded a lock request to us (last in the chain)."""
        lock_id = msg.payload["lock"]
        requester = msg.payload["requester"]
        requester_vc = msg.payload["vc"]
        yield from self.node.service(self.cfg.network.lock_service)
        state = self._lock(lock_id)
        if state["tokens"] > 0:
            # a completed tenure is waiting for exactly this forward (this
            # also covers our own request chaining back to us, and the
            # master's epoch-start conceptual release)
            state["tokens"] -= 1
            self._grant_lock(lock_id, requester, requester_vc)
        elif state["status"] in ("waiting", "held"):
            if state["pending"] is not None:
                raise ProtocolError(f"{self.name}: two pending forwards for lock {lock_id}")
            state["pending"] = {"requester": requester, "vc": requester_vc}
        else:
            raise ProtocolError(
                f"{self.name}: forwarded lock {lock_id} with no tenure to match"
            )
        return
        yield  # pragma: no cover - generator form for the dispatch table

    # ------------------------------------------------------------------
    # compute & data access helpers
    # ------------------------------------------------------------------
    def compute(self, seconds: float) -> Generator:
        """Charge ``seconds`` of application CPU work on the current node."""
        self.stats.compute_time += seconds
        yield from self.node.compute(seconds)

    def array(self, seg: SharedSegment) -> np.ndarray:
        """Materialized view of a segment's local copy (shape/dtype applied)."""
        if not self.materialized:
            raise DsmError("array views are only available in materialized mode")
        return self.store.array_view(seg)

    # ------------------------------------------------------------------
    # migration support (urgent leaves)
    # ------------------------------------------------------------------
    def resident_image_bytes(self) -> int:
        """Heap+stack image size moved by libckpt (§5.3).

        The checkpoint image covers every *mapped* shared page (libckpt
        dumps the heap; DSM mappings are part of it whether currently valid
        or not) plus the runtime's own heap/stack overhead.  This matches
        the paper's per-application migration costs, which correspond to
        roughly the whole shared segment at 8.1 MB/s.
        """
        mapped_pages = len(self.table)
        return (
            mapped_pages * self.cfg.dsm.page_size
            + self.cfg.migration.image_overhead_bytes
        )

    def adapt_reset(self, new_pid: int, owner_remap: Dict[int, int]) -> None:
        """Re-identify this process after an adaptation (§4.1).

        Must follow a GC (all clocks zero, no pending notices).  ``new_pid``
        is the reassigned process id; ``owner_remap`` maps old owner pids to
        new ones for every page-owner reference we hold.
        """
        if self.seen or self.current_writes or len(self.log):
            raise ProtocolError(f"{self.name}: adapt_reset without a preceding GC")
        self.pid = new_pid
        width = self.team.nprocs
        self.vc = VectorClock.zeros(width)
        self._sent_to_master_seq = 0
        self.owners = {
            page: owner_remap.get(owner, TeamView.MASTER_PID)
            for page, owner in self.owners.items()
        }
        for pte in self.table:
            pte.owner = owner_remap.get(pte.owner, TeamView.MASTER_PID)
            pte.applied = VectorClock.zeros(width)
        self.table.proc_name = self.name

    def terminate(self) -> None:
        """Tear down after leaving the computation."""
        if self._server_proc is not None and self._server_proc.alive:
            self._server_proc.interrupt("process left")
        self.node.remove_process()

    def fail_stop(self) -> None:
        """Die with the node: server and in-flight handlers stop cold.

        The node's own crash already zeroed its resident-process count, so
        no node bookkeeping happens here.
        """
        for handler in self._handlers:
            handler.kill()
        self._handlers.clear()
        if self._server_proc is not None:
            self._server_proc.kill()

    def halt(self) -> None:
        """Stop serving (recovery teardown of a *surviving* process).

        Unlike :meth:`fail_stop` the node is healthy: the resident-process
        slot is handed back so recovery can place a fresh engine on it.
        """
        for handler in self._handlers:
            handler.kill()
        self._handlers.clear()
        if self._server_proc is not None:
            self._server_proc.kill()
        if not getattr(self.node, "crashed", False):
            self.node.remove_process()

    def move_to_node(self, new_node) -> None:
        """Transplant this process onto ``new_node`` (after image copy)."""
        self.node.remove_process()
        self.node = new_node
        new_node.add_process()
        self.start_server()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DsmProcess {self.name} on node {self.node.node_id}>"
