"""Byte-range arithmetic used for write sets and diff sizing.

A *range list* is a sorted list of disjoint, non-adjacent ``(start, end)``
half-open byte intervals within one page.  Write sets are tracked as range
lists so that traced-mode runs (no real bytes stored) still produce exact
diff sizes, and materialized-mode runs can cross-check real twin/page
comparisons against the declared ranges.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

Range = Tuple[int, int]

#: Bytes charged per (offset, length) run header in a diff's wire encoding.
RUN_HEADER_BYTES = 8


def normalize(ranges: Iterable[Range]) -> List[Range]:
    """Sort and coalesce overlapping/adjacent ranges; drop empties."""
    rs = ranges if type(ranges) is list else list(ranges)
    # Hot path: the overwhelmingly common cases are zero or one range
    # (per-page write sets of contiguous row updates).
    if not rs:
        return []
    if len(rs) == 1:
        start, end = rs[0]
        return [(start, end)] if start < end else []
    out: List[Range] = []
    for start, end in sorted(r for r in rs if r[0] < r[1]):
        if out and start <= out[-1][1]:
            prev = out[-1]
            out[-1] = (prev[0], max(prev[1], end))
        else:
            out.append((start, end))
    return out


def merge(a: Iterable[Range], b: Iterable[Range]) -> List[Range]:
    """Union of two range lists."""
    a = a if type(a) is list else list(a)
    b = b if type(b) is list else list(b)
    if not a:
        return normalize(b)
    if not b:
        return normalize(a)
    return normalize(a + b)


def total_bytes(ranges: Iterable[Range]) -> int:
    """Sum of range lengths."""
    return sum(end - start for start, end in ranges)


def clip(ranges: Iterable[Range], lo: int, hi: int) -> List[Range]:
    """Intersect a range list with the window ``[lo, hi)``."""
    out = []
    for start, end in ranges:
        s, e = max(start, lo), min(end, hi)
        if s < e:
            out.append((s, e))
    return out


def intersects(a: Iterable[Range], b: Iterable[Range]) -> bool:
    """True if any byte is in both range lists (assumed normalized)."""
    a = list(a)
    b = list(b)
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i][1] <= b[j][0]:
            i += 1
        elif b[j][1] <= a[i][0]:
            j += 1
        else:
            return True
    return False


def diff_wire_size(ranges: Iterable[Range], run_header_bytes: int = RUN_HEADER_BYTES) -> int:
    """Wire size of a diff covering ``ranges``.

    TreadMarks encodes a diff as a sequence of (offset, length, data) runs;
    we charge ``run_header_bytes`` per run plus the raw bytes.
    """
    ranges = list(ranges)
    return total_bytes(ranges) + run_header_bytes * len(ranges)
