"""The TreadMarks fork/join runtime (the non-adaptive base system).

Implements the ``Tmk_wait`` / ``Tmk_fork`` / ``Tmk_join`` primitives of
§2: slaves sit in a wait loop; the master drives the program, forking a
region (parallel construct) to the team and collecting joins.  Fork and
join messages double as LRC synchronization — they carry write notices in
both directions, so the master's sequential writes invalidate slave copies
and vice versa.

:class:`AdaptiveRuntime` (in :mod:`repro.core.runtime`) subclasses this
and overrides :meth:`at_adaptation_point` / :meth:`stall_check`; the base
class implements them as no-ops, which *is* the standard TreadMarks 1.1.0
behaviour Table 1 compares against.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..errors import DsmError, ProtocolError
from ..network import message as mk
from ..obs.breakdown import CostBreakdown
from ..obs.core import TRACK_MASTER
from ..simcore import Simulator
from .barrier import BarrierManager
from .locks import LockManager
from .memory import AddressSpace, SharedSegment
from .page import Protocol
from .process import DsmProcess
from .statistics import DsmStats
from .team import TeamView
from .treebarrier import tree_children, tree_parent, vc_min, writer_sorted
from .vectorclock import VectorClock

#: A parallel-region body: ``region(ctx, pid, nprocs, args) -> generator``.
RegionFn = Callable[["RegionCtx", int, int, Any], Generator]
#: The master driver: ``driver(api) -> generator``.
DriverFn = Callable[["MasterApi"], Generator]


class TmkProgram:
    """A fork/join program: named regions plus a master driver."""

    def __init__(self, phases: Dict[str, RegionFn], driver: DriverFn, name: str = "program"):
        self.phases = dict(phases)
        self.driver = driver
        self.name = name

    def phase(self, name: str) -> RegionFn:
        try:
            return self.phases[name]
        except KeyError:
            raise DsmError(f"program {self.name!r} has no phase {name!r}") from None


class RegionCtx:
    """The API surface a region body (or sequential master code) uses."""

    def __init__(self, runtime: "TmkRuntime", proc: DsmProcess):
        self.runtime = runtime
        self.proc = proc

    @property
    def pid(self) -> int:
        return self.proc.pid

    @property
    def nprocs(self) -> int:
        return self.proc.team.nprocs

    @property
    def materialized(self) -> bool:
        return self.proc.materialized

    @property
    def sim(self) -> Simulator:
        return self.proc.sim

    def access(self, seg: SharedSegment, reads=(), writes=()) -> Generator:
        """Declare shared reads/writes (may fault; see DsmProcess.access)."""
        yield from self.runtime.stall_check()
        yield from self.proc.access(seg, reads, writes)

    def access_batch(self, specs) -> Generator:
        """Declare accesses over several segments as one atomic step."""
        yield from self.runtime.stall_check()
        yield from self.proc.access_batch(specs)

    def compute(self, seconds: float) -> Generator:
        """Charge application CPU time."""
        yield from self.runtime.stall_check()
        yield from self.proc.compute(seconds)

    def barrier(self) -> Generator:
        yield from self.proc.barrier()

    def lock(self, lock_id: int) -> Generator:
        yield from self.proc.lock_acquire(lock_id)

    def unlock(self, lock_id: int) -> None:
        self.proc.lock_release(lock_id)

    def array(self, seg: SharedSegment) -> np.ndarray:
        """Materialized numpy view of the local copy of ``seg``."""
        return self.proc.array(seg)


class MasterApi:
    """What a program driver sees on the master."""

    def __init__(self, runtime: "TmkRuntime"):
        self._runtime = runtime
        self.ctx = runtime.master_ctx

    @property
    def nprocs(self) -> int:
        return self._runtime.team.nprocs

    def fork_join(self, phase_name: str, args: Any = None) -> Generator:
        """Execute one parallel construct across the current team."""
        yield from self._runtime._fork_join(phase_name, args)

    def seq(self, fn: Callable[[RegionCtx], Generator]) -> Generator:
        """Run sequential master code between parallel constructs."""
        yield from fn(self.ctx)


@dataclass(frozen=True)
class NetworkCounters:
    """Data-plane reliability counters (added piecemeal in PR 1)."""

    #: Data-plane messages dropped by the seeded loss model.
    dropped: int = 0
    #: Request re-sends performed by retransmit timers across all NICs.
    retransmissions: int = 0


@dataclass(frozen=True)
class DetectorCounters:
    """Failure-detector counters (adaptive runs only; added in PR 2)."""

    #: Probes sent by the master.
    heartbeats_sent: int = 0
    #: Probes that missed their ack deadline.
    heartbeat_misses: int = 0
    #: Nodes suspected (>=1 miss) that later acked before being declared.
    false_suspicions: int = 0


#: Old flat RunResult attribute -> (group field, attribute) for the
#: one-release compatibility shim.
_RESULT_COMPAT = {
    "dropped": ("network", "dropped"),
    "retransmissions": ("network", "retransmissions"),
    "heartbeats_sent": ("detector", "heartbeats_sent"),
    "heartbeat_misses": ("detector", "heartbeat_misses"),
    "false_suspicions": ("detector", "false_suspicions"),
}


@dataclass
class RunResult:
    """Outcome of one program run."""

    runtime_seconds: float
    traffic: Any
    per_process: Dict[int, DsmStats]
    forks: int
    adaptations: int = 0
    #: (time, kind, detail) adaptation event log (adaptive runs only).
    adapt_log: List[Tuple[float, str, str]] = field(default_factory=list)
    #: Data-plane reliability counters.
    network: NetworkCounters = field(default_factory=NetworkCounters)
    #: Failure-detector counters (zeros on non-adaptive runs).
    detector: DetectorCounters = field(default_factory=DetectorCounters)
    #: One :class:`~repro.core.recovery.RecoveryRecord` per crash recovery.
    recoveries: List[Any] = field(default_factory=list)
    #: Per-phase adaptation-cost decomposition (observability-enabled
    #: runs only; ``None`` otherwise).
    cost_breakdown: Optional[CostBreakdown] = None

    @property
    def total(self) -> DsmStats:
        acc = DsmStats()
        for s in self.per_process.values():
            acc = acc.add(s)
        return acc

    def __getattr__(self, name: str) -> Any:
        # Pre-PR-4 flat counter names; kept one release behind a warning.
        try:
            group, attr = _RESULT_COMPAT[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None
        warnings.warn(
            f"RunResult.{name} is deprecated; use RunResult.{group}.{attr}",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(getattr(self, group), attr)


class TmkRuntime:
    """The TreadMarks system instance driving one program run."""

    #: The DSM engine class per process (subclasses may swap the protocol).
    PROCESS_CLS = DsmProcess

    def __init__(
        self,
        sim: Simulator,
        cfg: SystemConfig,
        nodes: List,
        materialized: bool = True,
    ):
        if not nodes:
            raise DsmError("need at least one node")
        cfg.validate()
        self.sim = sim
        self.cfg = cfg
        self.nodes = list(nodes)
        self.materialized = materialized
        self.team = TeamView([n.node_id for n in nodes])
        self.space = AddressSpace(cfg.dsm.page_size)
        self.procs: Dict[int, DsmProcess] = {}
        for pid, node in enumerate(nodes):
            proc = self.PROCESS_CLS(
                sim, cfg, node, pid, self.team, self.space, materialized=materialized
            )
            self.procs[pid] = proc
        self.master = self.procs[TeamView.MASTER_PID]
        self.master.barrier_mgr = BarrierManager(self.master)
        self.master.lock_mgr = LockManager(self.master)
        # The base runtime's stall_check is a no-op; installing it as a
        # per-page-fault hook would only create and discard an empty
        # generator per fault.  Subclasses that override it (the adaptive
        # runtime's freeze protocol) get the hook installed.
        install_stall = type(self).stall_check is not TmkRuntime.stall_check
        for proc in self.procs.values():
            if install_stall:
                proc.stall_hook = self.stall_check
            proc.peers_hook = self._live_procs
            proc.start_server()
        self.master_ctx = RegionCtx(self, self.master)
        self.slave_vcs: Dict[int, VectorClock] = {
            pid: VectorClock.zeros(self.team.nprocs) for pid in self.team.slave_pids
        }
        self.fork_seq = 0
        self.program: Optional[TmkProgram] = None
        #: Set when the master driver completes; long-running daemons
        #: (availability models) watch this to stop generating events.
        self.finished = False
        self.finish_time: Optional[float] = None
        self._switch = nodes[0].switch
        #: Live coroutine handles, so crash injection / recovery can kill
        #: the computation where it stands.
        self._driver_proc = None
        self._slave_procs: Dict[DsmProcess, Any] = {}

    @property
    def switch(self):
        """The interconnect all team nodes share."""
        return self._switch

    # -- allocation ---------------------------------------------------------
    def malloc(
        self,
        name: str,
        nbytes: Optional[int] = None,
        protocol: Protocol = Protocol.MULTIPLE_WRITER,
        home: int = TeamView.MASTER_PID,
        dtype: str = "uint8",
        shape: Tuple[int, ...] = (),
    ) -> SharedSegment:
        """``Tmk_malloc``: allocate shared memory (page aligned)."""
        if nbytes is None:
            if not shape:
                raise DsmError("malloc needs nbytes or shape")
            nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return self.space.alloc(
            name, nbytes, protocol=protocol, home=home, dtype=dtype, shape=shape
        )

    def _live_procs(self) -> Dict[int, DsmProcess]:
        """The current pid -> process map (``DsmProcess.peers_hook``).

        Interval-log pruning reads peers' applied clocks through this —
        always the *current* map, so team rebuilds (adaptation, crash
        recovery) are picked up automatically.
        """
        return self.procs

    # -- hooks overridden by the adaptive runtime ---------------------------
    def at_adaptation_point(self) -> Generator:
        """Called at every fork boundary; base system does nothing."""
        return
        yield  # pragma: no cover

    def stall_check(self) -> Generator:
        """Called before compute/access chunks; base system does nothing."""
        return
        yield  # pragma: no cover

    # -- program execution ---------------------------------------------------
    def run(self, program: TmkProgram, until: Optional[float] = None) -> RunResult:
        """Execute the program to completion; returns the results."""
        self.program = program
        for pid in self.team.slave_pids:
            self._start_slave(self.procs[pid])
        self._driver_proc = self.sim.process(
            self._master_main(program), name="master.driver"
        )
        self.sim.run(until=until)
        return self.result()

    def result(self) -> RunResult:
        traffic = self._switch.stats.snapshot()
        obs = self.sim.obs
        return RunResult(
            runtime_seconds=self.finish_time if self.finish_time is not None else self.sim.now,
            traffic=traffic,
            per_process={pid: p.stats.copy() for pid, p in self.procs.items()},
            forks=self.fork_seq,
            network=NetworkCounters(
                dropped=self._switch.loss.dropped if self._switch.loss else 0,
                retransmissions=traffic.retransmissions,
            ),
            cost_breakdown=CostBreakdown.from_registry(obs) if obs.enabled else None,
        )

    def _start_slave(self, proc: DsmProcess) -> None:
        self._slave_procs = {
            p: h for p, h in self._slave_procs.items() if h.alive
        }
        self._slave_procs[proc] = self.sim.process(
            self._slave_main(proc), name=f"{proc.name}.main"
        )

    def _master_main(self, program: TmkProgram) -> Generator:
        api = MasterApi(self)
        yield from program.driver(api)
        self.master.close_interval()
        yield from self.at_adaptation_point()
        self.master.send_fanout(
            [(mk.STOP, pid, {}, 4) for pid in self.team.slave_pids]
        )
        self.finished = True
        self.finish_time = self.sim.now

    def _slave_main(self, proc: DsmProcess) -> Generator:
        """``Tmk_wait`` loop: wait for forks until stopped."""
        ctx = RegionCtx(self, proc)
        wanted = (mk.FORK, mk.STOP, mk.GC_REQ)
        while True:
            msg = yield proc.main_inbox.recv(match=lambda m: m.kind in wanted)
            if msg.kind == mk.STOP:
                if isinstance(msg.payload, dict) and msg.payload.get("retire"):
                    # Normal leave: tear down and hand the node back.
                    node = proc.node
                    proc.terminate()
                    if msg.payload.get("withdraw") and node.in_pool:
                        node.withdraw()
                break
            if msg.kind == mk.GC_REQ:
                if proc.tree_barrier is not None:
                    # Tree-relayed fork-point GC: forward to our subtree,
                    # aggregate both done rounds one hop at a time (§11).
                    yield from proc.tree_barrier.gc_fork_point_participate(
                        msg.payload
                    )
                else:
                    proc.apply_notices(msg.payload["notices"], msg.payload["vc"])
                    yield from proc.gc_participate(ack=True)
                continue
            payload = msg.payload
            proc.apply_notices(payload["notices"], payload["vc"])
            tb = proc.tree_barrier
            children: List[int] = []
            if tb is not None:
                # Relay the fork down our subtree before running the
                # region, so the whole tree starts in parallel.  Each
                # child gets the notices its subtree's knowledge floor is
                # missing — a superset of what the flat master would have
                # sent each member; receivers dedupe.
                pids = self.team.pids
                pos = pids.index(proc.pid)
                children = tree_children(pids, pos, tb.radix)
                legs = []
                for cpid in children:
                    fork_notices = proc.notices_unknown_to(tb.child_vc(cpid))
                    size = (
                        proc.notice_wire_bytes(len(fork_notices))
                        + proc.vc_wire_bytes
                        + 8 * payload["nprocs"]
                        + 16
                    )
                    legs.append((
                        mk.FORK,
                        cpid,
                        {
                            "phase": payload["phase"],
                            "args": payload["args"],
                            "fork_seq": payload["fork_seq"],
                            "notices": fork_notices,
                            "vc": proc.vc.snapshot(),
                            "nprocs": payload["nprocs"],
                        },
                        size,
                    ))
                proc.send_fanout(legs)
            region = self.program.phase(payload["phase"])
            yield from region(ctx, proc.pid, payload["nprocs"], payload["args"])
            notices = proc.sync_notices()
            if tb is not None:
                # Combine our subtree's joins into one upward JOIN_DONE:
                # own arrival clock is the floor for ourselves, children
                # report their subtrees' floors; notices fold run-batched.
                own_vc = proc.vc.snapshot()
                min_vc = own_vc
                arrivals: Dict[int, dict] = {}
                for _ in children:
                    m2 = yield proc.join_store.get()
                    arrivals[m2.payload["pid"]] = m2.payload
                batched = writer_sorted(
                    arrivals[cpid]["notices"] for cpid in sorted(arrivals)
                )
                if batched:
                    proc.apply_notices(batched, proc.vc.snapshot())
                obs = self.sim.obs
                if obs.enabled and children:
                    obs.count("barrier.tree.folds")
                    obs.count("barrier.tree.notices_folded", len(batched))
                want_gc = proc.wants_gc
                for cpid in sorted(arrivals):
                    p = arrivals[cpid]
                    proc.vc.merge(p["vc"])
                    tb.child_join_vcs[cpid] = p["min_vc"]
                    min_vc = vc_min(min_vc, p["min_vc"])
                    want_gc = want_gc or p["want_gc"]
                upward = writer_sorted(
                    [notices]
                    + [arrivals[cpid]["notices"] for cpid in sorted(arrivals)]
                )
                parent = tree_parent(
                    self.team.pids,
                    self.team.pids.index(proc.pid),
                    tb.radix,
                )
                size = (
                    proc.notice_wire_bytes(len(upward))
                    + 2 * proc.vc_wire_bytes
                    + 8
                )
                proc.send(
                    mk.JOIN_DONE,
                    parent,
                    {
                        "pid": proc.pid,
                        "notices": upward,
                        "vc": proc.vc.snapshot(),
                        "min_vc": min_vc,
                        "want_gc": want_gc,
                    },
                    size=size,
                )
                continue
            size = proc.notice_wire_bytes(len(notices)) + proc.vc_wire_bytes + 8
            proc.send(
                mk.JOIN_DONE,
                TeamView.MASTER_PID,
                {
                    "pid": proc.pid,
                    "notices": notices,
                    "vc": proc.vc.snapshot(),
                    "want_gc": proc.wants_gc,
                },
                size=size,
            )

    def _fork_join(self, phase_name: str, args: Any) -> Generator:
        """One parallel construct: adaptation point, fork, region, join."""
        master = self.master
        # Seal the master's sequential-code writes first: the fork boundary
        # is a release, and an adaptation-point GC must not find an open
        # write set.
        master.close_interval()
        yield from self.at_adaptation_point()
        self.fork_seq += 1
        obs = self.sim.obs
        fork_t0 = self.sim.now
        self.sim.tracer.emit("tmk", "fork", f"#{self.fork_seq} {phase_name}")
        tb = master.tree_barrier
        if tb is not None:
            # Tree fork: the master only talks to its tree children; each
            # child re-forks its own subtree (see _slave_main).  A child's
            # payload carries what its subtree's knowledge floor is
            # missing — a superset of each member's need; receivers dedupe.
            tree_kids = tree_children(self.team.pids, 0, tb.radix)
            legs = []
            for cpid in tree_kids:
                notices = master.notices_unknown_to(tb.child_vc(cpid))
                size = (
                    master.notice_wire_bytes(len(notices))
                    + master.vc_wire_bytes
                    + 8 * self.team.nprocs
                    + 16
                )
                legs.append((
                    mk.FORK,
                    cpid,
                    {
                        "phase": phase_name,
                        "args": args,
                        "fork_seq": self.fork_seq,
                        "notices": notices,
                        "vc": master.vc.snapshot(),
                        "nprocs": self.team.nprocs,
                    },
                    size,
                ))
            master.send_fanout(legs)
        else:
            legs = []
            for pid in self.team.slave_pids:
                notices = master.notices_unknown_to(self.slave_vcs[pid])
                size = (
                    master.notice_wire_bytes(len(notices))
                    + master.vc_wire_bytes
                    + 8 * self.team.nprocs
                    + 16
                )
                legs.append((
                    mk.FORK,
                    pid,
                    {
                        "phase": phase_name,
                        "args": args,
                        "fork_seq": self.fork_seq,
                        "notices": notices,
                        "vc": master.vc.snapshot(),
                        "nprocs": self.team.nprocs,
                    },
                    size,
                ))
            master.send_fanout(legs)
        region = self.program.phase(phase_name)
        yield from region(self.master_ctx, master.pid, self.team.nprocs, args)
        master.close_interval()
        want_gc = master.wants_gc
        if tb is not None:
            # Tree join: one combined JOIN_DONE per tree child, folded with
            # a single run-batched ingestion (the flat fold's run sequence;
            # see treebarrier.writer_sorted).
            arrivals: Dict[int, dict] = {}
            for _ in tree_kids:
                msg = yield master.join_store.get()
                arrivals[msg.payload["pid"]] = msg.payload
            batched = writer_sorted(
                arrivals[cpid]["notices"] for cpid in sorted(arrivals)
            )
            if batched:
                master.apply_notices(batched, master.vc.snapshot())
            for cpid in sorted(arrivals):
                p = arrivals[cpid]
                master.vc.merge(p["vc"])
                tb.child_join_vcs[cpid] = p["min_vc"]
                want_gc = want_gc or p["want_gc"]
            if obs.enabled and tree_kids:
                obs.count("barrier.tree.rounds")
                obs.count("barrier.tree.folds")
                obs.count("barrier.tree.notices_folded", len(batched))
        else:
            for _ in self.team.slave_pids:
                msg = yield master.join_store.get()
                p = msg.payload
                master.apply_notices(p["notices"], p["vc"])
                self.slave_vcs[p["pid"]] = p["vc"]  # frozen snapshot; no copy needed
                want_gc = want_gc or p["want_gc"]
        self.sim.tracer.emit("tmk", "join", f"#{self.fork_seq} {phase_name}")
        if obs.enabled:
            obs.span(
                TRACK_MASTER,
                "fork_join",
                fork_t0,
                self.sim.now,
                category="region",
                phase=phase_name,
                fork=self.fork_seq,
            )
        if want_gc:
            yield from self.gc_at_fork_point()

    def gc_at_fork_point(self) -> Generator:
        """Master-coordinated GC while all slaves are in Tmk_wait."""
        master = self.master
        obs = self.sim.obs
        gc_t0 = self.sim.now
        self.sim.tracer.emit("dsm", "gc_start", f"fork#{self.fork_seq}")
        tb = master.tree_barrier
        if tb is not None:
            # Tree GC: relay the request down the tree; both done rounds
            # (flush, reset) aggregate one hop at a time, so the master
            # link carries radix control messages instead of N.
            gc_kids = tree_children(self.team.pids, 0, tb.radix)
            legs = []
            for cpid in gc_kids:
                notices = master.notices_unknown_to(tb.child_vc(cpid))
                size = (
                    master.notice_wire_bytes(len(notices))
                    + master.vc_wire_bytes
                    + 8
                )
                legs.append((
                    mk.GC_REQ,
                    cpid,
                    {"notices": notices, "vc": master.vc.snapshot()},
                    size,
                ))
            master.send_fanout(legs)
            yield from master.gc_flush()
            for _ in gc_kids:
                yield master.gc_done_store.get()
            master.send_fanout([(mk.GC_GO, cpid, {}, 4) for cpid in gc_kids])
            master.gc_reset()
            # every subtree confirms its reset before the caller may touch
            # team-wide state (adaptation rebuilds the pid space next)
            for _ in gc_kids:
                yield master.gc_done_store.get()
        else:
            legs = []
            for pid in self.team.slave_pids:
                notices = master.notices_unknown_to(self.slave_vcs[pid])
                size = master.notice_wire_bytes(len(notices)) + master.vc_wire_bytes + 8
                legs.append((
                    mk.GC_REQ,
                    pid,
                    {"notices": notices, "vc": master.vc.snapshot()},
                    size,
                ))
            master.send_fanout(legs)
            yield from master.gc_flush()
            for _ in self.team.slave_pids:
                yield master.gc_done_store.get()
            master.send_fanout(
                [(mk.GC_GO, pid, {}, 4) for pid in self.team.slave_pids]
            )
            master.gc_reset()
            # wait for every slave to confirm its reset before the caller may
            # touch team-wide state (adaptation rebuilds the pid space next)
            for _ in self.team.slave_pids:
                yield master.gc_done_store.get()
        self.slave_vcs = {
            pid: VectorClock.zeros(self.team.nprocs) for pid in self.team.slave_pids
        }
        if obs.enabled:
            obs.span(
                TRACK_MASTER,
                "gc.fork_point",
                gc_t0,
                self.sim.now,
                category="dsm",
                fork=self.fork_seq,
            )
            obs.count("gc.rounds")
