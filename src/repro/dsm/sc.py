"""A sequentially-consistent, IVY-style write-invalidate DSM baseline.

The paper builds on TreadMarks' lazy release consistency; its intellectual
baseline is the classic Li & Hudak shared-virtual-memory protocol ([15] in
the paper): a fixed manager keeps, per page, the current *owner* and the
*copyset*; reads fetch a shared copy from the owner, writes invalidate
every copy and transfer ownership.  No twins, no diffs, no write notices —
and therefore page ping-pong under false sharing, which is precisely what
LRC's multiple-writer protocol eliminates.

This module exists for the ablation bench ("why lazy release consistency",
``benchmarks/test_sc_baseline.py``): the same kernels run under both
protocols and the traffic difference is measured.  The SC runtime is a
drop-in :class:`ScRuntime` for the non-adaptive system; adaptivity is out
of scope for the baseline (the paper's contribution assumes LRC's GC).

The fault side rides the same vectorized infrastructure as the LRC
engine so that large-team baseline comparisons measure the *protocol*,
not the baseline's Python overhead: page sets come from the shared
epoch-invalidated :class:`~repro.dsm.plans.PlanCache` (one memoized
lookup per recurring access instead of per-range page arithmetic), page
payloads are the contiguous :class:`~repro.dsm.memory.LocalStore`
buffers, and already-satisfied pages (valid copy / exclusive hold) skip
the fault generator machinery entirely — a skip is observationally
identical because the fault path would return without yielding.

Protocol messages (manager = master, as for locks):

* ``SC_READ_REQ`` / ``SC_WRITE_REQ`` — fault requests to the manager;
* ``SC_FETCH`` / ``SC_FETCH_EX`` — manager asks the owner to ship the page
  (shared / with ownership transfer) straight to the faulting process,
  which receives it as the reply to its original request (3-hop path);
* ``SC_INVALIDATE`` — manager invalidates a copyset member (acked).
"""

from __future__ import annotations

from typing import Dict, Generator, Set

from ..errors import ProtocolError
from ..network import message as mk
from ..network.message import Message
from ..simcore import Resource
from .memory import SharedSegment
from .page import AccessMode
from .plans import build_plan
from .process import DsmProcess
from .runtime import TmkRuntime

SC_READ_REQ = "sc_read_req"
SC_WRITE_REQ = "sc_write_req"
SC_FETCH = "sc_fetch"
SC_FETCH_EX = "sc_fetch_ex"
SC_INVALIDATE = "sc_invalidate"
SC_INVALIDATE_ACK = "sc_invalidate_ack"
SC_GRANT = "sc_grant"
SC_DATA = "sc_data"


class ScDirectory:
    """The manager's per-page owner/copyset table."""

    def __init__(self, space):
        self.space = space
        self._entries: Dict[int, dict] = {}

    def entry(self, page: int) -> dict:
        state = self._entries.get(page)
        if state is None:
            home = self.space.segment_of_page(page).home
            state = {"owner": home, "copies": {home}}
            self._entries[page] = state
        return state


class ScProcess(DsmProcess):
    """A DSM process speaking the write-invalidate protocol."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: pages this process may currently write (exclusive mode)
        self._sc_exclusive: Set[int] = set()
        # the manager's directory lives on the master instance
        self.sc_directory = None
        #: per-page mutual exclusion at the manager: fault resolution
        #: involves round trips, and two faults on one page must serialize
        self._sc_page_locks: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # fault side
    # ------------------------------------------------------------------
    def access(self, seg: SharedSegment, reads=(), writes=()) -> Generator:
        """SC faults: no intervals, no twins — ownership and copies only."""
        yield from self.access_batch([(seg, reads, writes)])

    def access_batch(self, specs) -> Generator:
        """Fault several segments' accesses with ONE atomic write set.

        The program's stores land when the (last) access generator returns,
        so every write page — across all segments a region body touches —
        must be exclusive simultaneously at that instant.  A real SC DSM
        faults per store; batching the faults opens a steal window that the
        final re-acquisition loop closes.

        Page sets come from the shared :class:`~repro.dsm.plans.PlanCache`
        (iterative kernels re-issue identical range tuples every sweep),
        and pages already in the needed state skip the fault generator —
        both bitwise-neutral, see the module docstring.
        """
        page_size = self.cfg.dsm.page_size
        plan_cache = self.space.plan_cache
        #: page -> is_write, OR-merged across specs (segments' page id
        #: ranges are disjoint, but one segment may appear twice).
        combined: Dict[int, bool] = {}
        for seg, reads, writes in specs:
            reads = tuple(reads)
            writes = tuple(writes)
            if self._plan_cache_enabled:
                plan = plan_cache.lookup(seg, reads, writes, page_size)
            else:
                plan = build_plan(seg, reads, writes, page_size)
            for page, is_write in plan.pages:
                if is_write:
                    combined[page] = True
                elif page not in combined:
                    combined[page] = False
        stall = self.stall_hook
        exclusive = self._sc_exclusive
        table_get = self.table._entries.get
        epoch = self.epoch
        write_pages = sorted(p for p, w in combined.items() if w)
        for page in sorted(combined):
            write = combined[page]
            if stall is not None:
                yield from stall()
            # Fast path: already exclusive (write) or valid (read) — the
            # fault generator would return without yielding.
            pte = table_get(page)
            if pte is not None:
                if write:
                    if page in exclusive:
                        pte.last_access_epoch = epoch
                        continue
                elif pte.valid:
                    pte.last_access_epoch = epoch
                    continue
            yield from self._sc_ensure(page, write=write)
        for attempt in range(200):
            missing = [p for p in write_pages if p not in self._sc_exclusive]
            if not missing:
                break
            if attempt:
                # pid-staggered backoff breaks the symmetric two-writer
                # ping-pong (each needing the same pair of shared pages)
                yield self.sim.timeout(
                    min(attempt, 16) * 150e-6 * (1.0 + 0.13 * self.pid)
                )
            for page in missing:
                yield from self._sc_ensure(page, write=True)
        else:
            raise ProtocolError(
                f"{self.name}: SC write-set acquisition livelocked on {missing}"
            )

    def _sc_ensure(self, page: int, write: bool) -> Generator:
        pte = self._pte(page)
        pte.last_access_epoch = self.epoch
        if write:
            if page in self._sc_exclusive:
                return
            t0 = self.sim.now
            self.stats.write_faults += 1
            # the requester-side fault overhead is charged up front so that
            # grant receipt, state change, and return to the program are one
            # atomic instant — otherwise contending writers steal the page
            # inside the handling window and nobody ever converges
            yield self.sim.timeout(self.cfg.network.page_service_client)
            reply = yield self.request(SC_WRITE_REQ, 0, {"page": page}, size=8)
            if self.materialized and reply.payload.get("data") is not None:
                self.store.page_view(page)[:] = reply.payload["data"]
            if reply.payload.get("data") is not None:
                self.stats.page_fetches += 1
            pte.valid = True
            pte.mode = AccessMode.WRITE
            self._sc_exclusive.add(page)
            self.stats.fault_wait_time += self.sim.now - t0
        else:
            if pte.valid:
                return
            t0 = self.sim.now
            self.stats.read_faults += 1
            yield self.sim.timeout(self.cfg.network.page_service_client)
            reply = yield self.request(SC_READ_REQ, 0, {"page": page}, size=8)
            if self.materialized and reply.payload.get("data") is not None:
                self.store.page_view(page)[:] = reply.payload["data"]
            if reply.payload.get("data") is not None:
                self.stats.page_fetches += 1
            pte.valid = True
            pte.mode = AccessMode.READ
            self.stats.fault_wait_time += self.sim.now - t0

    # Under SC there are no intervals/notices; releases are pure syncs.
    def close_interval(self):
        return []

    def sync_notices(self):
        return []

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def _handle_request(self, msg: Message) -> Generator:
        if msg.kind == SC_READ_REQ:
            yield from self._sc_manage(msg, write=False)
        elif msg.kind == SC_WRITE_REQ:
            yield from self._sc_manage(msg, write=True)
        elif msg.kind in (SC_FETCH, SC_FETCH_EX):
            yield from self._sc_serve_fetch(msg)
        elif msg.kind == SC_INVALIDATE:
            yield from self._sc_invalidate(msg)
        else:
            yield from super()._handle_request(msg)

    def _sc_manage(self, msg: Message, write: bool) -> Generator:
        """Manager: resolve a fault against the directory."""
        if not self.is_master:
            raise ProtocolError(f"{self.name}: SC fault request at a non-manager")
        page = msg.payload["page"]
        requester = msg.src_pid
        lock = self._sc_page_locks.get(page)
        if lock is None:
            lock = Resource(self.sim, capacity=1, name=f"scpage{page}")
            self._sc_page_locks[page] = lock
        yield lock.acquire()
        try:
            yield from self._sc_resolve(msg, page, requester, write)
        finally:
            lock.release()

    def _sc_resolve(self, msg: Message, page: int, requester: int, write: bool) -> Generator:
        state = self.sc_directory.entry(page)
        owner = state["owner"]

        if write:
            # invalidate every other copy, with acks (SC requires it)
            to_invalidate = sorted(state["copies"] - {requester, owner})
            for pid in to_invalidate:
                yield self.request(SC_INVALIDATE, pid, {"page": page}, size=8)
            if owner == requester:
                # upgrade in place (requester already holds the only copy)
                self.node.nic.send(
                    msg.reply(SC_GRANT, size_bytes=8, payload={"data": None})
                )
            else:
                data = yield from self._sc_obtain(page, owner, exclusive=True)
                self.node.nic.send(
                    msg.reply(SC_DATA, size_bytes=self.cfg.dsm.page_size,
                              payload={"data": data})
                )
            state["owner"] = requester
            state["copies"] = {requester}
        else:
            data = yield from self._sc_obtain(page, owner, exclusive=False)
            self.node.nic.send(
                msg.reply(SC_DATA, size_bytes=self.cfg.dsm.page_size,
                          payload={"data": data})
            )
            state["copies"].add(requester)

    def _sc_obtain(self, page: int, owner: int, exclusive: bool) -> Generator:
        """Manager-side: get the page bytes from the owner (or locally).

        All data and invalidations then flow out of the manager node, whose
        per-destination FIFO delivery makes a later invalidation unable to
        overtake an earlier grant.
        """
        if owner == self.pid:
            pte = self._pte(page)
            while not pte.valid:
                # our own grant may still be inbound (we are owner-designate)
                yield self.sim.timeout(50e-6)
            yield from self.node.service(self.cfg.network.page_service_server)
            data = self.store.page_view(page).copy() if self.materialized else None
            if exclusive:
                pte.valid = False
                pte.mode = AccessMode.NONE
            else:
                # shipping a shared copy demotes our exclusive hold: the next
                # local write must fault so the new copy gets invalidated
                pte.mode = AccessMode.READ
            self._sc_exclusive.discard(page)
            return data
        kind = SC_FETCH_EX if exclusive else SC_FETCH
        reply = yield self.request(kind, owner, {"page": page}, size=8)
        return reply.payload["data"]

    def _sc_serve_fetch(self, msg: Message) -> Generator:
        """Owner: ship the page back to the manager."""
        page = msg.payload["page"]
        pte = self._pte(page)
        while not pte.valid:
            # our own grant may still be inbound (owner-designate window)
            yield self.sim.timeout(50e-6)
        yield from self.node.service(self.cfg.network.page_service_server)
        data = self.store.page_view(page).copy() if self.materialized else None
        if msg.kind == SC_FETCH_EX:
            pte.valid = False
            pte.mode = AccessMode.NONE
            self._sc_exclusive.discard(page)
        else:
            # shipping a shared copy demotes any exclusive hold
            self._sc_exclusive.discard(page)
            pte.mode = AccessMode.READ
        self.node.nic.send(
            msg.reply(SC_DATA, size_bytes=self.cfg.dsm.page_size,
                      payload={"data": data})
        )

    def _sc_invalidate(self, msg: Message) -> Generator:
        page = msg.payload["page"]
        pte = self._pte(page)
        pte.valid = False
        pte.mode = AccessMode.NONE
        self._sc_exclusive.discard(page)
        yield from self.node.service(25e-6)
        self.node.nic.send(msg.reply(SC_INVALIDATE_ACK, size_bytes=4))


class ScRuntime(TmkRuntime):
    """The fork/join runtime over the write-invalidate baseline DSM."""

    PROCESS_CLS = ScProcess

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        directory = ScDirectory(self.space)
        for proc in self.procs.values():
            proc.sc_directory = directory
