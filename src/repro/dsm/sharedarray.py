"""Ergonomic shared-array handles over DSM segments.

A :class:`SharedArray` wraps a :class:`~repro.dsm.memory.SharedSegment`
and converts array-level slices (rows, element ranges, arbitrary index
lists) into the byte ranges :meth:`DsmProcess.access` consumes.  The same
handle also exposes the materialized numpy view, so application kernels
read and write real data through the DSM.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import DsmError
from .memory import SharedSegment
from .ranges import Range, normalize


class SharedArray:
    """A typed, shaped view of one shared segment."""

    def __init__(self, seg: SharedSegment):
        if not seg.shape:
            raise DsmError(f"segment {seg.name!r} has no array shape")
        self.seg = seg
        self.shape = seg.shape
        self.dtype = np.dtype(seg.dtype)
        self.itemsize = self.dtype.itemsize
        #: Bytes of one row (C-order leading dimension).
        self.row_bytes = int(np.prod(seg.shape[1:], dtype=np.int64)) * self.itemsize

    @property
    def name(self) -> str:
        return self.seg.name

    @property
    def nbytes(self) -> int:
        return self.seg.nbytes

    @property
    def nrows(self) -> int:
        return self.shape[0]

    # -- byte-range builders ------------------------------------------------
    def full(self) -> List[Range]:
        """The whole array."""
        return [(0, self.seg.nbytes)]

    def rows(self, r0: int, r1: int) -> List[Range]:
        """Rows ``[r0, r1)`` of a C-ordered array (contiguous)."""
        if not 0 <= r0 <= r1 <= self.nrows:
            raise DsmError(f"rows [{r0}, {r1}) out of bounds for {self.name!r}")
        return [(r0 * self.row_bytes, r1 * self.row_bytes)] if r1 > r0 else []

    def row(self, r: int) -> List[Range]:
        return self.rows(r, r + 1)

    def elements(self, i0: int, i1: int) -> List[Range]:
        """Flat elements ``[i0, i1)`` (1-D addressing)."""
        n = int(np.prod(self.shape, dtype=np.int64))
        if not 0 <= i0 <= i1 <= n:
            raise DsmError(f"elements [{i0}, {i1}) out of bounds for {self.name!r}")
        return [(i0 * self.itemsize, i1 * self.itemsize)] if i1 > i0 else []

    def element_set(self, indices: Iterable[int]) -> List[Range]:
        """Arbitrary flat element indices (irregular access, e.g. NBF).

        Vectorized: sort + dedupe the indices and coalesce consecutive
        runs in numpy, instead of materializing one per-element range and
        normalizing — NBF's partner lists hit this with thousands of
        indices per access.  Output ranges are identical to
        ``normalize([(i*s, (i+1)*s) for i in indices])``.
        """
        idx = np.unique(np.fromiter(indices, dtype=np.int64))
        if idx.size == 0:
            return []
        # Run boundaries: positions where the next index is not prev+1.
        breaks = np.flatnonzero(np.diff(idx) > 1)
        starts = idx[np.concatenate(([0], breaks + 1))]
        ends = idx[np.concatenate((breaks, [idx.size - 1]))] + 1
        s = self.itemsize
        return [(int(a) * s, int(b) * s) for a, b in zip(starts, ends)]

    def block(self, pid: int, nprocs: int) -> Tuple[int, int]:
        """The block row partition ``[lo, hi)`` of process ``pid``.

        This is the partitioning code the OpenMP compiler emits: it depends
        only on (pid, nprocs), so re-running it after an adaptation
        re-partitions the iteration (and data) space.
        """
        rows = self.nrows
        base, extra = divmod(rows, nprocs)
        lo = pid * base + min(pid, extra)
        hi = lo + base + (1 if pid < extra else 0)
        return lo, hi

    # -- materialized access --------------------------------------------------
    def view(self, ctx) -> np.ndarray:
        """The local materialized copy, shaped."""
        return ctx.array(self.seg)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SharedArray {self.name} {self.shape} {self.dtype}>"


def partition_ranges(total: int, nprocs: int) -> List[Tuple[int, int]]:
    """Block partition of ``total`` items over ``nprocs`` (the OpenMP static
    schedule); returns one ``(lo, hi)`` per pid."""
    base, extra = divmod(total, nprocs)
    out = []
    lo = 0
    for pid in range(nprocs):
        hi = lo + base + (1 if pid < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out
