"""Per-process DSM statistics.

Tracks the quantities Table 1 reports (page transfers, diffs, messages are
counted by the network layer; here we track protocol-level activity) plus
timing breakdowns used by the adaptation-cost analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class DsmStats:
    """Counters of one DSM process (simulated quantities)."""

    read_faults: int = 0
    write_faults: int = 0
    page_fetches: int = 0
    diff_requests: int = 0
    diffs_fetched: int = 0
    diffs_created: int = 0
    twins_created: int = 0
    intervals_closed: int = 0
    #: Interval-log records dropped by incremental pruning (host-side
    #: memory bounding — see ``PerfParams.interval_prune``; never affects
    #: simulated times or traffic).
    intervals_pruned: int = 0
    barriers: int = 0
    locks_acquired: int = 0
    gcs: int = 0
    #: Simulated seconds spent computing.
    compute_time: float = 0.0
    #: Simulated seconds blocked on page/diff fetches.
    fault_wait_time: float = 0.0
    #: Simulated seconds blocked in barriers (arrival to release).
    barrier_wait_time: float = 0.0
    #: Simulated seconds blocked acquiring locks.
    lock_wait_time: float = 0.0

    def add(self, other: "DsmStats") -> "DsmStats":
        """Elementwise sum (for team-wide aggregation)."""
        out = DsmStats()
        for f in fields(DsmStats):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def copy(self) -> "DsmStats":
        return DsmStats(**{f.name: getattr(self, f.name) for f in fields(DsmStats)})

    def delta(self, earlier: "DsmStats") -> "DsmStats":
        """Activity since ``earlier``."""
        out = DsmStats()
        for f in fields(DsmStats):
            setattr(out, f.name, getattr(self, f.name) - getattr(earlier, f.name))
        return out


@dataclass
class TeamStats:
    """Aggregate of a set of process stats plus run-level quantities."""

    per_process: dict = field(default_factory=dict)

    def total(self) -> DsmStats:
        acc = DsmStats()
        for stats in self.per_process.values():
            acc = acc.add(stats)
        return acc
