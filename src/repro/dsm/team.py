"""Team membership view.

A :class:`TeamView` maps process ids (0..nprocs-1, with 0 the master) to
node ids.  Every DSM process holds a reference to the *same* view object;
it is mutated only by the master at adaptation points, when every other
process is blocked — mirroring the fact that in the real system the new
membership travels in the ``Tmk_fork`` message before anyone resumes.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import AdaptationError


class TeamView:
    """pid <-> node mapping of the current team."""

    MASTER_PID = 0

    def __init__(self, node_ids: List[int]):
        if not node_ids:
            raise AdaptationError("a team needs at least one node")
        self._node_of: Dict[int, int] = dict(enumerate(node_ids))
        self.generation = 0

    @property
    def nprocs(self) -> int:
        return len(self._node_of)

    @property
    def pids(self) -> List[int]:
        return sorted(self._node_of)

    @property
    def slave_pids(self) -> List[int]:
        return [p for p in sorted(self._node_of) if p != self.MASTER_PID]

    def node_of(self, pid: int) -> int:
        try:
            return self._node_of[pid]
        except KeyError:
            raise AdaptationError(f"no process with pid {pid}") from None

    def pid_of_node(self, node_id: int) -> int:
        for pid, nid in self._node_of.items():
            if nid == node_id:
                return pid
        raise AdaptationError(f"no process on node {node_id}")

    def has_node(self, node_id: int) -> bool:
        return node_id in self._node_of.values()

    # -- mutations (master only, at adaptation points) ----------------------
    def set_mapping(self, node_of: Dict[int, int]) -> None:
        """Replace the whole pid->node mapping (id reassignment)."""
        if TeamView.MASTER_PID not in node_of:
            raise AdaptationError("team must retain the master pid 0")
        expected = set(range(len(node_of)))
        if set(node_of) != expected:
            raise AdaptationError(f"pids must be dense 0..n-1, got {sorted(node_of)}")
        if len(set(node_of.values())) != len(node_of):
            raise AdaptationError("two pids mapped to the same node")
        self._node_of = dict(node_of)
        self.generation += 1

    def move_pid(self, pid: int, new_node: int) -> None:
        """Re-home one pid (migration) without changing the pid set."""
        if pid not in self._node_of:
            raise AdaptationError(f"no process with pid {pid}")
        self._node_of[pid] = new_node
        self.generation += 1

    def snapshot(self) -> Dict[int, int]:
        return dict(self._node_of)
