"""Tree-structured barrier with write-notice combining (PROTOCOL.md §11).

The paper's barrier is all-to-one: every process sends its write notices
to the master, which folds them one arrival at a time and fans the
releases back out (``dsm/barrier.py``).  That puts O(N) payload-carrying
messages on the master's links per barrier — exactly the "max traffic per
link" term the paper's §5.4 cost law says dominates — and it stops
scaling long before 128 nodes.

With ``PerfParams.barrier_tree`` on, the team synchronizes through a
``barrier_radix``-ary **combining tree** laid out heap-style over the
team's pid order: the process at position ``i`` parents positions
``k·i+1 … k·i+k``, with the master (position 0) as the root.

Up-sweep
    Each process closes its interval, waits for one combined arrival per
    child, folds the children's subtree notices into its own consistency
    index with **one** run-batched ingestion (the PR-5 per-writer-run
    path; interior folds therefore dedupe per-writer runs exactly like
    the master's flat fold), and forwards a single combined arrival — all
    new notices of its subtree, grouped by writer in ascending-writer
    order — to its tree parent.

Down-sweep
    The root decides the release (and whether a GC round follows) exactly
    like the flat manager; every parent sends each child the notices
    unknown to that child's *reported* arrival clock, and children relay
    downward after applying.  A GC round relays the flush-done / go
    handshake through the same tree, so neither phase ever puts more than
    ``radix`` payload messages on one process's links.

Because each writer's notices travel through exactly one subtree and
every fold consumes ascending-writer runs, the root's fold processes the
same per-writer run sequence the flat manager would — the property
``tests/dsm/test_tree_barrier.py`` checks for random arrival orders and
radices.  Tree runs are *not* bitwise identical to flat runs (message
patterns and modelled times differ, which is the point); they are
internally deterministic: same config, same digest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List

from ..network import message as mk
from ..simcore.resources import Store
from .intervals import WriteNotice

if TYPE_CHECKING:  # pragma: no cover
    from .process import DsmProcess
    from .vectorclock import VectorClock


def tree_children(pids: List[int], pos: int, radix: int) -> List[int]:
    """Child pids of the process at position ``pos`` in the heap layout."""
    lo = radix * pos + 1
    return list(pids[lo:lo + radix])


def tree_parent(pids: List[int], pos: int, radix: int) -> int:
    """Parent pid of the process at position ``pos`` (pos > 0)."""
    return pids[(pos - 1) // radix]


def subtree_pids(pids: List[int], pos: int, radix: int) -> List[int]:
    """All pids in the subtree rooted at position ``pos``."""
    out: List[int] = []
    stack = [pos]
    n = len(pids)
    while stack:
        i = stack.pop()
        out.append(pids[i])
        lo = radix * i + 1
        stack.extend(range(lo, min(lo + radix, n)))
    return out


def vc_min(a: "VectorClock", b: "VectorClock") -> "VectorClock":
    """Elementwise minimum — the knowledge floor of a subtree."""
    from .vectorclock import VectorClock

    return VectorClock(
        [x if x <= y else y for x, y in zip(a.entries, b.entries)]
    )


def writer_sorted(chunks) -> List[WriteNotice]:
    """Concatenate notice chunks into ascending-writer per-writer runs.

    Each chunk is already grouped by writer with every writer's run
    strictly ascending (a ``sync_notices`` output or a combined subtree
    arrival), and a writer appears in at most one chunk — so regrouping
    by writer preserves run order and yields the canonical form the flat
    fold consumes.
    """
    groups: Dict[int, List[WriteNotice]] = {}
    for chunk in chunks:
        for n in chunk:
            group = groups.get(n.proc)
            if group is None:
                group = groups[n.proc] = []
            group.append(n)
    return [n for w in sorted(groups) for n in groups[w]]


class TreeBarrier:
    """Per-process combining-tree barrier state machine."""

    def __init__(self, proc: "DsmProcess"):
        self.proc = proc
        self.radix = proc.cfg.perf.barrier_radix
        self.round = 0
        #: Combined arrivals from our children (fed by the server loop).
        self.arrive_store = Store(proc.sim, name=f"{proc.name}.treearrive")
        #: Per-tree-child subtree knowledge floor (elementwise-min clock)
        #: reported at the last join — what the next fork/GC relay must
        #: top up.  Cleared on every epoch reset and team rebuild; a
        #: missing entry reads as the zero clock.
        self.child_join_vcs: Dict[int, "VectorClock"] = {}

    def on_arrive(self, msg) -> None:
        """A child's BARRIER_TREE_ARRIVE (called from the server loop)."""
        self.arrive_store.put(msg)

    def reset(self) -> None:
        """Drop cross-epoch tree state (GC reset / team rebuild)."""
        self.child_join_vcs.clear()

    def child_vc(self, pid: int) -> "VectorClock":
        """The stored knowledge floor of ``pid``'s subtree (zeros default)."""
        from .vectorclock import VectorClock

        width = self.proc.team.nprocs
        vc = self.child_join_vcs.get(pid)
        if vc is None or vc.width != width:
            return VectorClock.zeros(width)
        return vc

    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        """One barrier round; runs in the process's main coroutine."""
        proc = self.proc
        pids = proc.team.pids
        pos = pids.index(proc.pid)
        radix = self.radix
        children = tree_children(pids, pos, radix)
        own_notices = proc.sync_notices()
        this_round = self.round
        self.round += 1

        # -- up-sweep: collect and fold the children's subtrees ----------
        arrivals: Dict[int, dict] = {}
        for _ in children:
            msg = yield self.arrive_store.get()
            p = msg.payload
            arrivals[p["pid"]] = p

        batched = writer_sorted(
            arrivals[cpid]["notices"] for cpid in sorted(arrivals)
        )
        if batched:
            # One run-batched ingestion per round (the PR-5 path); the
            # clock merges below are elementwise max, hence order-free.
            proc.apply_notices(batched, proc.vc.snapshot())
        for cpid in sorted(arrivals):
            proc.vc.merge(arrivals[cpid]["vc"])
        subtree_gc = proc.wants_gc or any(
            p["want_gc"] for p in arrivals.values()
        )
        obs = proc.sim.obs
        if obs.enabled and children:
            obs.count("barrier.tree.folds")
            obs.count("barrier.tree.notices_folded", len(batched))

        if pos == 0:
            # -- root: decide the release, exactly like the flat manager.
            mgr = proc.barrier_mgr
            do_gc = subtree_gc
            if mgr is not None and mgr.force_gc:
                do_gc = True
                mgr.force_gc = False
            if obs.enabled:
                obs.count("barrier.tree.rounds")
        else:
            # -- forward one combined arrival for our whole subtree.
            upward = writer_sorted(
                [own_notices]
                + [arrivals[cpid]["notices"] for cpid in sorted(arrivals)]
            )
            parent = tree_parent(pids, pos, radix)
            size = proc.notice_wire_bytes(len(upward)) + proc.vc_wire_bytes + 8
            proc.send(
                mk.BARRIER_TREE_ARRIVE,
                parent,
                {
                    "pid": proc.pid,
                    "round": this_round,
                    "notices": upward,
                    "vc": proc.vc.snapshot(),
                    "want_gc": subtree_gc,
                },
                size=size,
            )
            msg = yield proc.main_inbox.recv(
                match=lambda m: m.kind == mk.BARRIER_TREE_RELEASE
            )
            payload = msg.payload
            proc.apply_notices(payload["notices"], payload["vc"])
            do_gc = payload["gc"]

        # -- down-sweep: release our children with what each is missing.
        # The legs are issued back-to-back, so the wave flies as one
        # batched flight (PROTOCOL.md §13).
        legs = []
        for cpid in sorted(arrivals):
            notices = proc.notices_unknown_to(arrivals[cpid]["vc"])
            size = proc.notice_wire_bytes(len(notices)) + proc.vc_wire_bytes + 8
            legs.append((
                mk.BARRIER_TREE_RELEASE,
                cpid,
                {
                    "round": this_round,
                    "notices": notices,
                    "vc": proc.vc.snapshot(),
                    "gc": do_gc,
                },
                size,
            ))
        proc.send_fanout(legs)

        if do_gc:
            yield from self._gc_round(pids, pos, children)

    # ------------------------------------------------------------------
    def _gc_round(self, pids: List[int], pos: int,
                  children: List[int]) -> Generator:
        """Tree-relayed GC: flush up-sweep, go down-sweep, reset.

        Same phases as the flat round (everyone flushes, the master
        releases the epoch), but flush-done reports aggregate one hop at
        a time and the go fans down the tree — the master handles
        ``radix`` control messages instead of N.
        """
        proc = self.proc
        yield from proc.gc_flush()
        for _ in children:
            yield proc.gc_done_store.get()
        if pos != 0:
            parent = tree_parent(pids, pos, self.radix)
            proc.send(
                mk.GC_DONE, parent, {"pid": proc.pid, "phase": "flush"}, size=8
            )
            yield proc.main_inbox.recv(match=lambda m: m.kind == mk.GC_GO)
        proc.send_fanout([(mk.GC_GO, cpid, {}, 4) for cpid in children])
        proc.gc_reset()

    # ------------------------------------------------------------------
    def gc_fork_point_participate(self, payload: dict) -> Generator:
        """Slave side of a tree-relayed fork-point GC (GC_REQ arm).

        Mirrors :meth:`DsmProcess.gc_participate` with ``ack=True`` but
        relays the request to our tree children and aggregates both done
        rounds (flush and reset) one hop at a time, so the master link
        carries ``radix`` control messages instead of N.
        """
        proc = self.proc
        proc.apply_notices(payload["notices"], payload["vc"])
        pids = proc.team.pids
        pos = pids.index(proc.pid)
        children = tree_children(pids, pos, self.radix)
        legs = []
        for cpid in children:
            notices = proc.notices_unknown_to(self.child_vc(cpid))
            size = proc.notice_wire_bytes(len(notices)) + proc.vc_wire_bytes + 8
            legs.append((
                mk.GC_REQ,
                cpid,
                {"notices": notices, "vc": proc.vc.snapshot()},
                size,
            ))
        proc.send_fanout(legs)
        parent = tree_parent(pids, pos, self.radix)
        yield from proc.gc_flush()
        for _ in children:
            yield proc.gc_done_store.get()
        proc.send(
            mk.GC_DONE, parent, {"pid": proc.pid, "phase": "flush"}, size=8
        )
        yield proc.main_inbox.recv(match=lambda m: m.kind == mk.GC_GO)
        proc.send_fanout([(mk.GC_GO, cpid, {}, 4) for cpid in children])
        proc.gc_reset()
        for _ in children:
            yield proc.gc_done_store.get()
        proc.send(
            mk.GC_DONE, parent, {"pid": proc.pid, "phase": "reset"}, size=8
        )
