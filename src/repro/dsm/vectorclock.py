"""Vector timestamps for lazy release consistency.

Every process increments its own entry when it closes an *interval* (at a
release: barrier arrival or lock release).  Happens-before between
intervals is vector-clock dominance.  Garbage collection (§4.1) discards
all interval bookkeeping, so clocks are reset at every GC *epoch* — this is
the property the adaptive system exploits to keep adaptation cheap, and it
also means a clock only ever spans one epoch with a fixed team size.

Clocks are *interned* on the protocol hot path: :meth:`snapshot` returns a
frozen view sharing the owner's entry list, and every mutator is
copy-on-write, detaching the owner from outstanding snapshots before
writing.  One interval's diffs, write notices, and sync payloads all share
a single snapshot instead of the one-copy-per-object scheme this replaces
(~34k list copies per quick Gauss run).  The derived sort key is cached
per clock and invalidated by mutation, so happens-before ordering of large
diff sets stops re-reducing the entry list.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class VectorClock:
    """A fixed-width vector timestamp with copy-on-write snapshots."""

    __slots__ = ("entries", "_shared", "_key")

    def __init__(self, entries: Iterable[int]):
        self.entries = list(entries)
        self._shared = False
        self._key = None

    @classmethod
    def zeros(cls, width: int) -> "VectorClock":
        """The zero clock for a team of ``width`` processes."""
        return cls([0] * width)

    @property
    def width(self) -> int:
        return len(self.entries)

    def copy(self) -> "VectorClock":
        """An independent (never-shared) copy."""
        return VectorClock(self.entries)

    def snapshot(self) -> "VectorClock":
        """A frozen view of the current value, sharing storage.

        The snapshot stays valid forever: every mutator on this clock (or
        on any other snapshot of it) copies the entry list first.  This is
        what diffs, write notices, and sync payloads carry instead of a
        private copy.
        """
        self._shared = True
        snap = VectorClock.__new__(VectorClock)
        snap.entries = self.entries
        snap._shared = True
        snap._key = self._key
        return snap

    def tick(self, slot: int) -> None:
        """Increment our own entry (interval close)."""
        entries = self.entries
        if self._shared:
            entries = self.entries = list(entries)
            self._shared = False
        entries[slot] += 1
        self._key = None

    def merge(self, other: "VectorClock") -> None:
        """Elementwise max with ``other`` (seen-knowledge union)."""
        if other.width != self.width:
            raise ValueError(f"clock width mismatch: {self.width} vs {other.width}")
        # Rebinds the list, so outstanding snapshots keep the old value.
        # Conditional expression instead of max(): this runs once per
        # received sync message and the call dispatch dominates.
        self.entries = [a if a >= b else b for a, b in zip(self.entries, other.entries)]
        self._shared = False
        self._key = None

    def advance(self, slot: int, seq: int) -> None:
        """Raise one entry to at least ``seq`` (diff/notice application)."""
        entries = self.entries
        if entries[slot] >= seq:
            return
        if self._shared:
            entries = self.entries = list(entries)
            self._shared = False
        entries[slot] = seq
        self._key = None

    def covers(self, other: "VectorClock") -> bool:
        """True if every entry >= the other's (other happened-before-or-equal)."""
        if other.width != self.width:
            raise ValueError(f"clock width mismatch: {self.width} vs {other.width}")
        return all(a >= b for a, b in zip(self.entries, other.entries))

    def covers_interval(self, proc: int, seq: int) -> bool:
        """True if interval ``seq`` of process ``proc`` is reflected here."""
        return self.entries[proc] >= seq

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash(tuple(self.entries))

    def __repr__(self) -> str:
        return f"VC{self.entries}"

    def sort_key(self) -> Sequence[int]:
        """Deterministic total order consistent with happens-before.

        Concurrent clocks are ordered by entry tuple; concurrent intervals
        in our protocol have disjoint write ranges, so any consistent order
        is a correct diff application order.  Cached per clock value
        (mutators invalidate), which matters when ordering thousands of
        diffs that share a handful of interval snapshots.
        """
        key = self._key
        if key is None:
            key = self._key = (sum(self.entries), tuple(self.entries))
        return key
