"""Vector timestamps for lazy release consistency.

Every process increments its own entry when it closes an *interval* (at a
release: barrier arrival or lock release).  Happens-before between
intervals is vector-clock dominance.  Garbage collection (§4.1) discards
all interval bookkeeping, so clocks are reset at every GC *epoch* — this is
the property the adaptive system exploits to keep adaptation cheap, and it
also means a clock only ever spans one epoch with a fixed team size.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class VectorClock:
    """A fixed-width vector timestamp."""

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[int]):
        self.entries = list(entries)

    @classmethod
    def zeros(cls, width: int) -> "VectorClock":
        """The zero clock for a team of ``width`` processes."""
        return cls([0] * width)

    @property
    def width(self) -> int:
        return len(self.entries)

    def copy(self) -> "VectorClock":
        return VectorClock(self.entries)

    def tick(self, slot: int) -> None:
        """Increment our own entry (interval close)."""
        self.entries[slot] += 1

    def merge(self, other: "VectorClock") -> None:
        """Elementwise max with ``other`` (seen-knowledge union)."""
        if other.width != self.width:
            raise ValueError(f"clock width mismatch: {self.width} vs {other.width}")
        self.entries = [max(a, b) for a, b in zip(self.entries, other.entries)]

    def covers(self, other: "VectorClock") -> bool:
        """True if every entry >= the other's (other happened-before-or-equal)."""
        if other.width != self.width:
            raise ValueError(f"clock width mismatch: {self.width} vs {other.width}")
        return all(a >= b for a, b in zip(self.entries, other.entries))

    def covers_interval(self, proc: int, seq: int) -> bool:
        """True if interval ``seq`` of process ``proc`` is reflected here."""
        return self.entries[proc] >= seq

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self.entries == other.entries

    def __hash__(self) -> int:
        return hash(tuple(self.entries))

    def __repr__(self) -> str:
        return f"VC{self.entries}"

    def sort_key(self) -> Sequence[int]:
        """Deterministic total order consistent with happens-before.

        Concurrent clocks are ordered by entry tuple; concurrent intervals
        in our protocol have disjoint write ranges, so any consistent order
        is a correct diff application order.
        """
        return (sum(self.entries), tuple(self.entries))
