"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """A structural problem in the discrete-event simulation.

    Raised e.g. when a process yields an object that is not awaitable, when
    the simulator detects deadlock with ``run(until=...)`` unable to make
    progress, or when an event is scheduled in the past.
    """


class DeadlockError(SimulationError):
    """All processes are blocked and no future events exist."""


class InterruptedError_(ReproError):
    """Thrown *into* a simulated process when it is interrupted.

    Named with a trailing underscore to avoid shadowing the builtin
    ``InterruptedError``.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"simulated process interrupted: {cause!r}")
        self.cause = cause


class NetworkError(ReproError):
    """Malformed routing, unknown destination, or link misuse."""


class DsmError(ReproError):
    """Protocol violation inside the DSM engine."""


class ProtocolError(DsmError):
    """A message arrived that the LRC protocol state machine cannot accept."""


class PageFaultError(DsmError):
    """A page access could not be satisfied (e.g. no owner for the page)."""


class AllocationError(DsmError):
    """Shared-memory allocation failed (out of configured address space)."""


class AdaptationError(ReproError):
    """The adaptive runtime was driven into an invalid state.

    Examples: asking the master process to perform a normal leave (a
    documented limitation of the paper's system), removing the last
    remaining process, or joining a node that is already participating.
    """


class MigrationError(AdaptationError):
    """An urgent-leave migration could not be carried out."""


class CheckpointError(ReproError):
    """Checkpoint creation or recovery failed."""


class FaultError(ReproError):
    """A fault-injection plan or action is invalid."""


class RecoveryError(CheckpointError):
    """Crash recovery could not be carried out (e.g. no nodes left)."""


class NodeUnavailableError(ReproError):
    """An operation targeted a node that has withdrawn from the pool."""


class ConfigurationError(ReproError):
    """Invalid or inconsistent configuration parameters."""


class ExecError(ReproError):
    """The scenario-execution engine failed (bad job spec, a worker that
    keeps crashing past its retry budget, or an unusable cache)."""
