"""Parallel scenario-execution engine with content-addressed caching.

The paper's evaluation is a grid of *independent* simulated runs —
kernel × node count × adaptation schedule.  This package turns each cell
into a schedulable task:

* :mod:`~repro.exec.spec` — :class:`ScenarioSpec`, a picklable,
  declarative run description with a canonical JSON form and a SHA-256
  config digest;
* :mod:`~repro.exec.result` — :class:`ScenarioResult`, the deterministic
  per-scenario output (canonical JSON, bitwise-stable);
* :mod:`~repro.exec.cache` — :class:`ResultCache`, one file per digest
  under ``benchmarks/results/cache/`` salted with ``repro.__version__``;
* :mod:`~repro.exec.pool` — :func:`run_specs`, the spawn-based worker
  pool with per-task progress, supervised retries, and spec-order merge;
* :mod:`~repro.exec.supervisor` — deadlines, the failure taxonomy, and
  the deterministic backoff/degradation policy the pool enforces;
* :mod:`~repro.exec.chaos` — the seeded fault-injection harness behind
  ``repro chaos`` (worker kills/hangs, cache corruption).

Since PR 9 the engine also has a *distributed* face — the same
spec/result/cache/supervisor layers behind a transport-agnostic
:class:`Executor` API:

* :mod:`~repro.exec.executor` — :class:`ExecutorConfig` (the one knob
  bag) and the ``local`` / ``serial`` / ``remote`` backends;
* :mod:`~repro.exec.wire` — the length-prefixed JSON socket protocol;
* :mod:`~repro.exec.service` — the :class:`Coordinator` (in-flight
  dedupe, requeue-on-death, shared cache) and the submit client;
* :mod:`~repro.exec.worker` — the :class:`Worker` leaf wrapping the
  local engine;
* :mod:`~repro.exec.merge` — ``repro cache merge``, lossless union of
  cache directories.

``repro sweep --jobs N`` is the CLI face; ``repro table1``, ``repro
perfbench`` and ``repro recovery`` run on the same engine, and ``repro
serve`` / ``repro submit`` / ``repro workers`` are the service face.
"""

from .cache import (
    CACHE_SCHEMA,
    CachedEntry,
    CacheStats,
    ResultCache,
    code_version_salt,
)
from .chaos import CHAOS_ENV, ChaosPlan, corrupt_cache_entries, run_chaos
from .executor import (
    BACKENDS,
    Executor,
    ExecutorConfig,
    LocalExecutor,
    RemoteExecutor,
    SerialExecutor,
    make_executor,
)
from .merge import MergeStats, merge_caches
from .pool import (
    SweepOutcome,
    TaskOutcome,
    default_jobs,
)
from .service import (
    Coordinator,
    ServedReport,
    ServiceCounters,
    Submission,
    service_status,
    stop_service,
    submit_outcome,
)
from .wire import WIRE_SCHEMA, ConnectionClosed, WireError
from .worker import Worker, worker_main
from .supervisor import (
    AttemptRecord,
    CacheCorrupt,
    DeadlinePolicy,
    ResourceExhausted,
    RetryPolicy,
    SupervisorPolicy,
    TaskFailure,
    TaskTimeout,
    WorkerCrash,
)
from .result import RESULT_SCHEMA, ScenarioResult
from .spec import (
    SPEC_SCHEMA,
    AdaptEvent,
    ScenarioSpec,
    spec_from_preset,
)

#: Package-level run entrypoints replaced by the :mod:`repro.api` facade.
_DEPRECATED = {
    "run_spec": "repro.api.run",
    "run_specs": "repro.api.sweep",
}


def __getattr__(name):
    """Deprecated package-level entrypoints (PEP 562); docs/PROTOCOL.md §8."""
    replacement = _DEPRECATED.get(name)
    if replacement is not None:
        import warnings

        warnings.warn(
            f"repro.exec.{name} is deprecated; use {replacement} "
            "(docs/PROTOCOL.md §8)",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import pool

        return getattr(pool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdaptEvent",
    "AttemptRecord",
    "BACKENDS",
    "CACHE_SCHEMA",
    "CHAOS_ENV",
    "CacheCorrupt",
    "CachedEntry",
    "CacheStats",
    "ChaosPlan",
    "ConnectionClosed",
    "Coordinator",
    "DeadlinePolicy",
    "Executor",
    "ExecutorConfig",
    "LocalExecutor",
    "MergeStats",
    "RESULT_SCHEMA",
    "RemoteExecutor",
    "ResourceExhausted",
    "ResultCache",
    "RetryPolicy",
    "SPEC_SCHEMA",
    "ScenarioResult",
    "ScenarioSpec",
    "SerialExecutor",
    "ServedReport",
    "ServiceCounters",
    "Submission",
    "SupervisorPolicy",
    "SweepOutcome",
    "TaskFailure",
    "TaskOutcome",
    "TaskTimeout",
    "WIRE_SCHEMA",
    "WireError",
    "Worker",
    "WorkerCrash",
    "code_version_salt",
    "corrupt_cache_entries",
    "default_jobs",
    "make_executor",
    "merge_caches",
    "run_chaos",
    "run_spec",
    "run_specs",
    "service_status",
    "spec_from_preset",
    "stop_service",
    "submit_outcome",
    "worker_main",
]
