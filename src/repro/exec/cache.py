"""Content-addressed result cache keyed on spec digest + code version.

One JSON file per scenario under ``benchmarks/results/cache/``, named by
the spec's :meth:`~repro.exec.spec.ScenarioSpec.config_digest`.  Each
entry embeds the digest, the canonical spec (for human inspection), the
code-version salt (``repro.__version__``), the serialized
:class:`~repro.exec.result.ScenarioResult` and a SHA-256 **checksum** of
the result's canonical JSON, verified on every read.

A lookup *hits* only when the file exists **and** its schema, digest and
version salt all match the running code — anything else counts as an
*invalidation* (stale version, corrupt file, digest collision with a
changed layout) and reads as a miss, so warm caches survive innocuous
restarts but never serve results produced by different code.

Invalidation distinguishes *stale* from *damaged*.  A stale entry
(older schema or version salt) is left in place: re-running simply
overwrites it.  A **damaged** entry — unreadable JSON, checksum or
digest mismatch, undeserializable result — is additionally *quarantined*
(moved into ``<root>/quarantine/``) so the bad bytes can never be served
again and remain on disk for diagnosis; the read still counts as a miss
and the scenario re-executes.  A sweep never crashes on a bad cache
entry and never returns data from one.

``put`` writes atomically (temp file + rename) so a crashed or parallel
writer can never leave a half-entry behind; last writer wins, which is
safe because any two writers of one digest computed the same result.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..config import EXEC_CACHE_DIR
from .result import RESULT_SCHEMA, ScenarioResult, canonical_checksum
from .spec import ScenarioSpec

#: Cache-entry schema; bump to invalidate every existing entry.
#: /2 added the result checksum (integrity layer).
CACHE_SCHEMA = "repro-exec-cache/2"

#: Default cache location (gitignored; lives next to the bench reports).
DEFAULT_CACHE_DIR = EXEC_CACHE_DIR

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"


def code_version_salt() -> str:
    """The code-version component of the cache key."""
    from .. import __version__

    return __version__


#: The integrity checksum is the canonical one defined next to the
#: result serialization (same function on write and on verify).
result_checksum = canonical_checksum


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one engine run."""

    hits: int = 0
    misses: int = 0
    #: Entries found on disk but rejected (version/schema/digest mismatch
    #: or unreadable JSON).
    invalidations: int = 0
    stores: int = 0
    #: Damaged entries detected (checksum/digest mismatch, unreadable or
    #: undeserializable payload) — a subset of ``invalidations``.
    corrupt: int = 0
    #: Damaged entries successfully moved into the quarantine directory.
    quarantined: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "quarantined": self.quarantined,
        }


@dataclass(frozen=True)
class CachedEntry:
    """A cache hit: the deterministic result plus execution metadata."""

    result: ScenarioResult
    #: Wall seconds of the run that produced the entry (machine/time
    #: dependent — metadata, never part of the result's canonical JSON).
    wall_seconds: float = 0.0


class ResultCache:
    """Content-addressed store of :class:`ScenarioResult` entries."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 salt: Optional[str] = None):
        self.root = Path(root)
        self.salt = salt if salt is not None else code_version_salt()
        self.stats = CacheStats()

    def path(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.config_digest()}.json"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    def _quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a damaged entry aside; never raises, never serves it again.

        The quarantine directory is created lazily — a healthy cache
        root contains nothing but ``*.json`` entries.
        """
        self.stats.corrupt += 1
        dest = self.quarantine_root / f"{path.name}.{reason}"
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            return None  # racing reader already moved it, or FS trouble
        self.stats.quarantined += 1
        return dest

    def _reject(self, path: Path, reason: Optional[str] = None) -> None:
        """Count an invalidated read; quarantine it when damaged."""
        self.stats.invalidations += 1
        self.stats.misses += 1
        if reason is not None:
            self._quarantine(path, reason)

    def get(self, spec: ScenarioSpec) -> Optional[CachedEntry]:
        """The cached entry, or None (miss / invalidated entry)."""
        path = self.path(spec)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except json.JSONDecodeError:
            self._reject(path, reason="unreadable")
            return None
        except OSError:
            self._reject(path)
            return None
        if not isinstance(entry, dict):
            self._reject(path, reason="unreadable")
            return None
        if (
            entry.get("schema") != CACHE_SCHEMA
            or entry.get("version") != self.salt
        ):
            self._reject(path)  # stale, not damaged: no quarantine
            return None
        result_dict = entry.get("result")
        if (
            entry.get("digest") != spec.config_digest()
            or not isinstance(result_dict, dict)
            or result_dict.get("schema") != RESULT_SCHEMA
        ):
            self._reject(path, reason="mismatch")
            return None
        if entry.get("checksum") != result_checksum(result_dict):
            self._reject(path, reason="checksum")
            return None
        try:
            result = ScenarioResult.from_dict(result_dict)
        except (TypeError, KeyError, ValueError):
            self._reject(path, reason="payload")
            return None
        self.stats.hits += 1
        return CachedEntry(
            result=result,
            wall_seconds=float(entry.get("meta", {}).get("wall_seconds", 0.0)),
        )

    def put(self, spec: ScenarioSpec, result: ScenarioResult,
            wall_seconds: float = 0.0) -> Path:
        """Store (atomically) and return the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(spec)
        result_dict = result.to_dict()
        entry = {
            "schema": CACHE_SCHEMA,
            "version": self.salt,
            "digest": spec.config_digest(),
            "spec": spec.canonical_dict(),
            "result": result_dict,
            "checksum": result_checksum(result_dict),
            "meta": {"wall_seconds": wall_seconds},
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path
