"""Content-addressed result cache keyed on spec digest + code version.

One JSON file per scenario under ``benchmarks/results/cache/``, named by
the spec's :meth:`~repro.exec.spec.ScenarioSpec.config_digest`.  Each
entry embeds the digest, the canonical spec (for human inspection), the
code-version salt (``repro.__version__``) and the serialized
:class:`~repro.exec.result.ScenarioResult`.

A lookup *hits* only when the file exists **and** its schema, digest and
version salt all match the running code — anything else counts as an
*invalidation* (stale version, corrupt file, digest collision with a
changed layout) and reads as a miss, so warm caches survive innocuous
restarts but never serve results produced by different code.  ``put``
writes atomically (temp file + rename) so a crashed or parallel writer
can never leave a half-entry behind; last writer wins, which is safe
because any two writers of one digest computed the same result.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..config import EXEC_CACHE_DIR
from .result import RESULT_SCHEMA, ScenarioResult
from .spec import ScenarioSpec

#: Cache-entry schema; bump to invalidate every existing entry.
CACHE_SCHEMA = "repro-exec-cache/1"

#: Default cache location (gitignored; lives next to the bench reports).
DEFAULT_CACHE_DIR = EXEC_CACHE_DIR


def code_version_salt() -> str:
    """The code-version component of the cache key."""
    from .. import __version__

    return __version__


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one engine run."""

    hits: int = 0
    misses: int = 0
    #: Entries found on disk but rejected (version/schema/digest mismatch
    #: or unreadable JSON).
    invalidations: int = 0
    stores: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
        }


@dataclass(frozen=True)
class CachedEntry:
    """A cache hit: the deterministic result plus execution metadata."""

    result: ScenarioResult
    #: Wall seconds of the run that produced the entry (machine/time
    #: dependent — metadata, never part of the result's canonical JSON).
    wall_seconds: float = 0.0


class ResultCache:
    """Content-addressed store of :class:`ScenarioResult` entries."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR,
                 salt: Optional[str] = None):
        self.root = Path(root)
        self.salt = salt if salt is not None else code_version_salt()
        self.stats = CacheStats()

    def path(self, spec: ScenarioSpec) -> Path:
        return self.root / f"{spec.config_digest()}.json"

    def get(self, spec: ScenarioSpec) -> Optional[CachedEntry]:
        """The cached entry, or None (miss / invalidated entry)."""
        path = self.path(spec)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        if (
            entry.get("schema") != CACHE_SCHEMA
            or entry.get("version") != self.salt
            or entry.get("digest") != spec.config_digest()
            or entry.get("result", {}).get("schema") != RESULT_SCHEMA
        ):
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return CachedEntry(
            result=ScenarioResult.from_dict(entry["result"]),
            wall_seconds=float(entry.get("meta", {}).get("wall_seconds", 0.0)),
        )

    def put(self, spec: ScenarioSpec, result: ScenarioResult,
            wall_seconds: float = 0.0) -> Path:
        """Store (atomically) and return the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(spec)
        entry = {
            "schema": CACHE_SCHEMA,
            "version": self.salt,
            "digest": spec.config_digest(),
            "spec": spec.canonical_dict(),
            "result": result.to_dict(),
            "meta": {"wall_seconds": wall_seconds},
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True, separators=(",", ":"))
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path
