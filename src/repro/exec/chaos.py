"""Seeded chaos harness for the scenario-execution engine.

The harness has two halves:

* **Worker-side fault injection.**  A :class:`ChaosPlan` serialized to a
  JSON file and pointed at by ``REPRO_EXEC_CHAOS`` makes every worker
  consult :func:`worker_fault` right before running its spec.  Decisions
  are *stateless and deterministic*: each (digest, attempt) pair hashes
  to the same verdict in every process, so a plan that kills attempt 1
  of a task kills it in every replay — and, because faults are bounded
  by ``max_*_per_task``, the retry ladder always converges.

* **Host-side cache corruption.**  :func:`corrupt_cache_entries`
  deterministically truncates or bit-flips stored cache entries, which
  the integrity layer in :mod:`repro.exec.cache` must detect, quarantine
  and re-execute.

:func:`run_chaos` ties it together for ``repro chaos``: a fault-free
baseline sweep, a chaos sweep under the plan, and a corruption round
against a warm cache — asserting bitwise identity throughout and
returning a structured report.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ExecError
from .spec import ScenarioSpec
from .supervisor import seeded_unit

#: Points workers at a JSON-serialized :class:`ChaosPlan`.
CHAOS_ENV = "REPRO_EXEC_CHAOS"

#: Schema tag for plan files and chaos reports.
CHAOS_SCHEMA = "repro-chaos-plan/1"


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, bounded description of the faults to inject.

    Rates are per-(task, attempt) probabilities in [0, 1], resolved
    deterministically from ``seed`` — no RNG state, no clock.  Kills and
    hangs are capped per task so retries eventually run clean; slowdowns
    are benign (they only waste time) and uncapped.
    """

    seed: int = 0
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    #: How long a "hung" worker sleeps; make it comfortably larger than
    #: the deadline under test so the monitor, not luck, ends it.
    hang_seconds: float = 30.0
    slow_seconds: float = 0.2
    max_kills_per_task: int = 1
    max_hangs_per_task: int = 1

    def validate(self) -> "ChaosPlan":
        for name in ("kill_rate", "hang_rate", "slow_rate"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ExecError(f"chaos {name} must be in [0, 1]")
        if self.hang_seconds < 0 or self.slow_seconds < 0:
            raise ExecError("chaos durations must be >= 0")
        return self

    def to_dict(self) -> dict:
        d = asdict(self)
        d["schema"] = CHAOS_SCHEMA
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosPlan":
        d = dict(d)
        schema = d.pop("schema", CHAOS_SCHEMA)
        if schema != CHAOS_SCHEMA:
            raise ExecError(f"unsupported chaos plan schema {schema!r}")
        return cls(**d).validate()

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), sort_keys=True,
                                   separators=(",", ":")) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChaosPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -- decisions ---------------------------------------------------------
    def decide(self, digest: str, attempt: int) -> Optional[Tuple[str, float]]:
        """The fault for (task digest, attempt), or None to run clean.

        Kills dominate hangs dominate slowdowns when several rates fire.
        A kill on attempt ``a`` only happens while ``a`` is within the
        per-task cap — because decisions are stateless, "how many kills
        this task has already suffered" is exactly ``attempt - 1``.
        """
        if (self.kill_rate > 0.0 and attempt <= self.max_kills_per_task
                and seeded_unit(self.seed, "kill", digest, attempt)
                < self.kill_rate):
            return ("kill", 0.0)
        if (self.hang_rate > 0.0 and attempt <= self.max_hangs_per_task
                and seeded_unit(self.seed, "hang", digest, attempt)
                < self.hang_rate):
            return ("hang", self.hang_seconds)
        if (self.slow_rate > 0.0
                and seeded_unit(self.seed, "slow", digest, attempt)
                < self.slow_rate):
            return ("slow", self.slow_seconds)
        return None


def active_plan() -> Optional[ChaosPlan]:
    """The plan named by ``REPRO_EXEC_CHAOS``, or None."""
    path = os.environ.get(CHAOS_ENV)
    if not path:
        return None
    return ChaosPlan.load(path)


def worker_fault(digest: str, attempt: int) -> None:
    """Called by pool workers before executing a spec.

    Applies the active plan's decision for this (digest, attempt):
    ``kill`` hard-exits the process (a crash, not an exception), ``hang``
    sleeps past any reasonable deadline, ``slow`` naps briefly and then
    runs normally.  No plan, no effect.
    """
    plan = active_plan()
    if plan is None:
        return
    decision = plan.decide(digest, attempt)
    if decision is None:
        return
    fault, seconds = decision
    if fault == "kill":
        os._exit(43)
    elif fault == "hang":
        time.sleep(seconds)
        os._exit(44)  # a reaped hang should never get here
    elif fault == "slow":
        time.sleep(seconds)


# ---------------------------------------------------------------------------
# host-side cache corruption
# ---------------------------------------------------------------------------
def corrupt_cache_entries(root: Union[str, Path], seed: int = 0,
                          count: int = 1,
                          modes: Sequence[str] = ("truncate", "bitflip"),
                          ) -> List[Tuple[Path, str]]:
    """Deterministically damage up to ``count`` cache entries.

    Entries are chosen and damaged by hashing (seed, filename), so the
    same cache contents + seed corrupt identically.  Returns
    [(path, mode)] for the report.  ``truncate`` cuts the file mid-JSON;
    ``bitflip`` flips one bit inside the stored result payload.
    """
    root = Path(root)
    entries = sorted(p for p in root.glob("*.json"))
    if not entries:
        return []
    ranked = sorted(entries, key=lambda p: seeded_unit(seed, "pick", p.name))
    damaged: List[Tuple[Path, str]] = []
    for path in ranked[:max(0, count)]:
        mode = modes[int(seeded_unit(seed, "mode", path.name) * len(modes))
                     % len(modes)]
        raw = path.read_bytes()
        if mode == "truncate":
            keep = max(1, int(len(raw) * 0.5))
            path.write_bytes(raw[:keep])
        elif mode == "bitflip":
            if not raw:
                continue
            pos = int(seeded_unit(seed, "pos", path.name) * len(raw)) % len(raw)
            flipped = bytes([raw[pos] ^ 0x01])
            path.write_bytes(raw[:pos] + flipped + raw[pos + 1:])
        else:
            raise ExecError(f"unknown corruption mode {mode!r}")
        damaged.append((path, mode))
    return damaged


# ---------------------------------------------------------------------------
# the harness
# ---------------------------------------------------------------------------
def run_chaos(specs: Sequence[ScenarioSpec], plan: ChaosPlan,
              cache_root: Union[str, Path], jobs: int = 2,
              corrupt: int = 1, supervisor=None, progress=None,
              obs=None) -> dict:
    """Baseline → chaos → corruption; assert identity; report.

    1. A fault-free serial sweep establishes the baseline results.
    2. A parallel sweep runs under ``plan`` (kills/hangs/slowdowns) with
       a fresh cache; its results must be bitwise-identical.
    3. ``corrupt`` warm-cache entries are damaged; a warm sweep must
       quarantine them, re-execute, and again match bitwise.

    Any mismatch raises :class:`ExecError`; an attributed
    :class:`TaskFailure` from an exhausted retry budget propagates as-is
    (that *is* the structured report for unsurvivable plans).
    """
    from .cache import ResultCache
    from .pool import run_specs
    from .supervisor import SupervisorPolicy

    plan.validate()
    specs = list(specs)
    cache_root = Path(cache_root)
    supervisor = supervisor or SupervisorPolicy()

    baseline = run_specs(specs, jobs=1)
    expected = [r.to_json() for r in baseline.results]

    plan_path = cache_root.parent / "chaos_plan.json"
    cache_root.parent.mkdir(parents=True, exist_ok=True)
    plan.write(plan_path)
    old = os.environ.get(CHAOS_ENV)
    os.environ[CHAOS_ENV] = str(plan_path)
    try:
        chaotic = run_specs(specs, jobs=jobs,
                            cache=ResultCache(root=cache_root),
                            supervisor=supervisor, progress=progress, obs=obs)
    finally:
        if old is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = old
    got = [r.to_json() for r in chaotic.results]
    if got != expected:
        raise ExecError("chaos sweep diverged from the fault-free baseline")

    damaged = corrupt_cache_entries(cache_root, seed=plan.seed, count=corrupt)
    warm_cache = ResultCache(root=cache_root)
    warm = run_specs(specs, jobs=jobs, cache=warm_cache,
                     supervisor=supervisor, progress=progress, obs=obs)
    if [r.to_json() for r in warm.results] != expected:
        raise ExecError("post-corruption sweep diverged from the baseline")

    quarantine = cache_root / "quarantine"
    return {
        "schema": "repro-chaos-report/1",
        "plan": plan.to_dict(),
        "scenarios": len(specs),
        "jobs": jobs,
        "identical": True,
        "chaos": {
            "executed": chaotic.executed,
            "retried": chaotic.retried,
            "degraded": chaotic.degraded,
            "failure_counts": dict(chaotic.failure_counts),
            "wall_seconds": chaotic.wall_seconds,
        },
        "corruption": {
            "damaged": [{"path": str(p), "mode": m} for p, m in damaged],
            "quarantined": warm_cache.stats.quarantined,
            "re_executed": warm.executed,
            "cache_hits": warm.cache_hits,
            "quarantine_dir": str(quarantine),
            "quarantine_files": sorted(
                p.name for p in quarantine.glob("*")
            ) if quarantine.is_dir() else [],
        },
    }
