"""The transport-agnostic executor API of the scenario engine.

Three interchangeable backends execute a batch of
:class:`~repro.exec.spec.ScenarioSpec` and return the same
:class:`~repro.exec.pool.SweepOutcome`, bitwise-identical results in spec
order regardless of *where* the simulations ran:

* :class:`LocalExecutor` — the spawn-based worker pool of
  :mod:`repro.exec.pool` (the PR-3 engine, supervised since PR 6);
* :class:`SerialExecutor` — in-process, one at a time: the degraded mode
  and the identity reference everything else is tested against;
* :class:`RemoteExecutor` — a client of the coordinator/worker service
  (:mod:`repro.exec.service`): specs go out over the length-prefixed
  JSON socket protocol, results stream back from worker hosts.

:class:`ExecutorConfig` is the one knob bag for all of them — worker
count, cache location, retry/deadline/degradation policy, backend
selection, coordinator address.  It consolidates what used to be spread
over ``repro.config.ExecParams``, per-call ``retries=``/``cache=``
arguments and the supervisor kwargs; the old
``repro.config.ExecParams`` spelling still resolves through a PEP 562
deprecation shim (docs/PROTOCOL.md §12).

Drivers pick a backend with :func:`make_executor` (the CLI's
``--executor local|serial|remote`` flag maps straight onto it) or pass
an :class:`Executor` instance to :func:`repro.api.sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Protocol, Sequence, runtime_checkable

from ..config import EXEC_CACHE_DIR, EXEC_RETRIES
from ..errors import ConfigurationError, ExecError
from .cache import ResultCache
from .pool import ProgressFn, SweepOutcome, run_specs
from .spec import ScenarioSpec

#: Executor backend names, in CLI ``--executor`` order.
BACKENDS = ("local", "serial", "remote")


@dataclass(frozen=True)
class ExecutorConfig:
    """Everything the execution engine is allowed to vary per host.

    Unlike every simulated-system parameter group these describe the
    *host(s)* running the simulations — worker counts, cache location,
    resilience policy, transport — so they are not part of
    :class:`~repro.config.SystemConfig` and never enter a scenario's
    config digest.  A config is backend-agnostic: the same instance can
    drive a local pool, a serial run, or a remote submission.
    """

    #: Worker processes for multi-scenario runs (None = one per core).
    jobs: Optional[int] = None

    #: Directory of the content-addressed result cache.
    cache_dir: str = EXEC_CACHE_DIR

    #: Serve/store results through the cache at all (``--no-cache`` off).
    use_cache: bool = True

    #: Re-execute and re-store even on a warm cache (``--refresh``).
    refresh: bool = False

    #: Times a task is re-queued after its worker process crashes.
    retries: int = EXEC_RETRIES

    #: Wall-clock floor of a task's deadline (seconds); the supervisor
    #: never reaps a worker younger than this.
    deadline_floor: float = 30.0

    #: First retry backoff (seconds); doubles each further attempt.
    backoff_base: float = 0.05

    #: Backoff ceiling (seconds).
    backoff_max: float = 2.0

    #: Consecutive pool-level failures before the sweep degrades to
    #: in-process serial execution (0 disables degradation).
    degrade_after: int = 3

    #: Which backend :func:`make_executor` builds (see :data:`BACKENDS`).
    backend: str = "local"

    #: ``host:port`` of the coordinator for the ``remote`` backend.
    coordinator: Optional[str] = None

    def validate(self) -> "ExecutorConfig":
        if self.jobs is not None and self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if self.retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if self.deadline_floor < 0:
            raise ConfigurationError("deadline_floor must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.degrade_after < 0:
            raise ConfigurationError("degrade_after must be >= 0")
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown executor backend {self.backend!r}; one of {BACKENDS}"
            )
        if self.backend == "remote" and not self.coordinator:
            raise ConfigurationError(
                "the remote backend needs a coordinator address "
                "(ExecutorConfig.coordinator / --coordinator HOST:PORT)"
            )
        return self

    def replaced(self, **kwargs) -> "ExecutorConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    def supervisor_policy(self):
        """The :class:`repro.exec.supervisor.SupervisorPolicy` these
        parameters describe."""
        from .supervisor import DeadlinePolicy, RetryPolicy, SupervisorPolicy

        return SupervisorPolicy(
            retry=RetryPolicy(max_attempts=self.retries + 1,
                              base_delay=self.backoff_base,
                              max_delay=self.backoff_max),
            deadline=DeadlinePolicy(floor_seconds=self.deadline_floor),
            degrade_after=self.degrade_after,
        )

    def effective_jobs(self) -> int:
        """The actual worker count (resolves None to the core count)."""
        import os

        return self.jobs if self.jobs is not None else (os.cpu_count() or 1)

    def make_cache(self) -> Optional[ResultCache]:
        """The :class:`ResultCache` this config names (None when off)."""
        if not self.use_cache:
            return None
        return ResultCache(root=self.cache_dir)


@runtime_checkable
class Executor(Protocol):
    """Anything that can run a batch of specs to a :class:`SweepOutcome`.

    The contract every backend honors:

    * outcomes come back **in spec order**, results bitwise-identical to
      serial in-process execution of the same list;
    * ``progress`` is called once per finished task, in completion order;
    * ``obs`` (a :class:`~repro.obs.Registry`) receives the engine's
      ``exec.*`` counters — and ``exec.service.*`` for remote runs.
    """

    #: Backend name, as spelled by ``--executor``.
    name: str

    def execute(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        repeat: int = 1,
        progress: Optional[ProgressFn] = None,
        obs=None,
    ) -> SweepOutcome:
        """Run every spec; see the class docstring for the contract."""
        ...


class LocalExecutor:
    """The spawn-based local pool behind a config (the default backend)."""

    name = "local"

    def __init__(self, config: Optional[ExecutorConfig] = None,
                 cache: Optional[ResultCache] = None):
        self.config = (config or ExecutorConfig()).validate()
        #: Explicit cache overrides the config-built one (tests, sharing).
        self.cache = cache if cache is not None else self.config.make_cache()

    def _jobs(self) -> int:
        return self.config.effective_jobs()

    def execute(self, specs, *, repeat=1, progress=None, obs=None):
        return run_specs(
            specs,
            jobs=self._jobs(),
            cache=self.cache,
            refresh=self.config.refresh,
            repeat=repeat,
            progress=progress,
            supervisor=self.config.supervisor_policy(),
            obs=obs,
        )


class SerialExecutor(LocalExecutor):
    """In-process, one spec at a time — no pool, no spawn, no surprises.

    This *is* the legacy serial path (``jobs=1``), promoted to a named
    backend: the degraded mode of the supervisor, and the identity
    reference the parallel and remote backends are tested against.
    """

    name = "serial"

    def _jobs(self) -> int:
        return 1


class RemoteExecutor:
    """Submit the batch to a coordinator and stream the results back.

    The transport face of the service (docs/SERVICE.md): specs travel in
    wire form, execution happens wherever the coordinator's workers run,
    and the streamed reports are reassembled into the same
    :class:`SweepOutcome` shape the local backends produce — callers
    cannot tell where a sweep ran (``TaskOutcome.worker_id`` says, for
    the curious).  Caching, in-flight dedupe and requeue-on-death are
    coordinator-side; ``use_cache=False``/``refresh`` travel with the
    submission.
    """

    name = "remote"

    def __init__(self, config: ExecutorConfig):
        if config.backend != "remote":
            config = config.replaced(backend="remote")
        self.config = config.validate()

    def execute(self, specs, *, repeat=1, progress=None, obs=None):
        from .service import submit_outcome

        return submit_outcome(
            list(specs),
            self.config.coordinator,
            repeat=repeat,
            no_cache=not self.config.use_cache,
            refresh=self.config.refresh,
            progress=progress,
            obs=obs,
        )


def make_executor(config: Optional[ExecutorConfig] = None,
                  cache: Optional[ResultCache] = None) -> Executor:
    """Build the backend ``config.backend`` names.

    ``cache`` (optional) overrides the config-built cache for the local
    backends; the remote backend's cache lives with the coordinator, so
    passing one alongside ``backend="remote"`` is an error rather than a
    silent no-op.
    """
    config = (config or ExecutorConfig()).validate()
    if config.backend == "serial":
        return SerialExecutor(config, cache=cache)
    if config.backend == "remote":
        if cache is not None:
            raise ExecError(
                "the remote backend uses the coordinator's cache; "
                "a client-side cache= override makes no sense"
            )
        return RemoteExecutor(config)
    return LocalExecutor(config, cache=cache)
