"""Lossless union of two result-cache directories.

``repro cache merge SRC DST`` ships a worker-local cache home into the
coordinator's shared one (and is useful standalone for consolidating
sweep caches).  Digests are location-independent — the same spec hashes
to the same file name on every host — so a merge is mostly "copy the
entries the destination lacks", with integrity enforced the same way
:class:`~repro.exec.cache.ResultCache` enforces it on read:

* every source entry is **checksum-verified** before it is copied
  (schema, digest-vs-filename, result checksum); a damaged entry is
  quarantined into ``DST/quarantine/`` instead of merged, exactly like a
  damaged entry found on read;
* an entry present on both sides with the **same checksum** is the same
  deterministic result — skipped, nothing to do;
* an entry present on both sides with **different checksums** is a
  *conflict* — impossible for honest caches of deterministic
  simulations, so the merge keeps the destination's version and
  quarantines the source bytes (``*.conflict``) for diagnosis rather
  than silently picking a winner.

Copies are atomic (temp file + rename) like ``ResultCache.put``, so a
crashed merge never leaves half an entry; re-running a merge is
idempotent.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from ..errors import ExecError
from .cache import CACHE_SCHEMA, QUARANTINE_DIR, result_checksum
from .result import RESULT_SCHEMA


@dataclass
class MergeStats:
    """What one :func:`merge_caches` run did."""

    #: Candidate ``*.json`` entries found in the source.
    scanned: int = 0
    #: Entries copied into the destination (it lacked the digest).
    copied: int = 0
    #: Entries present on both sides with identical checksums.
    identical: int = 0
    #: Both sides had the digest with *different* checksums; destination
    #: kept, source bytes quarantined.
    conflicts: int = 0
    #: Source entries that failed verification and were quarantined.
    damaged: int = 0

    def as_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "copied": self.copied,
            "identical": self.identical,
            "conflicts": self.conflicts,
            "damaged": self.damaged,
        }


def _verify_entry(path: Path) -> Tuple[Optional[dict], Optional[str]]:
    """Load + integrity-check one cache entry.

    Returns ``(entry, None)`` when sound, ``(None, reason)`` when
    damaged — reasons match the read-side quarantine suffixes of
    :class:`~repro.exec.cache.ResultCache`.
    """
    try:
        with open(path) as fh:
            entry = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None, "unreadable"
    if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
        return None, "unreadable"
    result = entry.get("result")
    if (
        entry.get("digest") != path.stem
        or not isinstance(result, dict)
        or result.get("schema") != RESULT_SCHEMA
    ):
        return None, "mismatch"
    if entry.get("checksum") != result_checksum(result):
        return None, "checksum"
    return entry, None


def _quarantine(src_path: Path, dst_root: Path, reason: str) -> None:
    qdir = dst_root / QUARANTINE_DIR
    qdir.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(src_path, qdir / f"{src_path.name}.{reason}")


def _atomic_copy(src_path: Path, dst_path: Path) -> None:
    fd, tmp = tempfile.mkstemp(dir=dst_path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as out, open(src_path, "rb") as inp:
            shutil.copyfileobj(inp, out)
        os.replace(tmp, dst_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def merge_caches(src: Union[str, Path], dst: Union[str, Path]) -> MergeStats:
    """Merge every sound entry of ``src`` into ``dst`` (see module doc).

    The source is never modified.  Raises :class:`ExecError` when the
    source directory does not exist or the two paths are the same
    directory; an empty (or entry-free) source is a no-op.
    """
    src_root = Path(src)
    dst_root = Path(dst)
    if not src_root.is_dir():
        raise ExecError(f"cache merge: source {src_root} is not a directory")
    if dst_root.exists() and os.path.realpath(src_root) == os.path.realpath(
            dst_root):
        raise ExecError("cache merge: source and destination are the same "
                        "directory")
    stats = MergeStats()
    for src_path in sorted(src_root.glob("*.json")):
        stats.scanned += 1
        entry, reason = _verify_entry(src_path)
        if entry is None:
            stats.damaged += 1
            _quarantine(src_path, dst_root, reason)
            continue
        dst_path = dst_root / src_path.name
        if dst_path.exists():
            dst_entry, dst_reason = _verify_entry(dst_path)
            if dst_entry is not None:
                if dst_entry.get("checksum") == entry.get("checksum"):
                    stats.identical += 1
                else:
                    stats.conflicts += 1
                    _quarantine(src_path, dst_root, "conflict")
                continue
            # Destination copy is damaged: quarantine it read-side style
            # and let the verified source entry replace it.
            _quarantine(dst_path, dst_root, dst_reason)
            os.unlink(dst_path)
        dst_root.mkdir(parents=True, exist_ok=True)
        _atomic_copy(src_path, dst_path)
        stats.copied += 1
    return stats
