"""Spawn-based multiprocess scenario execution with deterministic merge.

:func:`run_specs` is the engine's entry point: it takes an ordered list
of :class:`~repro.exec.spec.ScenarioSpec`, answers what it can from the
result cache, shards the misses across a spawn-based worker pool
(``--jobs N``), streams per-task progress, supervises every attempt
(deadlines, seeded-backoff retries, failure attribution — see
:mod:`repro.exec.supervisor`), and merges everything back **in spec
order** — so the output is bitwise-identical to running the same list
serially (simulations are deterministic; see
``tests/exec/test_engine_e2e.py`` and ``tests/exec/test_chaos.py``).

``jobs=1`` executes in the calling process with no pool at all: that path
*is* the legacy serial execution, and is what the parallel path is tested
against.  Workers are spawned (never forked) so each scenario runs in a
pristine interpreter — no inherited simulator state, and identical
behaviour on platforms where fork is unavailable or unsafe.

When the pool itself looks sick — ``degrade_after`` *consecutive*
task-level failures anywhere in the sweep — the engine stops spawning
workers and finishes the remaining tasks serially in process.  Serial
execution cannot crash-loop, and because the simulations are
deterministic the degraded sweep still returns bitwise-identical
results; it is just slower.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import EXEC_RETRIES
from ..errors import ExecError
from .cache import CacheStats, ResultCache
from .result import ScenarioResult
from .spec import ScenarioSpec
from .supervisor import (
    AttemptRecord,
    ResourceExhausted,
    SupervisorPolicy,
    TaskTimeout,
    WorkerCrash,
)

#: Test-only fault injection: when set to a writable directory, a worker
#: hard-exits the first time it sees each spec digest (a flag file marks
#: "already crashed once"), exercising the crash-retry path end to end.
#: Richer, seeded fault injection lives in :mod:`repro.exec.chaos`.
CRASH_ONCE_ENV = "REPRO_EXEC_CRASH_ONCE"

#: Grace period between SIGTERM and SIGKILL when reaping a worker.
REAP_GRACE_SECONDS = 2.0


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given (one per core)."""
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# single-spec execution (runs in workers and on the jobs=1 path alike)
# ---------------------------------------------------------------------------
def execute_spec(spec: ScenarioSpec, repeat: int = 1, obs=None):
    """Run one spec live; returns (ExperimentResult, best wall seconds).

    This is the single place a :class:`ScenarioSpec` turns into a
    simulation — :func:`run_spec` (and through it the whole engine) and
    :func:`repro.api.run` both come through here.  ``obs`` is a
    :class:`~repro.obs.Registry` recorded into by the run; pass it only
    with ``repeat=1`` (repeats would record every rerun into it).

    ``repeat`` reruns the simulation and keeps the best wall time (the
    simulated outputs are identical across repeats by construction).
    """
    from ..bench.harness import run_experiment

    if obs is not None and repeat > 1:
        raise ExecError("obs recording requires repeat=1")
    cfg = spec.build_config()
    runtime_kwargs = {}
    if spec.checkpoint_interval is not None:
        runtime_kwargs["checkpoint_interval"] = spec.checkpoint_interval
    if spec.failure_detection or spec.has_crashes:
        runtime_kwargs["failure_detection"] = True
    install = (
        spec.install_events if (spec.events or spec.fault_plan) else None
    )
    best_wall = float("inf")
    best = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        res = run_experiment(
            spec.build_app,
            nprocs=spec.nprocs,
            adaptive=spec.effective_adaptive,
            extra_nodes=spec.extra_nodes,
            cfg=cfg,
            materialized=spec.materialized,
            events=install,
            runtime_kwargs=runtime_kwargs if spec.effective_adaptive else None,
            obs=obs,
        )
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, best = wall, res
    return best, best_wall


def run_spec(spec: ScenarioSpec, repeat: int = 1) -> Tuple[ScenarioResult, float]:
    """Execute one spec to completion; returns (result, best wall seconds)."""
    best, best_wall = execute_spec(spec, repeat=repeat)
    return (
        ScenarioResult.from_experiment(best, events=best.runtime.sim.events_executed),
        best_wall,
    )


def _worker(payload: Tuple[int, ScenarioSpec, int, int]) -> Tuple[int, dict, float]:
    """Pool worker: run one spec, return its index + serialized result."""
    index, spec, repeat, attempt = payload
    digest = spec.config_digest()
    crash_dir = os.environ.get(CRASH_ONCE_ENV)
    if crash_dir:
        flag = os.path.join(crash_dir, f"{digest}.crashed")
        if not os.path.exists(flag):
            with open(flag, "w") as fh:
                fh.write("crashed once\n")
            os._exit(3)  # simulate a worker death, not a Python exception
    from .chaos import worker_fault

    worker_fault(digest, attempt)
    result, wall = run_spec(spec, repeat=repeat)
    return index, result.to_dict(), wall


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaskOutcome:
    """How one spec was satisfied (cache or execution)."""

    index: int
    spec: ScenarioSpec
    result: ScenarioResult
    #: Wall seconds of the execution (0.0 for cache hits); machine
    #: dependent, deliberately *not* part of :class:`ScenarioResult`.
    wall_seconds: float
    cached: bool
    #: Executions attempted (0 for hits, >1 after a worker-crash retry).
    attempts: int
    #: Pool slot that executed this task (0 on the serial path, -1 for
    #: cache hits — they take no pool time, -2 for the serial-degradation
    #: fallback).
    worker: int = -1
    #: Wall-clock start/end of the successful execution, in seconds since
    #: the sweep began (both 0.0 for cache hits).  ``repro sweep
    #: --timeline`` renders these as the pool utilization timeline.
    started_at: float = 0.0
    ended_at: float = 0.0
    #: Per-attempt supervision history (failures first, then the final
    #: ``"ok"``); empty for cache hits and the plain serial path.
    attempt_log: Tuple[AttemptRecord, ...] = ()
    #: Remote worker that executed this task (coordinator-assigned id,
    #: e.g. ``"w2"``); empty for local execution, where ``worker`` — the
    #: pool slot — is the whole story.
    worker_id: str = ""


@dataclass
class SweepOutcome:
    """Everything :func:`run_specs` produces, in spec order."""

    outcomes: List[TaskOutcome]
    cache_stats: CacheStats
    jobs: int
    executed: int
    retried: int
    wall_seconds: float = 0.0
    #: Failure-kind → count across all attempts this sweep (retried
    #: *and* terminal); empty when nothing went wrong.
    failure_counts: Dict[str, int] = field(default_factory=dict)
    #: True when the pool fell back to in-process serial execution.
    degraded: bool = False
    #: Coordinator counter snapshot for remote sweeps (the
    #: ``exec.service.*`` family as a dict); None for local execution.
    service: Optional[Dict] = None

    @property
    def results(self) -> List[ScenarioResult]:
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)


ProgressFn = Callable[[TaskOutcome, int, int], None]


class _PoolDegraded(Exception):
    """Internal: the pool hit the degradation threshold mid-sweep."""

    def __init__(self, completed, retried, failure_counts, remaining):
        super().__init__("pool degraded to serial execution")
        self.completed = completed
        self.retried = retried
        self.failure_counts = failure_counts
        #: [(index, spec, next_attempt, attempt_log)] still to run.
        self.remaining = remaining


def run_specs(
    specs: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    refresh: bool = False,
    repeat: int = 1,
    retries: int = EXEC_RETRIES,
    progress: Optional[ProgressFn] = None,
    supervisor: Optional[SupervisorPolicy] = None,
    obs=None,
) -> SweepOutcome:
    """Run every spec, answering from ``cache`` where possible.

    Results come back in spec order regardless of completion order, and
    are bitwise-identical to ``jobs=1`` serial execution.  ``refresh``
    forces re-execution (and re-stores) even on a warm cache.

    ``supervisor`` carries the full resilience policy (deadlines, backoff
    retries, degradation); when omitted one is built from the legacy
    ``retries`` knob.  ``obs`` is an optional
    :class:`~repro.obs.Registry`; the engine counts retries, failures by
    kind, quarantined cache entries and degradations into it.
    """
    specs = list(specs)
    jobs = jobs if jobs is not None else default_jobs()
    if jobs < 1:
        raise ExecError("jobs must be >= 1")
    policy = (supervisor if supervisor is not None
              else SupervisorPolicy.from_retries(retries)).validate()
    t_start = time.perf_counter()
    total = len(specs)
    outcomes: List[Optional[TaskOutcome]] = [None] * total
    done = 0
    corrupt_before = cache.stats.corrupt if cache is not None else 0

    def _finish(outcome: TaskOutcome) -> None:
        nonlocal done
        outcomes[outcome.index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    pending: List[Tuple[int, ScenarioSpec]] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if (cache is not None and not refresh) else None
        if hit is not None:
            _finish(TaskOutcome(i, spec, hit.result, hit.wall_seconds,
                                cached=True, attempts=0))
        else:
            pending.append((i, spec))

    retried = 0
    degraded = False
    failure_counts: Dict[str, int] = {}
    if pending:
        if jobs == 1:
            for i, spec in pending:
                started = time.perf_counter() - t_start
                result, wall = run_spec(spec, repeat=repeat)
                ended = time.perf_counter() - t_start
                if cache is not None:
                    cache.put(spec, result, wall_seconds=wall)
                _finish(TaskOutcome(i, spec, result, wall, cached=False,
                                    attempts=1, worker=0,
                                    started_at=started, ended_at=ended))
        else:
            try:
                completed, retried, failure_counts = _run_parallel(
                    pending, jobs=jobs, repeat=repeat, policy=policy,
                    t_start=t_start,
                )
            except _PoolDegraded as deg:
                degraded = True
                completed = deg.completed
                retried = deg.retried
                failure_counts = deg.failure_counts
                for i, spec, attempt, log in deg.remaining:
                    started = time.perf_counter() - t_start
                    result, wall = run_spec(spec, repeat=repeat)
                    ended = time.perf_counter() - t_start
                    completed[i] = (
                        result, wall, attempt, -2, started, ended,
                        log + (AttemptRecord(attempt, "ok", wall, worker=-2,
                                             detail="serial degradation"),),
                    )
            for i, spec in pending:
                result, wall, attempts, worker, started, ended, log = \
                    completed[i]
                if cache is not None:
                    cache.put(spec, result, wall_seconds=wall)
                _finish(TaskOutcome(i, spec, result, wall, cached=False,
                                    attempts=attempts, worker=worker,
                                    started_at=started, ended_at=ended,
                                    attempt_log=log))

    corrupt_seen = (cache.stats.corrupt - corrupt_before
                    if cache is not None else 0)
    if corrupt_seen:
        failure_counts["cache_corrupt"] = (
            failure_counts.get("cache_corrupt", 0) + corrupt_seen
        )
    if obs is not None:
        if retried:
            obs.count("exec.retry", retried)
        for kind, n in sorted(failure_counts.items()):
            obs.count(f"exec.failure.{kind}", n)
        if degraded:
            obs.count("exec.degraded")
        if corrupt_seen:
            obs.count("exec.cache.quarantined", corrupt_seen)

    return SweepOutcome(
        outcomes=outcomes,  # type: ignore[arg-type]  (all filled above)
        cache_stats=cache.stats if cache is not None else CacheStats(),
        jobs=jobs,
        executed=len(pending),
        retried=retried,
        wall_seconds=time.perf_counter() - t_start,
        failure_counts=failure_counts,
        degraded=degraded,
    )


def _child_main(conn, payload: Tuple[int, ScenarioSpec, int, int]) -> None:
    """Entry point of one worker process (spawned, never forked)."""
    import traceback

    try:
        out = _worker(payload)
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", out))
    conn.close()


def _reap(proc, grace: float = REAP_GRACE_SECONDS) -> None:
    """Stop a worker for sure: terminate → join(grace) → kill → join.

    A worker that ignores or cannot service SIGTERM (wedged in native
    code, masked signals) gets SIGKILL after ``grace`` seconds; the final
    unbounded join is safe because SIGKILL cannot be ignored.
    """
    proc.terminate()
    proc.join(grace)
    if proc.is_alive():
        proc.kill()
        proc.join()


def _run_parallel(
    tasks: Sequence[Tuple[int, ScenarioSpec]],
    jobs: int,
    repeat: int,
    policy: SupervisorPolicy,
    t_start: Optional[float] = None,
) -> Tuple[Dict[int, tuple], int, Dict[str, int]]:
    """Execute tasks with one spawned process per task, ``jobs`` at a time.

    A dedicated process per task makes failure attribution exact: a
    worker that dies without reporting (killed, segfault, ``os._exit``)
    or overruns its deadline fails only *its own* task, which is requeued
    (after a seeded backoff) until its attempt budget runs out; the other
    in-flight tasks are untouched.  A worker that raises an ordinary
    Python exception is not a crash — the exception is re-raised here,
    wrapped in :class:`ExecError`, because it is deterministic and a
    retry would fail identically.

    Raises :class:`_PoolDegraded` when ``policy.degrade_after``
    consecutive failures suggest the *pool* (not one task) is sick.
    """
    import multiprocessing as mp
    from collections import deque
    from multiprocessing.connection import wait as conn_wait

    ctx = mp.get_context("spawn")
    if t_start is None:
        t_start = time.perf_counter()
    completed: Dict[int, tuple] = {}
    retried = 0
    failure_counts: Dict[str, int] = {}
    consecutive = 0
    #: ready-to-run: (index, spec, attempt, attempt_log)
    queue = deque((i, spec, 1, ()) for i, spec in tasks)
    #: backoff heap: (ready_at, seq, index, spec, attempt, attempt_log)
    delayed: list = []
    delay_seq = 0
    running: Dict[object, tuple] = {}
    free_slots = list(range(jobs - 1, -1, -1))  # pop() hands out slot 0 first

    def _count(kind: str) -> None:
        failure_counts[kind] = failure_counts.get(kind, 0) + 1

    def _requeue(i, spec, attempt, log, failure_cls, detail):
        """Account one failed attempt; retry with backoff or give up."""
        nonlocal retried, delay_seq, consecutive
        _count(failure_cls.kind)
        consecutive += 1
        log = log + (AttemptRecord(attempt, failure_cls.kind, detail=detail),)
        if attempt >= policy.retry.max_attempts:
            raise failure_cls(detail, spec=spec, attempts=attempt)
        retried += 1
        backoff = policy.retry.backoff(spec.config_digest(), attempt + 1)
        heapq.heappush(delayed, (time.perf_counter() + backoff, delay_seq,
                                 i, spec, attempt + 1, log))
        delay_seq += 1
        if policy.degrade_after and consecutive >= policy.degrade_after:
            _degrade()

    def _degrade():
        """Reap everything and hand the sweep back for serial finishing."""
        remaining = [(i, spec, attempt, log)
                     for (_, _, i, spec, attempt, log) in delayed]
        remaining += [(i, spec, attempt, log)
                      for (i, spec, attempt, log) in queue]
        for proc, conn, i, spec, attempt, slot, started, dl, log in \
                running.values():
            _reap(proc)
            conn.close()
            # the in-flight attempt was aborted by the supervisor, not
            # failed by the worker — rerun it at the same attempt number
            remaining.append((i, spec, attempt, log))
        running.clear()
        remaining.sort(key=lambda t: t[0])
        raise _PoolDegraded(completed, retried, failure_counts, remaining)

    try:
        while queue or delayed or running:
            now = time.perf_counter()
            while delayed and delayed[0][0] <= now:
                _, _, i, spec, attempt, log = heapq.heappop(delayed)
                queue.append((i, spec, attempt, log))
            while queue and len(running) < jobs:
                i, spec, attempt, log = queue.popleft()
                slot = free_slots.pop()
                try:
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_child_main,
                        args=(child_conn, (i, spec, repeat, attempt)),
                    )
                    started = time.perf_counter() - t_start
                    proc.start()
                except OSError as err:
                    free_slots.append(slot)
                    _requeue(i, spec, attempt, log, ResourceExhausted,
                             f"scenario {spec.display_name} could not get a "
                             f"worker (attempt {attempt}): {err}")
                    continue
                child_conn.close()
                deadline = (time.perf_counter()
                            + policy.deadline.deadline_for(spec, repeat))
                running[proc.sentinel] = (
                    proc, parent_conn, i, spec, attempt, slot, started,
                    deadline, log,
                )
            if not running:
                if delayed:
                    time.sleep(max(0.0, delayed[0][0] - time.perf_counter()))
                continue
            now = time.perf_counter()
            wait_timeout = max(
                0.0,
                min(dl for (*_, dl, _log) in running.values()) - now,
            )
            if delayed:
                wait_timeout = min(wait_timeout,
                                   max(0.0, delayed[0][0] - now))
            for sentinel in conn_wait(list(running), timeout=wait_timeout):
                (proc, conn, i, spec, attempt, slot, started, deadline,
                 log) = running.pop(sentinel)
                free_slots.append(slot)
                ended = time.perf_counter() - t_start
                message = None
                try:
                    if conn.poll():
                        message = conn.recv()
                except (EOFError, OSError):
                    message = None
                proc.join()
                conn.close()
                if message is not None and message[0] == "ok":
                    index, result_dict, wall = message[1]
                    consecutive = 0
                    completed[index] = (
                        ScenarioResult.from_dict(result_dict), wall, attempt,
                        slot, started, ended,
                        log + (AttemptRecord(attempt, "ok", wall,
                                             worker=slot),),
                    )
                elif message is not None and message[0] == "err":
                    raise ExecError(
                        f"scenario {spec.display_name} failed in its worker:\n"
                        f"{message[1]}"
                    )
                else:  # died without reporting: a genuine worker crash
                    _requeue(
                        i, spec, attempt, log, WorkerCrash,
                        f"scenario {spec.display_name} "
                        f"(digest {spec.config_digest()[:12]}) crashed its "
                        f"worker {attempt} time(s) "
                        f"(last exit code {proc.exitcode}); giving up",
                    )
            # hung-worker monitor: reap anything past its deadline
            now = time.perf_counter()
            for sentinel in [s for s, entry in running.items()
                             if entry[7] <= now]:
                (proc, conn, i, spec, attempt, slot, started, deadline,
                 log) = running.pop(sentinel)
                free_slots.append(slot)
                _reap(proc)
                conn.close()
                budget = deadline - (t_start + started)
                _requeue(
                    i, spec, attempt, log, TaskTimeout,
                    f"scenario {spec.display_name} "
                    f"(digest {spec.config_digest()[:12]}) exceeded its "
                    f"{budget:.1f}s deadline on attempt {attempt}; "
                    f"worker reaped (terminate/kill); giving up",
                )
    finally:
        for proc, conn, *_ in running.values():
            _reap(proc)
            conn.close()
    return completed, retried, failure_counts
