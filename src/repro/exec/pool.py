"""Spawn-based multiprocess scenario execution with deterministic merge.

:func:`run_specs` is the engine's entry point: it takes an ordered list
of :class:`~repro.exec.spec.ScenarioSpec`, answers what it can from the
result cache, shards the misses across a spawn-based worker pool
(``--jobs N``), streams per-task progress, retries a task once if its
worker process dies, and merges everything back **in spec order** — so
the output is bitwise-identical to running the same list serially
(simulations are deterministic; see ``tests/exec/test_engine_e2e.py``).

``jobs=1`` executes in the calling process with no pool at all: that path
*is* the legacy serial execution, and is what the parallel path is tested
against.  Workers are spawned (never forked) so each scenario runs in a
pristine interpreter — no inherited simulator state, and identical
behaviour on platforms where fork is unavailable or unsafe.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import EXEC_RETRIES, ExecParams
from ..errors import ExecError
from .cache import CacheStats, ResultCache
from .result import ScenarioResult
from .spec import ScenarioSpec

#: Test-only fault injection: when set to a writable directory, a worker
#: hard-exits the first time it sees each spec digest (a flag file marks
#: "already crashed once"), exercising the crash-retry path end to end.
CRASH_ONCE_ENV = "REPRO_EXEC_CRASH_ONCE"


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given (one per core)."""
    return ExecParams().effective_jobs()


# ---------------------------------------------------------------------------
# single-spec execution (runs in workers and on the jobs=1 path alike)
# ---------------------------------------------------------------------------
def execute_spec(spec: ScenarioSpec, repeat: int = 1, obs=None):
    """Run one spec live; returns (ExperimentResult, best wall seconds).

    This is the single place a :class:`ScenarioSpec` turns into a
    simulation — :func:`run_spec` (and through it the whole engine) and
    :func:`repro.api.run` both come through here.  ``obs`` is a
    :class:`~repro.obs.Registry` recorded into by the run; pass it only
    with ``repeat=1`` (repeats would record every rerun into it).

    ``repeat`` reruns the simulation and keeps the best wall time (the
    simulated outputs are identical across repeats by construction).
    """
    from ..bench.harness import run_experiment

    if obs is not None and repeat > 1:
        raise ExecError("obs recording requires repeat=1")
    cfg = spec.build_config()
    runtime_kwargs = {}
    if spec.checkpoint_interval is not None:
        runtime_kwargs["checkpoint_interval"] = spec.checkpoint_interval
    if spec.failure_detection or spec.has_crashes:
        runtime_kwargs["failure_detection"] = True
    install = (
        spec.install_events if (spec.events or spec.fault_plan) else None
    )
    best_wall = float("inf")
    best = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        res = run_experiment(
            spec.build_app,
            nprocs=spec.nprocs,
            adaptive=spec.effective_adaptive,
            extra_nodes=spec.extra_nodes,
            cfg=cfg,
            materialized=spec.materialized,
            events=install,
            runtime_kwargs=runtime_kwargs if spec.effective_adaptive else None,
            obs=obs,
        )
        wall = time.perf_counter() - t0
        if wall < best_wall:
            best_wall, best = wall, res
    return best, best_wall


def run_spec(spec: ScenarioSpec, repeat: int = 1) -> Tuple[ScenarioResult, float]:
    """Execute one spec to completion; returns (result, best wall seconds)."""
    best, best_wall = execute_spec(spec, repeat=repeat)
    return (
        ScenarioResult.from_experiment(best, events=best.runtime.sim.events_executed),
        best_wall,
    )


def _worker(payload: Tuple[int, ScenarioSpec, int]) -> Tuple[int, dict, float]:
    """Pool worker: run one spec, return its index + serialized result."""
    index, spec, repeat = payload
    crash_dir = os.environ.get(CRASH_ONCE_ENV)
    if crash_dir:
        flag = os.path.join(crash_dir, f"{spec.config_digest()}.crashed")
        if not os.path.exists(flag):
            with open(flag, "w") as fh:
                fh.write("crashed once\n")
            os._exit(3)  # simulate a worker death, not a Python exception
    result, wall = run_spec(spec, repeat=repeat)
    return index, result.to_dict(), wall


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaskOutcome:
    """How one spec was satisfied (cache or execution)."""

    index: int
    spec: ScenarioSpec
    result: ScenarioResult
    #: Wall seconds of the execution (0.0 for cache hits); machine
    #: dependent, deliberately *not* part of :class:`ScenarioResult`.
    wall_seconds: float
    cached: bool
    #: Executions attempted (0 for hits, >1 after a worker-crash retry).
    attempts: int
    #: Pool slot that executed this task (0 on the serial path, -1 for
    #: cache hits — they take no pool time).
    worker: int = -1
    #: Wall-clock start/end of the successful execution, in seconds since
    #: the sweep began (both 0.0 for cache hits).  ``repro sweep
    #: --timeline`` renders these as the pool utilization timeline.
    started_at: float = 0.0
    ended_at: float = 0.0


@dataclass
class SweepOutcome:
    """Everything :func:`run_specs` produces, in spec order."""

    outcomes: List[TaskOutcome]
    cache_stats: CacheStats
    jobs: int
    executed: int
    retried: int
    wall_seconds: float = 0.0

    @property
    def results(self) -> List[ScenarioResult]:
        return [o.result for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)


ProgressFn = Callable[[TaskOutcome, int, int], None]


def run_specs(
    specs: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    refresh: bool = False,
    repeat: int = 1,
    retries: int = EXEC_RETRIES,
    progress: Optional[ProgressFn] = None,
) -> SweepOutcome:
    """Run every spec, answering from ``cache`` where possible.

    Results come back in spec order regardless of completion order, and
    are bitwise-identical to ``jobs=1`` serial execution.  ``refresh``
    forces re-execution (and re-stores) even on a warm cache.
    """
    specs = list(specs)
    jobs = jobs if jobs is not None else default_jobs()
    if jobs < 1:
        raise ExecError("jobs must be >= 1")
    t_start = time.perf_counter()
    total = len(specs)
    outcomes: List[Optional[TaskOutcome]] = [None] * total
    done = 0

    def _finish(outcome: TaskOutcome) -> None:
        nonlocal done
        outcomes[outcome.index] = outcome
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    pending: List[Tuple[int, ScenarioSpec]] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if (cache is not None and not refresh) else None
        if hit is not None:
            _finish(TaskOutcome(i, spec, hit.result, hit.wall_seconds,
                                cached=True, attempts=0))
        else:
            pending.append((i, spec))

    retried = 0
    if pending:
        if jobs == 1:
            for i, spec in pending:
                started = time.perf_counter() - t_start
                result, wall = run_spec(spec, repeat=repeat)
                ended = time.perf_counter() - t_start
                if cache is not None:
                    cache.put(spec, result, wall_seconds=wall)
                _finish(TaskOutcome(i, spec, result, wall, cached=False,
                                    attempts=1, worker=0,
                                    started_at=started, ended_at=ended))
        else:
            completed, retried = _run_parallel(
                pending, jobs=jobs, repeat=repeat, retries=retries,
                t_start=t_start,
            )
            for i, spec in pending:
                result, wall, attempts, worker, started, ended = completed[i]
                if cache is not None:
                    cache.put(spec, result, wall_seconds=wall)
                _finish(TaskOutcome(i, spec, result, wall, cached=False,
                                    attempts=attempts, worker=worker,
                                    started_at=started, ended_at=ended))

    return SweepOutcome(
        outcomes=outcomes,  # type: ignore[arg-type]  (all filled above)
        cache_stats=cache.stats if cache is not None else CacheStats(),
        jobs=jobs,
        executed=len(pending),
        retried=retried,
        wall_seconds=time.perf_counter() - t_start,
    )


def _child_main(conn, payload: Tuple[int, ScenarioSpec, int]) -> None:
    """Entry point of one worker process (spawned, never forked)."""
    import traceback

    try:
        out = _worker(payload)
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", out))
    conn.close()


def _run_parallel(
    tasks: Sequence[Tuple[int, ScenarioSpec]],
    jobs: int,
    repeat: int,
    retries: int,
    t_start: Optional[float] = None,
) -> Tuple[Dict[int, Tuple[ScenarioResult, float, int, int, float, float]], int]:
    """Execute tasks with one spawned process per task, ``jobs`` at a time.

    A dedicated process per task makes crash attribution exact: a worker
    that dies without reporting (killed, segfault, ``os._exit``) fails
    only *its own* task, which is requeued until its ``retries`` budget
    runs out; the other in-flight tasks are untouched.  A worker that
    raises an ordinary Python exception is not a crash — the exception is
    re-raised here, wrapped in :class:`ExecError`.
    """
    import multiprocessing as mp
    from collections import deque
    from multiprocessing.connection import wait as conn_wait

    ctx = mp.get_context("spawn")
    if t_start is None:
        t_start = time.perf_counter()
    completed: Dict[int, Tuple[ScenarioResult, float, int, int, float, float]] = {}
    retried = 0
    queue = deque((i, spec, 1) for i, spec in tasks)
    running: Dict[object, tuple] = {}
    free_slots = list(range(jobs - 1, -1, -1))  # pop() hands out slot 0 first
    try:
        while queue or running:
            while queue and len(running) < jobs:
                i, spec, attempt = queue.popleft()
                slot = free_slots.pop()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main, args=(child_conn, (i, spec, repeat)),
                )
                started = time.perf_counter() - t_start
                proc.start()
                child_conn.close()
                running[proc.sentinel] = (
                    proc, parent_conn, i, spec, attempt, slot, started,
                )
            for sentinel in conn_wait(list(running)):
                proc, conn, i, spec, attempt, slot, started = running.pop(sentinel)
                free_slots.append(slot)
                ended = time.perf_counter() - t_start
                message = None
                try:
                    if conn.poll():
                        message = conn.recv()
                except (EOFError, OSError):
                    message = None
                proc.join()
                conn.close()
                if message is not None and message[0] == "ok":
                    index, result_dict, wall = message[1]
                    completed[index] = (
                        ScenarioResult.from_dict(result_dict), wall, attempt,
                        slot, started, ended,
                    )
                elif message is not None and message[0] == "err":
                    raise ExecError(
                        f"scenario {spec.display_name} failed in its worker:\n"
                        f"{message[1]}"
                    )
                else:  # died without reporting: a genuine worker crash
                    if attempt > retries:
                        raise ExecError(
                            f"scenario {spec.display_name} "
                            f"(digest {spec.config_digest()[:12]}) crashed its "
                            f"worker {attempt} time(s) "
                            f"(last exit code {proc.exitcode}); giving up"
                        )
                    retried += 1
                    queue.append((i, spec, attempt + 1))
    finally:
        for proc, conn, *_ in running.values():
            proc.terminate()
            proc.join()
            conn.close()
    return completed, retried
