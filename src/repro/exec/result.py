"""Deterministic per-scenario results with a canonical JSON form.

:class:`ScenarioResult` is what the engine hands back for every spec: the
*simulated* outputs only — runtimes, traffic, adaptation/recovery
accounting, verification — never wall-clock quantities, which vary run to
run and live in :class:`~repro.exec.pool.TaskOutcome` instead.  Because
every field is deterministic given the spec, the canonical JSON of a
result is bitwise-identical whether the scenario ran serially, in a
worker process, or came out of the cache; the engine's merge step and the
e2e identity tests rely on exactly that.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Dict, List, Optional

#: Result-serialization schema (cache entries embed it).
RESULT_SCHEMA = "repro-scenario-result/1"


def canonical_checksum(result_dict: Dict[str, Any]) -> str:
    """SHA-256 over a result dict's canonical JSON form.

    Defined here, next to the canonical serialization, so the integrity
    checksum stored in cache entries and the one recomputed on read are
    by construction the same function of the same bytes.
    """
    payload = json.dumps(result_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class ScenarioResult:
    """Everything deterministic one scenario run produces."""

    app_name: str
    nprocs: int
    adaptive: bool
    runtime_seconds: float
    #: Simulator events executed (the perfbench throughput numerator).
    events: int
    forks: int
    adaptations: int
    messages: int = 0
    bytes: int = 0
    pages: int = 0
    diffs: int = 0
    dropped: int = 0
    retransmissions: int = 0
    heartbeats_sent: int = 0
    heartbeat_misses: int = 0
    false_suspicions: int = 0
    checkpoints_taken: int = 0
    #: One dict per :class:`~repro.core.recovery.RecoveryRecord`.
    recoveries: List[Dict[str, Any]] = field(default_factory=list)
    #: One dict per adaptation record (time, joins, leaves, team sizes).
    adapt_records: List[Dict[str, Any]] = field(default_factory=list)
    #: Materialized-mode verification vs the sequential reference
    #: (None for traced runs).
    verified: Optional[bool] = None

    # -- harness compatibility --------------------------------------------
    @property
    def megabytes(self) -> float:
        return self.bytes / 1e6

    @property
    def traffic(self) -> "ScenarioResult":
        """Self-view so drivers written against
        :class:`~repro.bench.harness.ExperimentResult` (``res.traffic.pages``
        etc.) read a ScenarioResult unchanged."""
        return self

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["schema"] = RESULT_SCHEMA
        return d

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def checksum(self) -> str:
        """Content checksum of the canonical form (cache integrity)."""
        return canonical_checksum(self.to_dict())

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ScenarioResult":
        d = dict(d)
        d.pop("schema", None)
        return cls(**d)

    @classmethod
    def from_experiment(cls, res, events: int = 0) -> "ScenarioResult":
        """Convert a live :class:`~repro.bench.harness.ExperimentResult`."""
        from ..errors import ReproError

        verified = None
        if getattr(res.app, "final", None):
            try:
                from .spec import VERIFY_ATOL, VERIFY_RTOL

                verified = res.app.verify(rtol=VERIFY_RTOL, atol=VERIFY_ATOL)
            except ReproError:
                verified = None
        ckpt_mgr = getattr(res.runtime, "ckpt_mgr", None)
        return cls(
            app_name=res.app_name,
            nprocs=res.nprocs,
            adaptive=res.adaptive,
            runtime_seconds=res.runtime_seconds,
            events=events,
            forks=res.forks,
            adaptations=res.adaptations,
            messages=res.traffic.messages,
            bytes=res.traffic.bytes,
            pages=res.traffic.pages,
            diffs=res.traffic.diffs,
            dropped=res.dropped,
            retransmissions=res.retransmissions,
            heartbeats_sent=res.heartbeats_sent,
            heartbeat_misses=res.heartbeat_misses,
            false_suspicions=res.false_suspicions,
            checkpoints_taken=(
                len(ckpt_mgr.checkpoints) if ckpt_mgr is not None else 0
            ),
            recoveries=[_record_dict(r) for r in res.recoveries],
            adapt_records=[_record_dict(r) for r in res.adapt_records],
            verified=verified,
        )


def _record_dict(rec) -> Dict[str, Any]:
    """A record (dataclass, or the traced runtime's plain tuples) as a
    JSON-friendly dict."""
    if not is_dataclass(rec):
        return {"record": list(rec)}
    out = {}
    for k, v in asdict(rec).items():
        if isinstance(v, tuple):
            v = list(v)
        out[k] = v
    return out
