"""Coordinator of the distributed sweep service.

The multi-host face of the execution engine (ROADMAP item 1, the
"millions of users" backend): a :class:`Coordinator` listens on a TCP
socket, workers (:mod:`repro.exec.worker`) register over the
length-prefixed JSON protocol (:mod:`repro.exec.wire`) and lease tasks,
clients submit :class:`~repro.exec.spec.ScenarioSpec` batches and get
results streamed back as they complete.  The same coordinator/worker
split the task-offloading cluster-OpenMP papers use, applied to the
scenario grid.

What the coordinator guarantees (docs/SERVICE.md has the full failure
semantics):

* **Content addressing end to end.**  Tasks are keyed by the spec's
  config digest; every completed result lands in the coordinator's
  shared content-addressed :class:`~repro.exec.cache.ResultCache`, so a
  scenario computed by any worker is served from cache forever after —
  digests are location-independent, worker caches merge losslessly
  (:func:`repro.exec.merge.merge_caches`).
* **In-flight dedupe.**  Submissions of a digest that is already queued
  or running *attach* to the existing task instead of re-executing: a
  thundering herd of N identical submissions costs one execution and
  streams N identical reports (``exec.service.deduped == N-1``).
* **Requeue on death.**  A worker that disconnects or stops heartbeating
  gets its in-flight tasks requeued (attempt-counted against
  ``max_attempts``, :class:`~repro.exec.supervisor.WorkerCrash`
  semantics) and handed to surviving workers; waiters never observe the
  death unless the attempt budget runs out.
* **Determinism.**  Simulations are deterministic, so whichever worker
  runs a spec — after any number of requeues — the streamed result is
  bitwise-identical to a single-host ``repro sweep``.

Everything is plain threads + sockets: one handler thread per
connection, one lock around the scheduling state.  Simulations dominate
(seconds each, in worker *processes*); coordination traffic is a few KB
of JSON per task, far below where the GIL or a fancier event loop would
matter.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExecError
from .cache import CacheStats, ResultCache
from .pool import ProgressFn, SweepOutcome, TaskOutcome
from .result import ScenarioResult
from .spec import ScenarioSpec
from .supervisor import WorkerCrash
from .wire import (
    WIRE_SCHEMA,
    ConnectionClosed,
    WireError,
    connect,
    message,
    recv_message,
    send_message,
)

#: Default coordinator TCP port (``repro serve`` / ``--coordinator``).
DEFAULT_PORT = 7070

#: Attempts a task gets across worker deaths before its waiters see a
#: structured failure (matches the local engine's default of 1 retry +
#: one extra chance: coordinators supervise whole hosts, not processes).
DEFAULT_MAX_ATTEMPTS = 3

#: Seconds between worker heartbeats (the coordinator's liveness probe
#: allows :data:`HEARTBEAT_GRACE` multiples of this before declaring
#: death).
DEFAULT_HEARTBEAT_INTERVAL = 1.0
HEARTBEAT_GRACE = 8.0


# ---------------------------------------------------------------------------
# accounting
# ---------------------------------------------------------------------------
@dataclass
class ServiceCounters:
    """The ``exec.service.*`` counter family, coordinator-side."""

    submitted: int = 0
    executed: int = 0
    cache_hits: int = 0
    deduped: int = 0
    requeued: int = 0
    failed: int = 0
    workers_joined: int = 0
    workers_lost: int = 0
    inflight_peak: int = 0
    #: Failure-kind -> count (coordinator-attributed and worker-reported).
    failure_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-worker throughput: id -> {"tasks": n, "busy_seconds": s}.
    per_worker: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def count_failure(self, kind: str, n: int = 1) -> None:
        self.failure_counts[kind] = self.failure_counts.get(kind, 0) + n

    def worker_done(self, worker_id: str, wall_seconds: float) -> None:
        info = self.per_worker.setdefault(
            worker_id, {"tasks": 0, "busy_seconds": 0.0})
        info["tasks"] += 1
        info["busy_seconds"] += wall_seconds

    def snapshot(self, inflight: int = 0, queued: int = 0,
                 workers: int = 0) -> Dict:
        """JSON-safe snapshot (what ``done``/``status_reply`` carry)."""
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "requeued": self.requeued,
            "failed": self.failed,
            "workers_joined": self.workers_joined,
            "workers_lost": self.workers_lost,
            "inflight": inflight,
            "inflight_peak": self.inflight_peak,
            "queued": queued,
            "workers": workers,
            "failure_counts": dict(sorted(self.failure_counts.items())),
            "per_worker": {k: dict(v) for k, v in
                           sorted(self.per_worker.items())},
        }


def count_service_obs(obs, service: Dict) -> None:
    """Mirror a service-counter snapshot into ``exec.service.*`` counters.

    The remote executor calls this after a submission so ``repro report
    --sweep`` and the metrics exporters see the coordinator's dedupe/
    requeue/throughput accounting exactly like the local engine's
    ``exec.*`` family.
    """
    if obs is None or not service:
        return
    for key in ("submitted", "executed", "cache_hits", "deduped",
                "requeued", "failed", "inflight_peak"):
        if service.get(key):
            obs.count(f"exec.service.{key}", service[key])
    for kind, n in sorted(service.get("failure_counts", {}).items()):
        if n:
            obs.count(f"exec.service.failure.{kind}", n)
    for wid, info in sorted(service.get("per_worker", {}).items()):
        if info.get("tasks"):
            obs.count(f"exec.service.worker.{wid}.tasks", info["tasks"])
        if info.get("busy_seconds"):
            obs.count(f"exec.service.worker.{wid}.busy_seconds",
                      info["busy_seconds"])


# ---------------------------------------------------------------------------
# coordinator-side state
# ---------------------------------------------------------------------------
class _Client:
    """One submit connection: an outbox its handler thread drains."""

    def __init__(self, total: int):
        self.outbox: Queue = Queue()
        self.total = total
        self.dead = False

    def put(self, msg: Dict) -> None:
        if not self.dead:
            self.outbox.put(msg)


class _Task:
    """One distinct digest moving through the service."""

    __slots__ = ("task_id", "spec", "digest", "repeat", "attempts",
                 "waiters", "assigned_to")

    def __init__(self, task_id: str, spec: ScenarioSpec, repeat: int):
        self.task_id = task_id
        self.spec = spec
        self.digest = spec.config_digest()
        self.repeat = repeat
        self.attempts = 0
        #: [(client, index, deduped)] — every submission waiting on this.
        self.waiters: List[Tuple[_Client, int, bool]] = []
        self.assigned_to: Optional[str] = None


class _WorkerConn:
    """Coordinator-side view of one registered worker."""

    def __init__(self, worker_id: str, sock: socket.socket, hello: Dict):
        self.worker_id = worker_id
        self.sock = sock
        self.send_lock = threading.Lock()
        self.host = hello.get("host", "?")
        self.pid = hello.get("pid", 0)
        self.slots = max(1, int(hello.get("slots", 1)))
        self.busy: Dict[str, _Task] = {}
        self.tasks_done = 0

    def send(self, msg: Dict) -> None:
        with self.send_lock:
            send_message(self.sock, msg)


class Coordinator:
    """The service: accept loop, scheduler, dedupe and requeue logic.

    Embeddable (tests run it in-process on port 0) and daemonizable
    (``repro serve``).  ``cache`` is the shared content-addressed store
    every result lands in; ``None`` disables coordinator-side caching
    entirely (every submission executes, dedupe still applies).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 cache: Optional[ResultCache] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: Optional[float] = None):
        if max_attempts < 1:
            raise ExecError("max_attempts must be >= 1")
        self.host = host
        self.cache = cache
        self.max_attempts = max_attempts
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else heartbeat_interval * HEARTBEAT_GRACE
        )
        self._listener = socket.create_server((host, port))
        self.port = self._listener.getsockname()[1]
        self._mu = threading.RLock()
        self._queue: deque = deque()           # _Task, FIFO (requeues front)
        self._inflight: Dict[str, _Task] = {}  # digest -> queued/running task
        self._workers: Dict[str, _WorkerConn] = {}
        self._seq = 0
        self.counters = ServiceCounters()
        self._stopping = threading.Event()
        self._threads: List[threading.Thread] = []
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "Coordinator":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="coordinator-accept", daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until :meth:`stop` (the ``repro serve`` foreground)."""
        if self._accept_thread is None:
            self.start()
        while not self._stopping.wait(0.2):
            pass

    def stop(self) -> None:
        """Shut down: stop accepting, tell workers, drop clients."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._mu:
            workers = list(self._workers.values())
            self._workers.clear()
            for task in self._inflight.values():
                for client, index, _ in task.waiters:
                    client.put(message(
                        "error", message="coordinator shut down",
                        index=index, digest=task.digest, kind="shutdown"))
            self._queue.clear()
            self._inflight.clear()
        for worker in workers:
            try:
                worker.send(message("shutdown", reason="coordinator stopping"))
            except (WireError, OSError):
                pass
            try:
                worker.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection plumbing ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            thread = threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="coordinator-conn", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _serve_conn(self, sock: socket.socket) -> None:
        try:
            first = recv_message(sock)
        except (WireError, OSError, socket.timeout):
            sock.close()
            return
        t = first.get("t")
        try:
            if t == "hello" and first.get("role") == "worker":
                self._serve_worker(sock, first)
            elif t == "submit":
                self._serve_client(sock, first)
            elif t == "status":
                send_message(sock, self._status_reply())
                sock.close()
            elif t == "stop":
                send_message(sock, message("ok"))
                sock.close()
                self.stop()
            else:
                send_message(sock, message(
                    "error", message=f"unexpected opening message {t!r}"))
                sock.close()
        except (WireError, OSError, socket.timeout):
            try:
                sock.close()
            except OSError:
                pass

    # -- workers -----------------------------------------------------------
    def _serve_worker(self, sock: socket.socket, hello: Dict) -> None:
        if hello.get("schema") != WIRE_SCHEMA:
            send_message(sock, message(
                "error",
                message=f"wire schema mismatch: {hello.get('schema')!r} "
                        f"!= {WIRE_SCHEMA!r}"))
            sock.close()
            return
        with self._mu:
            self._seq += 1
            worker = _WorkerConn(f"w{self._seq}", sock, hello)
            self._workers[worker.worker_id] = worker
            self.counters.workers_joined += 1
        worker.send(message("welcome", schema=WIRE_SCHEMA,
                            worker_id=worker.worker_id,
                            heartbeat_interval=self.heartbeat_interval))
        with self._mu:
            self._pump()
        reason = "connection closed"
        sock.settimeout(self.heartbeat_timeout)
        while not self._stopping.is_set():
            try:
                msg = recv_message(sock)
            except socket.timeout:
                reason = (f"no heartbeat for {self.heartbeat_timeout:.1f}s")
                break
            except ConnectionClosed:
                break
            except (WireError, OSError) as err:
                reason = f"protocol error: {err}"
                break
            t = msg["t"]
            if t == "heartbeat":
                continue
            if t == "result":
                self._complete_task(worker, msg)
            elif t == "task_error":
                self._fail_task(worker, msg)
        self._lose_worker(worker, reason)

    def _complete_task(self, worker: _WorkerConn, msg: Dict) -> None:
        with self._mu:
            task = worker.busy.pop(msg["task_id"], None)
            if task is None:
                return  # already requeued elsewhere (stale completion)
            self._inflight.pop(task.digest, None)
            try:
                result = ScenarioResult.from_dict(msg["result"])
            except (TypeError, KeyError, ValueError) as err:
                # Undeserializable payload: treat like a crashed attempt.
                self._attempt_failed(
                    task, f"undecodable result from {worker.worker_id}: {err}")
                self._pump()
                return
            wall = float(msg.get("wall_seconds", 0.0))
            self.counters.executed += 1
            self.counters.worker_done(worker.worker_id, wall)
            worker.tasks_done += 1
            for kind, n in (msg.get("failure_counts") or {}).items():
                self.counters.count_failure(kind, int(n))
            if self.cache is not None:
                self.cache.put(task.spec, result, wall_seconds=wall)
            report = dict(result=msg["result"], wall_seconds=wall,
                          worker=worker.worker_id,
                          attempts=task.attempts + 1, digest=task.digest)
            for client, index, deduped in task.waiters:
                client.put(message("report", index=index, cached=False,
                                   deduped=deduped, **report))
            self._pump()

    def _fail_task(self, worker: _WorkerConn, msg: Dict) -> None:
        """A *deterministic* worker-side failure: no requeue, it would
        fail identically anywhere (mirrors the local pool's treatment of
        ordinary exceptions vs. crashes)."""
        with self._mu:
            task = worker.busy.pop(msg["task_id"], None)
            if task is None:
                return
            self._inflight.pop(task.digest, None)
            self.counters.failed += 1
            self.counters.count_failure(msg.get("kind", "error"))
            for client, index, _ in task.waiters:
                client.put(message("error", message=msg["detail"],
                                   index=index, digest=task.digest,
                                   kind=msg.get("kind", "error")))
            self._pump()

    def _attempt_failed(self, task: _Task, detail: str) -> None:
        """One attempt died (worker loss / bad payload): requeue or give
        up, :class:`WorkerCrash` taxonomy.  Caller holds the lock."""
        task.attempts += 1
        task.assigned_to = None
        self.counters.count_failure(WorkerCrash.kind)
        if task.attempts >= self.max_attempts:
            self._inflight.pop(task.digest, None)
            self.counters.failed += 1
            for client, index, _ in task.waiters:
                client.put(message(
                    "error",
                    message=f"scenario {task.spec.display_name} "
                            f"(digest {task.digest[:12]}) lost its worker "
                            f"{task.attempts} time(s): {detail}",
                    index=index, digest=task.digest, kind=WorkerCrash.kind))
        else:
            self.counters.requeued += 1
            self._inflight[task.digest] = task
            self._queue.appendleft(task)

    def _lose_worker(self, worker: _WorkerConn, reason: str) -> None:
        with self._mu:
            if self._workers.pop(worker.worker_id, None) is None:
                return  # already reaped (shutdown)
            self.counters.workers_lost += 1
            for task in list(worker.busy.values()):
                self._attempt_failed(
                    task, f"worker {worker.worker_id} died ({reason})")
            worker.busy.clear()
            self._pump()
        try:
            worker.sock.close()
        except OSError:
            pass

    # -- scheduling --------------------------------------------------------
    def _pump(self) -> None:
        """Assign queued tasks to free worker slots.  Caller holds the
        lock; sends ride the per-worker send locks."""
        while self._queue:
            target = None
            for worker in sorted(self._workers.values(),
                                 key=lambda w: (len(w.busy), w.worker_id)):
                if len(worker.busy) < worker.slots:
                    target = worker
                    break
            if target is None:
                return
            task = self._queue.popleft()
            task.assigned_to = target.worker_id
            target.busy[task.task_id] = task
            try:
                target.send(message("task", task_id=task.task_id,
                                    spec=task.spec.to_wire(),
                                    repeat=task.repeat))
            except (WireError, OSError):
                # The send itself found the corpse; its reader thread will
                # run the full _lose_worker path.  Requeue just this task.
                target.busy.pop(task.task_id, None)
                self._attempt_failed(task, "send to worker failed")

    # -- clients -----------------------------------------------------------
    def _serve_client(self, sock: socket.socket, submit: Dict) -> None:
        t_start = time.perf_counter()
        repeat = int(submit.get("repeat", 1))
        no_cache = bool(submit.get("no_cache", False))
        refresh = bool(submit.get("refresh", False))
        try:
            specs = [ScenarioSpec.from_wire(d) for d in submit["specs"]]
        except Exception as err:  # bad spec: structured reply, keep serving
            send_message(sock, message(
                "error", message=f"undecodable submission: {err}"))
            sock.close()
            return
        client = _Client(total=len(specs))
        stats = {"cache_hits": 0, "deduped": 0, "executed": 0}
        with self._mu:
            for index, spec in enumerate(specs):
                self.counters.submitted += 1
                self._enqueue(client, index, spec, repeat,
                              no_cache=no_cache, refresh=refresh,
                              stats=stats)
            self.counters.inflight_peak = max(self.counters.inflight_peak,
                                              len(self._inflight))
            self._pump()
        served = 0
        try:
            while served < client.total:
                try:
                    out = client.outbox.get(timeout=0.2)
                except Empty:
                    if self._stopping.is_set():
                        return
                    continue
                send_message(sock, out)
                served += 1
            with self._mu:
                snapshot = self.counters.snapshot(
                    inflight=len(self._inflight), queued=len(self._queue),
                    workers=len(self._workers))
            send_message(sock, message(
                "done", total=client.total, executed=stats["executed"],
                cache_hits=stats["cache_hits"], deduped=stats["deduped"],
                requeued=snapshot["requeued"],
                wall_seconds=time.perf_counter() - t_start,
                service=snapshot))
        except (WireError, OSError):
            client.dead = True  # client went away; tasks finish for cache
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _enqueue(self, client: _Client, index: int, spec: ScenarioSpec,
                 repeat: int, no_cache: bool, refresh: bool,
                 stats: Dict) -> None:
        """Serve from cache, attach to an in-flight digest, or queue a
        new task.  Caller holds the lock."""
        digest = spec.config_digest()
        if self.cache is not None and not no_cache and not refresh:
            hit = self.cache.get(spec)
            if hit is not None:
                self.counters.cache_hits += 1
                stats["cache_hits"] += 1
                client.put(message(
                    "report", index=index, digest=digest,
                    result=hit.result.to_dict(), cached=True, deduped=False,
                    wall_seconds=hit.wall_seconds, worker="", attempts=0))
                return
        task = self._inflight.get(digest)
        if task is not None and task.repeat == repeat:
            self.counters.deduped += 1
            stats["deduped"] += 1
            task.waiters.append((client, index, True))
            return
        self._seq += 1
        task = _Task(f"t{self._seq}", spec, repeat)
        task.waiters.append((client, index, False))
        stats["executed"] += 1
        self._inflight[digest] = task
        self._queue.append(task)

    # -- status ------------------------------------------------------------
    def _status_reply(self) -> Dict:
        with self._mu:
            workers = [
                {"id": w.worker_id, "host": w.host, "pid": w.pid,
                 "slots": w.slots, "busy": len(w.busy),
                 "tasks_done": w.tasks_done}
                for w in sorted(self._workers.values(),
                                key=lambda w: w.worker_id)
            ]
            return message(
                "status_reply", workers=workers,
                counters=self.counters.snapshot(
                    inflight=len(self._inflight), queued=len(self._queue),
                    workers=len(self._workers)),
                queued=len(self._queue), inflight=len(self._inflight))


# ---------------------------------------------------------------------------
# client side
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ServedReport:
    """One streamed per-scenario report, as the coordinator served it."""

    index: int
    spec: ScenarioSpec
    result: ScenarioResult
    cached: bool
    deduped: bool
    wall_seconds: float
    worker: str
    attempts: int


class Submission:
    """One ``submit`` conversation: iterate to stream the reports.

    Reports arrive in *completion* order; :attr:`done` (the coordinator's
    closing stats frame, including the ``exec.service.*`` snapshot) is
    populated once iteration finishes.  Per-index failures are collected
    and raised as one :class:`ExecError` after the surviving reports have
    been yielded, so a partial sweep is still observable.
    """

    def __init__(self, specs: Sequence[ScenarioSpec], address: str, *,
                 repeat: int = 1, no_cache: bool = False,
                 refresh: bool = False, timeout: Optional[float] = None,
                 connect_retry_seconds: float = 0.0):
        self.specs = list(specs)
        self.done: Optional[Dict] = None
        self.failures: List[Dict] = []
        self._sock = connect(address, timeout=timeout,
                             retry_seconds=connect_retry_seconds)
        send_message(self._sock, message(
            "submit", specs=[s.to_wire() for s in self.specs],
            repeat=repeat, no_cache=no_cache, refresh=refresh))

    def __iter__(self):
        try:
            remaining = len(self.specs)
            while remaining > 0:
                msg = recv_message(self._sock)
                t = msg["t"]
                if t == "report":
                    remaining -= 1
                    index = msg["index"]
                    yield ServedReport(
                        index=index, spec=self.specs[index],
                        result=ScenarioResult.from_dict(msg["result"]),
                        cached=bool(msg["cached"]),
                        deduped=bool(msg["deduped"]),
                        wall_seconds=float(msg.get("wall_seconds", 0.0)),
                        worker=str(msg.get("worker", "")),
                        attempts=int(msg.get("attempts", 0)))
                elif t == "error":
                    remaining -= 1
                    self.failures.append(msg)
                    if "index" not in msg:
                        break  # submission-level error: nothing follows
                else:
                    raise WireError(f"unexpected frame {t!r} mid-stream")
            if self.done is None and len(self.specs) >= 0:
                msg = recv_message(self._sock)
                if msg["t"] == "done":
                    self.done = msg
        finally:
            self.close()
        if self.failures:
            first = self.failures[0]
            raise ExecError(
                f"{len(self.failures)} scenario(s) failed at the "
                f"coordinator; first [{first.get('kind', 'error')}]: "
                f"{first['message']}")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def submit_outcome(specs: Sequence[ScenarioSpec], address: str, *,
                   repeat: int = 1, no_cache: bool = False,
                   refresh: bool = False,
                   progress: Optional[ProgressFn] = None,
                   obs=None,
                   connect_retry_seconds: float = 0.0) -> SweepOutcome:
    """Submit a batch and reassemble the stream into a :class:`SweepOutcome`.

    The remote leg of :class:`~repro.exec.executor.RemoteExecutor`:
    outcomes land in spec order, results bitwise-identical to a local
    run; the coordinator's service counters become ``cache_stats``,
    ``failure_counts`` and the outcome's ``service`` snapshot, and are
    mirrored into ``obs`` as ``exec.service.*``.
    """
    specs = list(specs)
    t0 = time.perf_counter()
    total = len(specs)
    outcomes: List[Optional[TaskOutcome]] = [None] * total
    done_ct = 0
    sub = Submission(specs, address, repeat=repeat, no_cache=no_cache,
                     refresh=refresh,
                     connect_retry_seconds=connect_retry_seconds)
    for rep in sub:
        outcome = TaskOutcome(
            index=rep.index, spec=rep.spec, result=rep.result,
            wall_seconds=rep.wall_seconds, cached=rep.cached,
            attempts=rep.attempts, worker=-3, worker_id=rep.worker)
        outcomes[rep.index] = outcome
        done_ct += 1
        if progress is not None:
            progress(outcome, done_ct, total)
    done = sub.done or {}
    service = done.get("service", {})
    count_service_obs(obs, service)
    cache_stats = CacheStats(hits=done.get("cache_hits", 0),
                             misses=done.get("executed", 0),
                             stores=done.get("executed", 0))
    return SweepOutcome(
        outcomes=outcomes,  # type: ignore[arg-type]
        cache_stats=cache_stats,
        jobs=max(1, int(service.get("workers", 0))),
        executed=done.get("executed", 0),
        retried=service.get("requeued", 0),
        wall_seconds=time.perf_counter() - t0,
        failure_counts=dict(service.get("failure_counts", {})),
        degraded=False,
        service=service or None,
    )


def service_status(address: str, timeout: Optional[float] = 10.0) -> Dict:
    """Ask a running coordinator for its worker table and counters."""
    sock = connect(address, timeout=timeout)
    try:
        send_message(sock, message("status"))
        reply = recv_message(sock)
    finally:
        sock.close()
    if reply["t"] != "status_reply":
        raise WireError(f"unexpected status reply {reply['t']!r}")
    return reply


def stop_service(address: str, timeout: Optional[float] = 10.0) -> bool:
    """Ask a running coordinator to shut down; True when acknowledged."""
    sock = connect(address, timeout=timeout)
    try:
        send_message(sock, message("stop"))
        reply = recv_message(sock)
    finally:
        sock.close()
    return reply["t"] == "ok"
