"""Scenario task model: picklable specs with content-addressed digests.

A :class:`ScenarioSpec` is the unit of work of the execution engine — a
complete, declarative description of one simulated run (kernel, problem
size, team size, adaptation/fault script, perf switches, seed).  Unlike
the callables :func:`repro.bench.run_experiment` takes, a spec crosses
process boundaries (spawn-based workers pickle it) and serializes to a
*canonical JSON* form whose SHA-256 is the spec's **config digest**: two
specs describe the same simulation if and only if their digests match,
which is what keys the content-addressed result cache.

Everything a spec references is declarative on purpose: adapt events are
``(action, time, node, grace)`` records, fault scenarios are the plan
*text* (``repro.faults.dump_plan`` round-trips), and kernels are named in
a registry — no closures, no live objects.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError

#: Canonical-serialization schema; bump when the digest-relevant layout
#: of ScenarioSpec changes (old cache entries then miss on digest).
SPEC_SCHEMA = "repro-scenario/1"

#: Problem-size parameters each kernel accepts (and their digest order).
KERNEL_PARAMS: Dict[str, Tuple[str, ...]] = {
    "jacobi": ("n", "iterations"),
    "gauss": ("n", "iterations"),
    "fft3d": ("nx", "ny", "nz", "iterations"),
    "nbf": ("natoms", "npartners", "iterations"),
    "jacobi-resumable": ("n", "iterations"),
}

#: Tolerances for the materialized-mode verification (matches the CLI and
#: the recovery sweep).
VERIFY_RTOL = 1e-7
VERIFY_ATOL = 1e-9


@dataclass(frozen=True)
class AdaptEvent:
    """One scripted adaptation or crash, CLI ``ACTION:TIME[:NODE]`` style.

    ``node=None`` uses the same defaults as the CLI: the node hosting the
    last pid for ``leave``/``crash``, the next free node id for ``join``.
    """

    action: str
    time: float
    node: Optional[int] = None
    grace: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action not in ("join", "leave", "crash"):
            raise ConfigurationError(f"unknown adapt action {self.action!r}")
        if self.time < 0:
            raise ConfigurationError("adapt event time must be >= 0")

    def canonical(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "time": self.time,
            "node": self.node,
            "grace": self.grace,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, hashable description of one simulated run."""

    #: Kernel name (see :data:`KERNEL_PARAMS`).
    kernel: str
    #: Problem-size keyword arguments for the kernel.
    params: Mapping[str, int] = field(default_factory=dict)
    nprocs: int = 4
    #: Charge compute through the Table-1-calibrated rates
    #: (:mod:`repro.bench.calibrate`) instead of the kernels' defaults.
    calibrated: bool = True
    adaptive: bool = False
    materialized: bool = False
    extra_nodes: int = 0
    #: Scripted adapt events / crashes.
    events: Tuple[AdaptEvent, ...] = ()
    #: Fault plan *text* (``repro.faults.parse_plan`` format), or None.
    fault_plan: Optional[str] = None
    checkpoint_interval: Optional[float] = None
    failure_detection: bool = False
    #: Override of :attr:`SystemConfig.seed` (None keeps the default).
    seed: Optional[int] = None
    #: :class:`~repro.config.PerfParams` field overrides (e.g.
    #: ``{"plan_cache": False}``).
    perf: Mapping[str, Any] = field(default_factory=dict)
    #: Display name for progress/reports; **excluded from the digest**.
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kernel not in KERNEL_PARAMS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; one of {sorted(KERNEL_PARAMS)}"
            )
        if self.nprocs < 1:
            raise ConfigurationError("nprocs must be >= 1")
        allowed = set(KERNEL_PARAMS[self.kernel])
        unknown = set(self.params) - allowed
        if unknown:
            raise ConfigurationError(
                f"{self.kernel}: unknown params {sorted(unknown)}; allowed {sorted(allowed)}"
            )
        # Freeze the mutable collections so specs hash/pickle predictably.
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "perf", dict(self.perf))
        object.__setattr__(self, "events", tuple(self.events))

    # -- identity ----------------------------------------------------------
    def canonical_dict(self) -> Dict[str, Any]:
        """Digest-relevant fields, fixed layout (``label`` excluded)."""
        return {
            "schema": SPEC_SCHEMA,
            "kernel": self.kernel,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "nprocs": self.nprocs,
            "calibrated": self.calibrated,
            "adaptive": self.adaptive,
            "materialized": self.materialized,
            "extra_nodes": self.extra_nodes,
            "events": [e.canonical() for e in self.events],
            "fault_plan": self.fault_plan,
            "checkpoint_interval": self.checkpoint_interval,
            "failure_detection": self.failure_detection,
            "seed": self.seed,
            "perf": {k: self.perf[k] for k in sorted(self.perf)},
        }

    def canonical_json(self) -> str:
        """Canonical serialization: sorted keys, no whitespace."""
        return json.dumps(self.canonical_dict(), sort_keys=True,
                          separators=(",", ":"))

    def config_digest(self) -> str:
        """SHA-256 over the canonical JSON — the spec's content address."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def replaced(self, **kwargs: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- wire form ---------------------------------------------------------
    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe dict that round-trips through :meth:`from_wire`.

        The canonical (digest-relevant) layout plus the display ``label``,
        which the coordinator/worker protocol preserves but the digest
        ignores.  ``ScenarioSpec.from_wire(spec.to_wire())`` reconstructs
        a spec with an **identical** config digest — the property the
        distributed service relies on to dedupe and cache across hosts.
        """
        d = self.canonical_dict()
        d["label"] = self.label
        return d

    @classmethod
    def from_wire(cls, d: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_wire` output (wire/JSON form)."""
        schema = d.get("schema")
        if schema != SPEC_SCHEMA:
            raise ConfigurationError(
                f"wire spec schema {schema!r} != {SPEC_SCHEMA!r}; "
                "coordinator and worker run different repro versions"
            )
        events = tuple(
            AdaptEvent(action=e["action"], time=e["time"],
                       node=e.get("node"), grace=e.get("grace"))
            for e in d.get("events", ())
        )
        return cls(
            kernel=d["kernel"],
            params=dict(d.get("params", {})),
            nprocs=d.get("nprocs", 4),
            calibrated=d.get("calibrated", True),
            adaptive=d.get("adaptive", False),
            materialized=d.get("materialized", False),
            extra_nodes=d.get("extra_nodes", 0),
            events=events,
            fault_plan=d.get("fault_plan"),
            checkpoint_interval=d.get("checkpoint_interval"),
            failure_detection=d.get("failure_detection", False),
            seed=d.get("seed"),
            perf=dict(d.get("perf", {})),
            label=d.get("label"),
        )

    @property
    def display_name(self) -> str:
        return self.label or f"{self.kernel}-{self.nprocs}"

    # -- execution ---------------------------------------------------------
    @property
    def has_crashes(self) -> bool:
        if any(e.action == "crash" for e in self.events):
            return True
        if self.fault_plan:
            from ..faults import parse_plan

            return bool(parse_plan(self.fault_plan).crash_times)
        return False

    @property
    def effective_adaptive(self) -> bool:
        """Adaptive runtime needed (explicitly or implied, as in the CLI)."""
        return bool(
            self.adaptive or self.events or self.fault_plan
            or self.checkpoint_interval is not None
        )

    def build_config(self):
        """The :class:`~repro.config.SystemConfig` this spec runs under."""
        from ..config import PerfParams, SystemConfig

        cfg = SystemConfig()
        if self.perf:
            cfg = cfg.with_(perf=PerfParams(**dict(self.perf)))
        if self.seed is not None:
            cfg = cfg.with_(seed=self.seed)
        return cfg

    def build_app(self):
        """Instantiate the kernel (calibrated rates when asked)."""
        if self.calibrated:
            from ..bench.calibrate import (
                make_fft3d,
                make_gauss,
                make_jacobi,
                make_nbf,
            )

            factories = {
                "jacobi": make_jacobi,
                "gauss": make_gauss,
                "fft3d": make_fft3d,
                "nbf": make_nbf,
            }
            if self.kernel not in factories:
                raise ConfigurationError(
                    f"no calibrated rates for kernel {self.kernel!r}"
                )
            return factories[self.kernel](**self.params)
        from ..apps import FFT3D, Gauss, Jacobi, NBF

        if self.kernel == "jacobi-resumable":
            from ..bench.recovery import ResumableJacobi

            return ResumableJacobi(**self.params)
        classes = {"jacobi": Jacobi, "gauss": Gauss, "fft3d": FFT3D, "nbf": NBF}
        return classes[self.kernel](**self.params)

    def install_events(self, rt) -> None:
        """Schedule the declarative events/fault plan on a fresh runtime."""
        for ev in self.events:
            if ev.action == "leave":
                node = ev.node if ev.node is not None else rt.team.node_of(rt.team.nprocs - 1)
                rt.sim.at(ev.time,
                          lambda n=node, g=ev.grace: rt.submit_leave(n, grace=g))
            elif ev.action == "crash":
                node = ev.node if ev.node is not None else rt.team.node_of(rt.team.nprocs - 1)
                rt.sim.at(ev.time, lambda n=node: rt.inject_crash(n))
            else:  # join
                node = ev.node if ev.node is not None else rt.team.nprocs
                rt.sim.at(ev.time, lambda n=node: rt.submit_join(n))
        if self.fault_plan:
            from ..faults import FaultInjector, parse_plan

            FaultInjector(rt, parse_plan(self.fault_plan)).install()


def spec_from_preset(preset: str, kernel: str, nprocs: int,
                     calibrated: bool = True, **kwargs: Any) -> ScenarioSpec:
    """A spec at a named preset's problem size (``paper``/``bench``/``tiny``).

    The preset is resolved to explicit problem-size params at construction
    time, so the digest captures the actual configuration rather than the
    preset name (presets may be re-tuned between versions).
    """
    from ..apps import BENCH, PAPER, TINY

    presets = {"paper": PAPER, "bench": BENCH, "tiny": TINY}
    if preset not in presets:
        raise ConfigurationError(f"unknown preset {preset!r}")
    if kernel not in presets[preset]:
        raise ConfigurationError(f"unknown kernel {kernel!r}")
    app = presets[preset][kernel].make()
    params = {name: getattr(app, name) for name in KERNEL_PARAMS[kernel]}
    return ScenarioSpec(kernel=kernel, params=params, nprocs=nprocs,
                        calibrated=calibrated, **kwargs)
