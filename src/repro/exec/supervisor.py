"""Supervision policy for the scenario-execution engine.

This module holds the *policy* half of the resilience layer: how long a
task may run (:class:`DeadlinePolicy`), how failures are classified (the
:class:`TaskFailure` taxonomy), how retries are paced
(:class:`RetryPolicy` — seeded exponential backoff with deterministic
jitter), and when a sweep should stop trusting the pool entirely and
degrade to in-process serial execution (:class:`SupervisorPolicy`).

The *mechanism* half — spawning, monitoring and reaping workers — lives
in :mod:`repro.exec.pool`, which consumes these policies.  Keeping the
policy pure (no processes, no clocks beyond arithmetic) makes every
decision unit-testable and, critically, **deterministic**: two sweeps
over the same specs with the same supervisor seed compute identical
backoff schedules, so chaos runs are reproducible.

Everything here is exactly what a multi-host sweep coordinator needs
unchanged: deadlines, attempt accounting and the error taxonomy are
task-level concepts, not process-level ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..config import EXEC_RETRIES
from ..errors import ExecError
from .spec import ScenarioSpec

__all__ = [
    "TaskFailure",
    "WorkerCrash",
    "TaskTimeout",
    "CacheCorrupt",
    "ResourceExhausted",
    "AttemptRecord",
    "RetryPolicy",
    "DeadlinePolicy",
    "SupervisorPolicy",
    "seeded_unit",
]


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------
class TaskFailure(ExecError):
    """A task-level failure with a machine-readable ``kind``.

    Every terminal failure the supervisor can attribute carries the spec,
    its digest and the attempt count, so a sweep that gives up does so
    with a structured, attributed report rather than a bare traceback.
    """

    kind = "failure"

    def __init__(self, message: str, spec: Optional[ScenarioSpec] = None,
                 attempts: int = 0):
        super().__init__(message)
        self.spec = spec
        self.digest = spec.config_digest() if spec is not None else ""
        self.attempts = attempts


class WorkerCrash(TaskFailure):
    """The worker process died without reporting (signal, ``os._exit``)."""

    kind = "worker_crash"


class TaskTimeout(TaskFailure):
    """The task overran its wall-clock deadline and was reaped."""

    kind = "task_timeout"


class CacheCorrupt(TaskFailure):
    """A cache entry failed its integrity check and was quarantined."""

    kind = "cache_corrupt"


class ResourceExhausted(TaskFailure):
    """The host refused resources (pipe/process creation failed)."""

    kind = "resource_exhausted"


#: Failure kinds in reporting order (stable across runs).
FAILURE_KINDS = ("worker_crash", "task_timeout", "cache_corrupt",
                 "resource_exhausted")


# ---------------------------------------------------------------------------
# per-attempt accounting
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AttemptRecord:
    """One execution attempt of one task, as the supervisor saw it."""

    attempt: int
    #: ``"ok"`` or a :class:`TaskFailure` kind.
    outcome: str
    wall_seconds: float = 0.0
    worker: int = -1
    #: Human-readable detail (exit code, deadline, quarantine path...).
    detail: str = ""
    #: Backoff slept *before* this attempt (0.0 for the first).
    backoff_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "wall_seconds": self.wall_seconds,
            "worker": self.worker,
            "detail": self.detail,
            "backoff_seconds": self.backoff_seconds,
        }


# ---------------------------------------------------------------------------
# deterministic jitter
# ---------------------------------------------------------------------------
def seeded_unit(*parts) -> float:
    """A deterministic float in [0, 1) derived from hashing ``parts``.

    The same parts always yield the same value, independent of process,
    platform and ``PYTHONHASHSEED`` — the engine's only randomness source,
    so retry schedules (and chaos plans) replay exactly.
    """
    key = ":".join(str(p) for p in parts).encode()
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


# ---------------------------------------------------------------------------
# retry pacing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with deterministic jitter.

    ``max_attempts`` counts *executions*, not retries: the engine's
    legacy ``retries=1`` default maps to ``max_attempts=2``.  The delay
    before attempt ``a`` (a >= 2) is::

        d = min(max_delay, base_delay * multiplier ** (a - 2))
        sleep in [d * (1 - jitter), d]     # jittered deterministically

    where the jitter fraction comes from ``sha256(seed:key:a)`` — two
    runs with the same seed back off identically, and distinct tasks
    de-synchronize instead of thundering back in lockstep.
    """

    max_attempts: int = EXEC_RETRIES + 1
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def validate(self) -> "RetryPolicy":
        if self.max_attempts < 1:
            raise ExecError("retry max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ExecError("retry delays must be >= 0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ExecError("retry jitter must be in [0, 1]")
        if self.multiplier < 1.0:
            raise ExecError("retry multiplier must be >= 1")
        return self

    def backoff(self, key: str, attempt: int) -> float:
        """Seconds to wait before executing ``attempt`` (1-based)."""
        if attempt <= 1:
            return 0.0
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 2))
        unit = seeded_unit(self.seed, key, attempt)
        return delay * (1.0 - self.jitter * unit)

    @classmethod
    def from_retries(cls, retries: int, **kw) -> "RetryPolicy":
        """Adapt the legacy ``retries=N`` knob (N re-executions)."""
        return cls(max_attempts=max(1, retries + 1), **kw)


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-task wall-clock deadlines derived from the spec.

    The deadline scales with a crude cost proxy (``nprocs`` x the product
    of the spec's numeric parameters) but never drops below
    ``floor_seconds`` — worker spawn plus interpreter/numpy import costs
    about a second before the simulation even starts, so a floor
    calibrated well above that keeps healthy tasks from ever being
    reaped.  Set ``floor_seconds=0`` with a tiny ``overhead_seconds``
    only in tests that *want* timeouts.
    """

    floor_seconds: float = 30.0
    overhead_seconds: float = 10.0
    #: Seconds granted per unit of the cost proxy.
    per_cost_seconds: float = 1e-4

    def validate(self) -> "DeadlinePolicy":
        if self.floor_seconds < 0 or self.overhead_seconds < 0:
            raise ExecError("deadline seconds must be >= 0")
        if self.per_cost_seconds < 0:
            raise ExecError("deadline per_cost_seconds must be >= 0")
        return self

    @staticmethod
    def cost_proxy(spec: ScenarioSpec, repeat: int = 1) -> float:
        """A unitless work estimate: nprocs x product(numeric params)."""
        cost = float(max(1, spec.nprocs))
        for value in spec.params.values():
            if isinstance(value, (int, float)) and value > 0:
                cost *= float(value)
        return cost * max(1, repeat)

    def deadline_for(self, spec: ScenarioSpec, repeat: int = 1) -> float:
        """Wall-clock budget in seconds for one attempt of ``spec``."""
        scaled = (self.overhead_seconds
                  + self.cost_proxy(spec, repeat) * self.per_cost_seconds)
        return max(self.floor_seconds, scaled)


# ---------------------------------------------------------------------------
# the aggregate policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorPolicy:
    """Everything the pool needs to supervise a sweep.

    ``degrade_after`` is the graceful-degradation ladder's trigger: after
    that many *consecutive* pool-level failures (crashes, timeouts,
    resource exhaustion — anywhere in the sweep) the engine stops
    spawning workers and finishes the remaining tasks serially in
    process, which cannot crash-loop and produces bitwise-identical
    results.  Set it to 0 to disable degradation.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: DeadlinePolicy = field(default_factory=DeadlinePolicy)
    degrade_after: int = 3

    def validate(self) -> "SupervisorPolicy":
        self.retry.validate()
        self.deadline.validate()
        if self.degrade_after < 0:
            raise ExecError("degrade_after must be >= 0")
        return self

    @classmethod
    def from_retries(cls, retries: int, **kw) -> "SupervisorPolicy":
        return cls(retry=RetryPolicy.from_retries(retries), **kw)
