"""Length-prefixed JSON wire protocol of the distributed sweep service.

Every frame on a coordinator/worker/client socket is::

    +----------------+----------------------------+
    | 4 bytes, !I    | UTF-8 canonical JSON body  |
    | payload length | (sorted keys, compact)     |
    +----------------+----------------------------+

The body is always a JSON object with a ``"t"`` (type) field; the other
fields are type-specific and validated by :func:`validate_message`
against :data:`MESSAGE_FIELDS`.  Specs travel in their wire form
(:meth:`~repro.exec.spec.ScenarioSpec.to_wire`), results as the
canonical :meth:`~repro.exec.result.ScenarioResult.to_dict` — both are
content-addressed, so a digest computed on any host names the same
simulation and the same bytes.

The framing is deliberately dumb: no compression, no pipelining
negotiation, no partial frames.  Frames are small (specs and results are
a few KB of JSON) and the protocol is request/stream oriented; a
4-byte length prefix plus ``sendall`` is exactly as much protocol as the
service needs, and :func:`recv_frame` can always distinguish "peer went
away between frames" (:class:`ConnectionClosed`) from "peer died
mid-frame" (:class:`WireError`), which is what the coordinator's
requeue-on-death logic keys on.  See docs/SERVICE.md.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ExecError

#: Protocol identifier; sent in ``hello``/``welcome`` and checked by both
#: ends.  Bump on any incompatible frame-layout or message change.
WIRE_SCHEMA = "repro-service-wire/1"

#: Hard cap on one frame's payload (a result is a few KB; 64 MiB means a
#: corrupt or malicious length prefix cannot make a peer allocate blindly).
MAX_FRAME_BYTES = 64 << 20

_HEADER = struct.Struct("!I")


class WireError(ExecError):
    """A malformed frame or protocol violation on a service socket."""

    kind = "wire"


class ConnectionClosed(WireError):
    """The peer closed the connection cleanly between frames."""

    kind = "connection_closed"


#: Message type -> required fields (beyond ``t``).  Optional fields are
#: listed in the second tuple.  This table *is* the protocol surface;
#: docs/SERVICE.md renders it verbatim.
MESSAGE_FIELDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    # worker -> coordinator
    "hello": (("schema", "role"), ("host", "pid", "slots", "salt")),
    "result": (("task_id", "digest", "result", "wall_seconds"),
               ("attempts", "failure_counts")),
    "task_error": (("task_id", "digest", "kind", "detail"), ()),
    "heartbeat": ((), ()),
    # coordinator -> worker
    "welcome": (("schema", "worker_id"), ("heartbeat_interval",)),
    "task": (("task_id", "spec"), ("repeat",)),
    "shutdown": ((), ("reason",)),
    # client -> coordinator
    "submit": (("specs",), ("repeat", "no_cache", "refresh")),
    "status": ((), ()),
    "stop": ((), ()),
    # coordinator -> client
    "report": (("index", "digest", "result", "cached", "deduped"),
               ("wall_seconds", "worker", "attempts")),
    "done": (("total", "executed", "cache_hits", "deduped"),
             ("requeued", "wall_seconds", "service")),
    "status_reply": (("workers", "counters"), ("queued", "inflight")),
    "error": (("message",), ("index", "digest", "kind")),
    "ok": ((), ()),
}


def message(t: str, **fields: Any) -> Dict[str, Any]:
    """Build a message dict of type ``t`` and validate it."""
    msg = {"t": t, **fields}
    validate_message(msg)
    return msg


def validate_message(msg: Mapping[str, Any]) -> str:
    """Check shape against :data:`MESSAGE_FIELDS`; returns the type."""
    if not isinstance(msg, Mapping):
        raise WireError(f"frame body must be a JSON object, got {type(msg).__name__}")
    t = msg.get("t")
    if t not in MESSAGE_FIELDS:
        raise WireError(f"unknown message type {t!r}")
    required, optional = MESSAGE_FIELDS[t]
    missing = [f for f in required if f not in msg]
    if missing:
        raise WireError(f"message {t!r} missing fields {missing}")
    allowed = {"t", *required, *optional}
    unknown = sorted(set(msg) - allowed)
    if unknown:
        raise WireError(f"message {t!r} has unknown fields {unknown}")
    return t


def encode_frame(msg: Mapping[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes (header + body)."""
    payload = json.dumps(msg, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(payload)} bytes exceeds "
                        f"MAX_FRAME_BYTES ({MAX_FRAME_BYTES})")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse and validate one frame body."""
    try:
        msg = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise WireError(f"undecodable frame payload: {err}") from None
    validate_message(msg)
    return msg


def send_message(sock: socket.socket, msg: Mapping[str, Any]) -> None:
    """Validate, frame and send one message (blocking ``sendall``)."""
    validate_message(msg)
    try:
        sock.sendall(encode_frame(msg))
    except OSError as err:
        raise ConnectionClosed(f"send failed: {err}") from None


def _recv_exactly(sock: socket.socket, n: int, *, mid_frame: bool) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            raise  # the coordinator's heartbeat-liveness probe
        except OSError as err:
            raise ConnectionClosed(f"recv failed: {err}") from None
        if not chunk:
            if chunks or mid_frame:
                raise WireError(
                    f"peer closed mid-frame ({n - remaining}/{n} bytes)"
                )
            raise ConnectionClosed("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read one frame; raises :class:`ConnectionClosed` on clean EOF.

    ``socket.timeout`` propagates to the caller — the coordinator uses a
    receive timeout as its heartbeat-liveness check.
    """
    header = _recv_exactly(sock, _HEADER.size, mid_frame=False)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    return decode_payload(_recv_exactly(sock, length, mid_frame=True))


def parse_address(address: str, default_port: int = 7070) -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"host"``) -> ``(host, port)``."""
    if not address:
        raise WireError("empty coordinator address")
    host, sep, port = address.rpartition(":")
    if not sep:
        return address, default_port
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise WireError(f"bad coordinator address {address!r}; "
                        "expected HOST:PORT") from None


def connect(address: str, timeout: Optional[float] = None,
            retry_seconds: float = 0.0) -> socket.socket:
    """TCP-connect to ``"host:port"``, optionally retrying for a while.

    ``retry_seconds`` papers over the startup race of "worker launched a
    moment before the coordinator finished binding": connection-refused
    errors are retried with a short sleep until the budget runs out.
    """
    import time

    host, port = parse_address(address)
    deadline = time.monotonic() + retry_seconds
    while True:
        try:
            return socket.create_connection((host, port), timeout=timeout)
        except OSError as err:
            if time.monotonic() >= deadline:
                raise ConnectionClosed(
                    f"cannot connect to coordinator at {host}:{port}: {err}"
                ) from None
            time.sleep(0.05)
