"""Worker leaf of the distributed sweep service.

A :class:`Worker` connects to a coordinator (:mod:`repro.exec.service`),
registers with ``hello``, and then executes the tasks it is handed one
at a time — each through :func:`repro.exec.pool.run_specs`, i.e. the
**existing** engine with its spawn pool, supervisor and (optional) local
cache wrapped as this host's local leaf:

* ``jobs=1`` (the default) runs the simulation in-process — cheapest,
  and what the CI/service tests use;
* ``jobs>=2`` spawns the scenario into a supervised worker *process*,
  buying crash isolation and the retry/deadline machinery of PR 6 for
  each leased task (``repro workers --isolate``).

Failure split, mirroring the local pool's attribution logic:

* a **deterministic** failure (the simulation raised) is reported as a
  ``task_error`` frame — rerunning it elsewhere would fail identically,
  so the coordinator fails the task's waiters instead of requeueing;
* the worker *process dying* (crash, kill, OOM) is detected by the
  coordinator as a connection/heartbeat loss and the task is requeued on
  a surviving worker — the worker does not get a vote.

A dedicated heartbeat thread keeps frames flowing while a long
simulation runs, which is what lets the coordinator use a plain receive
timeout as its liveness probe.  Results optionally land in a
worker-local :class:`~repro.exec.cache.ResultCache` too; digests are
location-independent, so that cache can later be shipped home with
``repro cache merge`` (:mod:`repro.exec.merge`).
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Optional

from ..errors import ExecError
from .cache import ResultCache
from .pool import run_specs
from .spec import ScenarioSpec
from .supervisor import SupervisorPolicy
from .wire import (
    WIRE_SCHEMA,
    ConnectionClosed,
    WireError,
    connect,
    message,
    recv_message,
    send_message,
)

#: How long a freshly launched worker keeps retrying the coordinator
#: address before giving up (covers "worker started first" races).
DEFAULT_CONNECT_RETRY_SECONDS = 10.0


class Worker:
    """One service worker: a connection, a heartbeat, and the local engine.

    ``run()`` blocks until the coordinator says ``shutdown`` or the
    connection drops; ``start()``/``stop()`` wrap it in a thread for
    in-process embedding (tests, ``repro workers --count N``).
    """

    def __init__(self, address: str, *,
                 cache: Optional[ResultCache] = None,
                 jobs: int = 1,
                 slots: int = 1,
                 supervisor: Optional[SupervisorPolicy] = None,
                 connect_retry_seconds: float = DEFAULT_CONNECT_RETRY_SECONDS):
        if jobs < 1:
            raise ExecError("jobs must be >= 1")
        if slots < 1:
            raise ExecError("slots must be >= 1")
        self.address = address
        self.cache = cache
        self.jobs = jobs
        self.slots = slots
        self.supervisor = supervisor
        self.connect_retry_seconds = connect_retry_seconds
        self.worker_id: Optional[str] = None
        self.tasks_done = 0
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._heartbeat_thread: Optional[threading.Thread] = None

    # -- protocol ----------------------------------------------------------
    def _send(self, msg) -> None:
        with self._send_lock:
            send_message(self._sock, msg)

    def _register(self) -> float:
        """Connect, say hello, read the welcome; returns the heartbeat
        interval the coordinator wants."""
        self._sock = connect(self.address,
                             retry_seconds=self.connect_retry_seconds)
        self._send(message("hello", schema=WIRE_SCHEMA, role="worker",
                           host=socket.gethostname(), pid=os.getpid(),
                           slots=self.slots))
        welcome = recv_message(self._sock)
        if welcome["t"] != "welcome":
            raise WireError(f"expected welcome, got {welcome['t']!r}")
        if welcome["schema"] != WIRE_SCHEMA:
            raise WireError(
                f"coordinator speaks {welcome['schema']!r}, "
                f"this worker {WIRE_SCHEMA!r}")
        self.worker_id = welcome["worker_id"]
        return float(welcome.get("heartbeat_interval", 1.0))

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                self._send(message("heartbeat"))
            except (WireError, OSError):
                return  # connection is gone; the main loop notices too

    def _execute(self, task) -> None:
        """Run one leased task through the local engine and report."""
        spec = ScenarioSpec.from_wire(task["spec"])
        digest = spec.config_digest()
        try:
            outcome = run_specs(
                [spec],
                jobs=self.jobs,
                cache=self.cache,
                repeat=int(task.get("repeat", 1)),
                supervisor=self.supervisor,
            )
        except ExecError as err:
            self._send(message(
                "task_error", task_id=task["task_id"], digest=digest,
                kind=getattr(err, "kind", None) or "error",
                detail=str(err)))
            return
        o = outcome.outcomes[0]
        self.tasks_done += 1
        self._send(message(
            "result", task_id=task["task_id"], digest=digest,
            result=o.result.to_dict(), wall_seconds=o.wall_seconds,
            attempts=max(1, o.attempts),
            failure_counts=outcome.failure_counts or {}))

    # -- lifecycle ---------------------------------------------------------
    def run(self) -> None:
        """Serve until ``shutdown`` / connection loss / :meth:`stop`."""
        interval = self._register()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, args=(interval,),
            name=f"worker-{self.worker_id}-heartbeat", daemon=True)
        self._heartbeat_thread.start()
        try:
            while not self._stop.is_set():
                try:
                    msg = recv_message(self._sock)
                except (ConnectionClosed, OSError):
                    return  # coordinator gone (or stop() closed the socket)
                t = msg["t"]
                if t == "task":
                    self._execute(msg)
                elif t == "shutdown":
                    return
        finally:
            self._stop.set()
            try:
                self._sock.close()
            except OSError:
                pass

    def start(self) -> "Worker":
        """Run in a daemon thread (in-process embedding)."""
        self._thread = threading.Thread(
            target=self.run, name="service-worker", daemon=True)
        self._thread.start()
        return self

    def stop(self, join_timeout: float = 5.0) -> None:
        """Disconnect and (when started via :meth:`start`) join."""
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(join_timeout)

    def __enter__(self) -> "Worker":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def worker_main(address: str, cache_dir: Optional[str] = None,
                jobs: int = 1, slots: int = 1,
                connect_retry_seconds: float = DEFAULT_CONNECT_RETRY_SECONDS,
                ) -> None:
    """Process entry point for ``repro workers`` (spawn-friendly: module
    level, only picklable arguments)."""
    cache = ResultCache(root=cache_dir) if cache_dir else None
    Worker(address, cache=cache, jobs=jobs, slots=slots,
           connect_retry_seconds=connect_retry_seconds).run()
