"""Fault injection and failure detection.

Declarative, seeded failure scenarios for the adaptive DSM system:
:class:`FaultPlan` scripts node crashes and link faults, a
:class:`FaultInjector` replays a plan onto a running system, a
:class:`LinkFaults` object holds the switch-level injection state, and
:class:`FailureDetector` is the master-driven heartbeat prober feeding the
crash-recovery orchestrator in :mod:`repro.core.recovery`.
"""

from .detector import FailureDetector
from .links import LinkFaults
from .plan import (
    FaultAction,
    FaultInjector,
    FaultPlan,
    dump_plan,
    parse_plan,
    parse_plan_file,
)

__all__ = [
    "FailureDetector",
    "LinkFaults",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "dump_plan",
    "parse_plan",
    "parse_plan_file",
]
