"""Master-driven heartbeat failure detection.

The master probes every slave node over the ordinary NIC — heartbeats
share the wire and the slave's handler CPU with protocol traffic, so a
node buried in page requests acks late and a congested link can produce
*false suspicions* (counted, and healed by the next ack).  A node missing
``suspicion_threshold`` consecutive probes is declared crashed and handed
to the recovery orchestrator; the declaration is fenced by killing the
node, so a merely-partitioned node cannot resurface mid-recovery.

Heartbeat kinds are control-plane: the loss/duplication models leave them
alone (a real implementation retransmits probes anyway — a lost probe is
indistinguishable from a missed one and simply counts as a miss).
"""

from __future__ import annotations

from typing import Dict, Generator

from ..config import FaultParams
from ..errors import NetworkError
from ..network import message as mk
from ..network.message import Message
from ..simcore import Signal


class FailureDetector:
    """Periodic heartbeat rounds from the master to every slave node."""

    def __init__(self, runtime, params: FaultParams):
        self.runtime = runtime
        self.params = params
        self.heartbeats_sent = 0
        self.heartbeat_misses = 0
        self.false_suspicions = 0
        #: node id -> consecutive missed probes.
        self._misses: Dict[int, int] = {}
        self._proc = None

    def start(self) -> None:
        """Launch the detector loop (idempotent; no-op if disabled)."""
        if self.params.heartbeat_interval <= 0:
            return
        if self._proc is not None and self._proc.alive:
            return
        self._proc = self.runtime.sim.process(
            self._loop(), name="failure.detector", daemon=True
        )

    def reset(self) -> None:
        """Forget suspicion state (after a recovery rebuilt the team)."""
        self._misses.clear()

    # -- internals ------------------------------------------------------
    def _loop(self) -> Generator:
        runtime = self.runtime
        sim = runtime.sim
        while not runtime.finished:
            yield sim.timeout(self.params.heartbeat_interval)
            if runtime.finished or runtime._recovering:
                continue
            master = runtime.master
            if master.node.crashed:
                # The probing end itself died; any survivor would notice
                # the silence — the detector stands in for that survivor.
                runtime._declare_crashed(master.node.node_id, reason="heartbeat")
                continue
            for pid in runtime.team.slave_pids:
                node_id = runtime.team.node_of(pid)
                sim.process(
                    self._probe(master, pid, node_id),
                    name=f"hb.{node_id}",
                    daemon=True,
                )

    def _probe(self, master, pid: int, node_id: int) -> Generator:
        sim = self.runtime.sim
        nic = master.node.nic
        rid = mk.next_req_id()
        msg = Message(
            mk.HEARTBEAT,
            src=master.node.node_id,
            dst=node_id,
            size_bytes=4,
            req_id=rid,
            src_pid=master.pid,
            dst_pid=pid,
        )
        self.heartbeats_sent += 1
        obs = sim.obs
        if obs.enabled:
            obs.count("detector.heartbeats_sent")
        nic._pending_reqs.add(rid)
        try:
            nic.send(msg)
        except NetworkError:
            # The peer's (or our own) port is dark: instant miss.
            nic._complete_request(rid)
            self._miss(node_id)
            return
        acked = []
        deadline = Signal(sim, name=f"hb.{node_id}.{rid}")

        def on_ack(reply, exc) -> None:
            acked.append(reply)
            if not deadline.fired:
                deadline.fire()

        recv = nic.replies.recv(match=lambda m, rid=rid: m.req_id == rid)
        recv.subscribe(on_ack)
        timer = sim.schedule(
            self.params.heartbeat_timeout,
            lambda: None if deadline.fired else deadline.fire(),
        )
        yield deadline
        recv.unsubscribe(on_ack)
        timer.cancel()
        nic._complete_request(rid)
        if acked:
            self._ack(node_id)
        else:
            self._miss(node_id)

    def _ack(self, node_id: int) -> None:
        if self._misses.get(node_id, 0) > 0:
            self.false_suspicions += 1
            obs = self.runtime.sim.obs
            if obs.enabled:
                obs.count("detector.false_suspicions")
            self.runtime.sim.tracer.emit(
                "fault", "suspicion_cleared", f"node{node_id}"
            )
        self._misses[node_id] = 0

    def _miss(self, node_id: int) -> None:
        runtime = self.runtime
        if runtime.finished or runtime._recovering:
            return
        if not runtime.team.has_node(node_id):
            return  # the team changed while the probe was in flight
        self.heartbeat_misses += 1
        obs = runtime.sim.obs
        if obs.enabled:
            obs.count("detector.heartbeat_misses")
        count = self._misses.get(node_id, 0) + 1
        self._misses[node_id] = count
        runtime.sim.tracer.emit(
            "fault", "heartbeat_miss", f"node{node_id} {count}/{self.params.suspicion_threshold}"
        )
        if count >= self.params.suspicion_threshold:
            runtime._declare_crashed(node_id, reason="heartbeat")
