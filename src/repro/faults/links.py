"""Switch-level link fault injection.

The star topology gives every node a private full-duplex port, so link
faults are modelled at the switch: a *cut* silently discards everything
between a node pair (a network partition seen from those two endpoints), a
*degraded* port adds fixed latency to every message touching it, and
seeded per-message *duplicate* / *delay* injection exercises the UDP
reliability layer (retransmit timers, duplicate-reply suppression).

Like the loss model, the stochastic injections apply to the idempotent
data plane only by default (``kinds``); cuts and degradation hit every
message — a partition does not care about message kinds.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

import numpy as np

from ..errors import FaultError
from ..network.message import Message
from ..network.reliability import DATA_PLANE


class LinkFaults:
    """Mutable fault state consulted by :meth:`Switch.transmit`."""

    def __init__(self, seed: int = 0xFA17, kinds: FrozenSet[str] = DATA_PLANE):
        #: Partitioned node pairs (frozenset of the two endpoints).
        self._cut: Set[FrozenSet[int]] = set()
        #: node id -> extra one-way latency in seconds.
        self._degraded: Dict[int, float] = {}
        self.dup_rate = 0.0
        self.delay_rate = 0.0
        self.delay_seconds = 0.0
        self.kinds = kinds
        self._rng = np.random.default_rng(seed)
        self._ever_unreliable = False

    # -- gating --------------------------------------------------------
    @property
    def unreliable(self) -> bool:
        """True once message loss/duplication is possible on this wire.

        Latched, never cleared: requests issued while this is True go
        through the retransmitting :class:`ReliableRequest` path and their
        replies are deduplicated.  Clearing it mid-run would strand
        in-flight requests on the wrong filtering regime, so a wire that
        was ever unreliable stays gated for the rest of the run.
        """
        return self._ever_unreliable

    def mark_unreliable(self) -> None:
        """Latch the unreliable-wire gate (see :attr:`unreliable`)."""
        self._ever_unreliable = True

    # -- operator actions ----------------------------------------------
    def cut(self, a: int, b: int) -> None:
        """Partition nodes ``a`` and ``b``: all traffic between them dies."""
        if a == b:
            raise FaultError(f"cannot cut node {a} from itself")
        self._cut.add(frozenset((a, b)))
        self.mark_unreliable()

    def heal(self, a: int, b: int) -> None:
        """Undo a cut (messages already discarded stay lost)."""
        self._cut.discard(frozenset((a, b)))

    def degrade(self, node_id: int, extra_latency: float) -> None:
        """Add ``extra_latency`` seconds to every message via ``node_id``."""
        if extra_latency < 0:
            raise FaultError(f"negative degradation: {extra_latency}")
        self._degraded[node_id] = extra_latency

    def restore(self, node_id: int) -> None:
        """Remove the degradation of ``node_id``'s port."""
        self._degraded.pop(node_id, None)

    def set_duplicate(self, rate: float) -> None:
        """Duplicate this fraction of data-plane messages."""
        if not 0.0 <= rate < 1.0:
            raise FaultError(f"duplicate rate must be in [0, 1): {rate}")
        self.dup_rate = rate
        if rate > 0:
            self.mark_unreliable()

    def set_delay(self, rate: float, seconds: float) -> None:
        """Delay this fraction of data-plane messages by ``seconds``."""
        if not 0.0 <= rate < 1.0:
            raise FaultError(f"delay rate must be in [0, 1): {rate}")
        if seconds < 0:
            raise FaultError(f"negative delay: {seconds}")
        self.delay_rate = rate
        self.delay_seconds = seconds
        if rate > 0:
            self.mark_unreliable()

    # -- queries from Switch.transmit ------------------------------------
    def blocked(self, src: int, dst: int) -> bool:
        """Is the src<->dst path currently cut?"""
        return bool(self._cut) and frozenset((src, dst)) in self._cut

    def extra_latency(self, src: int, dst: int) -> float:
        """Added one-way latency from degraded endpoints."""
        if not self._degraded:
            return 0.0
        return self._degraded.get(src, 0.0) + self._degraded.get(dst, 0.0)

    def delay_for(self, msg: Message) -> float:
        """Seconds of injected delay for this message (0 = on time)."""
        if self.delay_rate <= 0.0 or msg.kind not in self.kinds:
            return 0.0
        if float(self._rng.random()) < self.delay_rate:
            return self.delay_seconds
        return 0.0

    def duplicate(self, msg: Message) -> bool:
        """Should a second copy of this message be delivered?"""
        if self.dup_rate <= 0.0 or msg.kind not in self.kinds:
            return False
        return float(self._rng.random()) < self.dup_rate
