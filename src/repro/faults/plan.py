"""Declarative fault plans: record and replay failure scenarios.

A *fault plan* is a plain-text script in the same spirit as the
availability traces (`time action args...` per line, ``#`` comments),
describing what goes wrong and when:

=========  ====================  ==========================================
action     arguments             effect
=========  ====================  ==========================================
crash      NODE                  fail-stop the node (kills its processes)
cut        A B                   partition nodes A and B at the switch
heal       A B                   undo the partition
degrade    NODE SECONDS          add one-way latency to the node's port
restore    NODE                  remove the degradation
duplicate  RATE                  duplicate this fraction of data messages
delay      RATE SECONDS          delay this fraction by SECONDS
=========  ====================  ==========================================

:class:`FaultInjector` schedules a parsed plan onto a runtime's simulator;
everything is seeded and deterministic, so a failure scenario is exactly
repeatable and shareable as a file (``repro run --faults plan.txt``).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import List, Sequence, TextIO, Tuple, Union

from ..errors import FaultError
from .links import LinkFaults

#: action name -> number of arguments after the timestamp.
_ACTIONS = {
    "crash": 1,
    "cut": 2,
    "heal": 2,
    "degrade": 2,
    "restore": 1,
    "duplicate": 1,
    "delay": 2,
}

#: Actions that make the wire lossy/duplicating — the injector latches the
#: unreliable-wire gate for these at install time, so requests already in
#: flight when the action fires are filtered consistently.
_UNRELIABLE_ACTIONS = frozenset({"cut", "duplicate", "delay"})


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault event."""

    time: float
    action: str
    args: Tuple[float, ...]

    def to_line(self) -> str:
        rendered = " ".join(
            str(int(a)) if float(a).is_integer() else f"{a:.6f}" for a in self.args
        )
        return f"{self.time:.6f} {self.action} {rendered}"


@dataclass
class FaultPlan:
    """An ordered list of fault actions (the parsed plan file)."""

    actions: List[FaultAction] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.actions = sorted(self.actions, key=lambda a: (a.time, a.action, a.args))

    @property
    def crash_times(self) -> List[Tuple[float, int]]:
        """(time, node) for every scheduled crash."""
        return [(a.time, int(a.args[0])) for a in self.actions if a.action == "crash"]

    def needs_reliability(self) -> bool:
        """Does any action require the reliable-request wire gating?"""
        return any(a.action in _UNRELIABLE_ACTIONS for a in self.actions)


def parse_plan(source: Union[str, TextIO]) -> FaultPlan:
    """Parse a fault plan from a string or file-like object."""
    if isinstance(source, str):
        source = io.StringIO(source)
    actions: List[FaultAction] = []
    for lineno, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        time_s, action = parts[0], parts[1] if len(parts) > 1 else ""
        if action not in _ACTIONS:
            raise FaultError(f"plan line {lineno}: unknown action {action!r}")
        want = _ACTIONS[action]
        if len(parts) != 2 + want:
            raise FaultError(
                f"plan line {lineno}: {action} takes {want} argument(s), "
                f"got {len(parts) - 2}"
            )
        try:
            time = float(time_s)
            args = tuple(float(a) for a in parts[2:])
        except ValueError as err:
            raise FaultError(f"plan line {lineno}: {err}") from None
        if time < 0:
            raise FaultError(f"plan line {lineno}: negative time")
        actions.append(FaultAction(time, action, args))
    return FaultPlan(actions)


def parse_plan_file(path) -> FaultPlan:
    """Parse a fault plan from a file path."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_plan(fh)


def dump_plan(plan: FaultPlan) -> str:
    """Render a plan back to text (round-trips with :func:`parse_plan`)."""
    lines = ["# time action args"]
    lines += [a.to_line() for a in plan.actions]
    return "\n".join(lines) + "\n"


class FaultInjector:
    """Schedule a :class:`FaultPlan` onto a runtime's simulator."""

    def __init__(self, runtime, plan: FaultPlan, seed: int = 0xFA17):
        self.runtime = runtime
        self.plan = plan
        self.seed = seed
        self.fired: List[FaultAction] = []
        self._installed = False

    def _link_faults(self) -> LinkFaults:
        switch = self.runtime.switch
        if switch.faults is None:
            switch.faults = LinkFaults(seed=self.seed)
        return switch.faults

    def install(self) -> None:
        """Schedule every action; must run before (or during) the run."""
        if self._installed:
            raise FaultError("fault plan already installed")
        self._installed = True
        if self.plan.needs_reliability():
            # Latch the retransmit/dedup gating now, not when the first
            # lossy action fires — requests in flight across the switch-on
            # instant must be filtered under one consistent regime.
            self._link_faults().mark_unreliable()
        for action in self.plan.actions:
            self.runtime.sim.at(action.time, lambda a=action: self._fire(a))

    def _fire(self, action: FaultAction) -> None:
        args = action.args
        if action.action == "crash":
            self.runtime.inject_crash(int(args[0]))
        elif action.action == "cut":
            self._link_faults().cut(int(args[0]), int(args[1]))
        elif action.action == "heal":
            self._link_faults().heal(int(args[0]), int(args[1]))
        elif action.action == "degrade":
            self._link_faults().degrade(int(args[0]), args[1])
        elif action.action == "restore":
            self._link_faults().restore(int(args[0]))
        elif action.action == "duplicate":
            self._link_faults().set_duplicate(args[0])
        elif action.action == "delay":
            self._link_faults().set_delay(args[0], args[1])
        else:  # pragma: no cover - parse_plan rejects unknown actions
            raise FaultError(f"unknown action {action.action!r}")
        self.fired.append(action)
        self.runtime.sim.tracer.emit("fault", action.action, action.to_line())
