"""Switched full-duplex Ethernet NOW model.

Provides the :class:`Switch` star topology, per-node :class:`Nic`
interfaces, directional :class:`Link` occupancy, the :class:`Message`
taxonomy used by the DSM and adaptive layers, and per-link traffic
accounting (:class:`TrafficStats`).
"""

from . import flight, message
from .link import Link
from .message import Message, next_req_id
from .nic import Nic
from .reliability import DATA_PLANE, LossModel, ReliableRequest
from .stats import TrafficSnapshot, TrafficStats
from .switch import Switch
from .topology import FatTreeSwitch, build_topology

__all__ = [
    "Link",
    "Message",
    "DATA_PLANE",
    "LossModel",
    "Nic",
    "ReliableRequest",
    "Switch",
    "FatTreeSwitch",
    "build_topology",
    "TrafficSnapshot",
    "TrafficStats",
    "flight",
    "message",
    "next_req_id",
]
