"""Flight-batched transport (PROTOCOL.md §13).

A *flight* is a set of messages whose sends are all issued back-to-back
within one scheduler event — a FORK fan-out, a barrier release wave, a
GC request round, a tree-relay hop.  Because no other event can run
between the sends, the per-leg walk through ``Nic.send`` →
``Switch.transmit`` → joint link reservation is a pure function of the
leg order: the i-th leg sees exactly the link state the first i-1 legs
left behind.  These helpers replay that walk for the whole flight in one
call, with every per-message invariant hoisted out of the loop — one
params/stats/queue lookup per *flight* instead of per *message* — and
the arithmetic kept in reference order so the result is bitwise
identical to sending the legs one at a time:

* per-link reservations use the same ``start = max(now, busy_until…)``
  / ``end = start + wire_bytes * per_byte`` float chain, replayed
  sequentially per leg (a vectorized prefix scan would re-associate the
  additions and drift in the last ulp — see the PROTOCOL.md §13 note);
* traffic counters receive the same increments in the same key order,
  so Counter iteration order matches the reference;
* deliveries are pushed at the same ``(time, priority)`` the reference
  path's ``sim.at``/``sim.schedule`` wrappers would push, in the same
  sequence, so event order and ``events_executed`` are unchanged.

The fast path only engages on the lossless, fault-free, untraced wire —
loss sampling, fault injection and tracing are inherently per-message,
so :meth:`~repro.network.switch.Switch.transmit_flight` falls back to
the per-message reference loop whenever any of them is active.

Error semantics mirror the per-message loop exactly: a leg whose
destination is unknown or detached raises :class:`NetworkError` at the
same sequence point the reference would; with an ``on_error`` callback
the error is reported and the remaining legs still fly (the
``DsmProcess.send`` crash-hook contract).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..errors import NetworkError
from .message import Message
from .stats import _PAGE_KINDS
from . import message as mk

if TYPE_CHECKING:  # pragma: no cover
    from .nic import Nic
    from .switch import Switch


def transmit_flight_star(
    switch: "Switch",
    msgs: Iterable[Message],
    on_error: Optional[Callable[[Message, NetworkError], None]] = None,
    src_nic: Optional["Nic"] = None,
) -> None:
    """Batched :meth:`Switch.transmit` over a star topology.

    Leg-for-leg identical to ``for m in msgs: switch.transmit(m)`` on a
    lossless, fault-free, untraced switch (the caller guarantees those
    preconditions; :meth:`Switch.transmit_flight` checks them).
    """
    sim = switch.sim
    now = sim.now
    nics = switch.nics
    uplinks = switch.uplinks
    downlinks = switch.downlinks
    params = switch.params
    header = params.header_bytes
    per_byte = params.per_byte
    latency = params.one_way_latency
    push = sim._queue.push
    snap = switch.stats._snap
    by_kind_messages = snap.by_kind_messages
    by_kind_bytes = snap.by_kind_bytes
    per_link_bytes = snap.per_link_bytes
    n_wire = 0
    wire_total = 0
    pages = 0
    diffs = 0

    # The aggregate totals are flushed in the ``finally`` so a leg that
    # raises (no ``on_error``) still leaves the same counters behind as
    # the reference loop, which updates them before it throws.
    try:
        for msg in msgs:
            if src_nic is not None and not src_nic.attached:
                err = NetworkError(f"node {src_nic.node_id} NIC is detached")
                if on_error is None:
                    raise err
                on_error(msg, err)
                continue
            dst = msg.dst
            dst_nic = nics.get(dst)
            if dst_nic is None:
                err = NetworkError(f"message to unknown node {dst}: {msg!r}")
                if on_error is None:
                    raise err
                on_error(msg, err)
                continue
            if not dst_nic.attached:
                err = NetworkError(f"message to detached node {dst}: {msg!r}")
                if on_error is None:
                    raise err
                on_error(msg, err)
                continue

            if msg.src == dst:
                # Local delivery never touches the wire (and costs no wire
                # time); ``sim.schedule(0.0, …)`` pushes at ``now + 0.0``.
                msg.arrived_at = now
                push(now + 0.0, (dst_nic.deliver, msg))
                continue

            size_bytes = msg.size_bytes
            wire_bytes = size_bytes + header
            up = uplinks[msg.src]
            down = downlinks[dst]
            busy = up.busy_until
            start = now if now >= busy else busy
            busy = down.busy_until
            if busy > start:
                start = busy
            end = start + wire_bytes * per_byte
            busy = end - start
            up.busy_until = end
            up.busy_time += busy
            up.bytes_carried += wire_bytes
            up.messages_carried += 1
            down.busy_until = end
            down.busy_time += busy
            down.bytes_carried += wire_bytes
            down.messages_carried += 1

            arrival = start + latency + size_bytes * per_byte
            msg.arrived_at = arrival

            kind = msg.kind
            n_wire += 1
            wire_total += wire_bytes
            by_kind_messages[kind] += 1
            by_kind_bytes[kind] += wire_bytes
            per_link_bytes[up.name] += wire_bytes
            per_link_bytes[down.name] += wire_bytes
            if kind in _PAGE_KINDS:
                pages += 1
            elif kind == mk.PAGE_BATCH_REPLY:
                pages += int(msg.payload.get("n_pages", 1)) if isinstance(msg.payload, dict) else 1
            elif kind == mk.DIFF_REPLY:
                diffs += int(msg.payload.get("n_diffs", 1)) if isinstance(msg.payload, dict) else 1

            push(arrival, (dst_nic.deliver, msg))
    finally:
        if n_wire:
            snap.messages += n_wire
            snap.bytes += wire_total
            if pages:
                snap.pages += pages
            if diffs:
                snap.diffs += diffs


def transmit_flight_fattree(
    switch,
    msgs: Iterable[Message],
    on_error: Optional[Callable[[Message, NetworkError], None]] = None,
    src_nic: Optional["Nic"] = None,
) -> None:
    """Batched :meth:`FatTreeSwitch.transmit` (2- or 4-link joint slots)."""
    sim = switch.sim
    now = sim.now
    nics = switch.nics
    uplinks = switch.uplinks
    downlinks = switch.downlinks
    trunk_up = switch.trunk_up
    trunk_down = switch.trunk_down
    radix = switch.radix
    extra_hop_latency = switch.EXTRA_HOPS * switch.params.switch_hop_latency
    params = switch.params
    header = params.header_bytes
    per_byte = params.per_byte
    latency = params.one_way_latency
    push = sim._queue.push
    snap = switch.stats._snap
    by_kind_messages = snap.by_kind_messages
    by_kind_bytes = snap.by_kind_bytes
    per_link_bytes = snap.per_link_bytes
    n_wire = 0
    wire_total = 0
    pages = 0
    diffs = 0

    # ``finally``-flushed totals: see transmit_flight_star.
    try:
        for msg in msgs:
            if src_nic is not None and not src_nic.attached:
                err = NetworkError(f"node {src_nic.node_id} NIC is detached")
                if on_error is None:
                    raise err
                on_error(msg, err)
                continue
            dst = msg.dst
            dst_nic = nics.get(dst)
            if dst_nic is None:
                err = NetworkError(f"message to unknown node {dst}: {msg!r}")
                if on_error is None:
                    raise err
                on_error(msg, err)
                continue
            if not dst_nic.attached:
                err = NetworkError(f"message to detached node {dst}: {msg!r}")
                if on_error is None:
                    raise err
                on_error(msg, err)
                continue

            src = msg.src
            if src == dst:
                msg.arrived_at = now
                push(now + 0.0, (dst_nic.deliver, msg))
                continue

            size_bytes = msg.size_bytes
            wire_bytes = size_bytes + header
            src_leaf = src // radix
            dst_leaf = dst // radix
            up = uplinks[src]
            down = downlinks[dst]
            if src_leaf != dst_leaf:
                t_up = trunk_up[src_leaf]
                t_down = trunk_down[dst_leaf]
                hops = (up, t_up, t_down, down)
                extra_latency = extra_hop_latency
            else:
                t_up = None
                hops = (up, down)
                extra_latency = 0.0
            start = now
            for link in hops:
                if link.busy_until > start:
                    start = link.busy_until
            end = start + wire_bytes * per_byte
            busy = end - start
            for link in hops:
                link.busy_until = end
                link.busy_time += busy
                link.bytes_carried += wire_bytes
                link.messages_carried += 1

            # Reference expression: start + one_way_latency + extra_switches *
            # switch_hop_latency + payload * per_byte, left-to-right; the
            # intra-leaf case adds a literal 0.0 there, which is bitwise
            # neutral for the non-negative times involved.
            arrival = start + latency + extra_latency + size_bytes * per_byte
            msg.arrived_at = arrival

            kind = msg.kind
            n_wire += 1
            wire_total += wire_bytes
            by_kind_messages[kind] += 1
            by_kind_bytes[kind] += wire_bytes
            per_link_bytes[up.name] += wire_bytes
            per_link_bytes[down.name] += wire_bytes
            if t_up is not None:
                per_link_bytes[t_up.name] += wire_bytes
                per_link_bytes[t_down.name] += wire_bytes
            if kind in _PAGE_KINDS:
                pages += 1
            elif kind == mk.PAGE_BATCH_REPLY:
                pages += int(msg.payload.get("n_pages", 1)) if isinstance(msg.payload, dict) else 1
            elif kind == mk.DIFF_REPLY:
                diffs += int(msg.payload.get("n_diffs", 1)) if isinstance(msg.payload, dict) else 1

            push(arrival, (dst_nic.deliver, msg))
    finally:
        if n_wire:
            snap.messages += n_wire
            snap.bytes += wire_total
            if pages:
                snap.pages += pages
            if diffs:
                snap.diffs += diffs
