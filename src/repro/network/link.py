"""Directional link occupancy model.

Each node of the switched Ethernet has two directional links to the switch
(an uplink and a downlink).  Full duplex means the two directions never
contend with each other; *switched* means links of different nodes never
contend either.  A link serializes its own transmissions: the wire time of
a message occupies the link, so e.g. a master receiving pages from seven
slaves is limited by its downlink — exactly the "max traffic per link"
bottleneck §5.4 identifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class Link:
    """One direction of one switch port."""

    name: str
    #: Wire seconds per payload byte.
    per_byte: float
    #: Time up to which the link is occupied by earlier transmissions.
    busy_until: float = 0.0
    #: Total payload+header bytes carried (lifetime).
    bytes_carried: int = 0
    #: Total messages carried (lifetime).
    messages_carried: int = 0
    #: Accumulated busy time (for utilization reporting).
    busy_time: float = field(default=0.0)

    def wire_time(self, nbytes: int) -> float:
        """Pure transmission time of ``nbytes`` on this link."""
        return nbytes * self.per_byte

    def reserve(self, earliest: float, nbytes: int) -> tuple[float, float]:
        """Occupy the link for ``nbytes`` starting no earlier than ``earliest``.

        Returns ``(start, end)`` of the transmission slot.
        """
        start = max(earliest, self.busy_until)
        end = start + self.wire_time(nbytes)
        self.busy_until = end
        self.busy_time += end - start
        self.bytes_carried += nbytes
        self.messages_carried += 1
        return start, end

    def occupy(self, start: float, nbytes: int) -> float:
        """Occupy the link from a precomputed ``start`` (joint reservation).

        The switch reserves uplink and downlink for the *same* slot
        (cut-through forwarding), so ``start`` is the max of every hop's
        ``busy_until`` and the send time.  Returns the slot end.

        The sanity check uses a tolerance *relative* to ``busy_until``:
        multi-hop reservations compute ``start`` as a max over several
        float sums, and once simulated time reaches thousands of seconds
        an absolute 1e-12 is below one ulp, rejecting exact-by-construction
        slots over pure rounding noise.
        """
        if start < self.busy_until - 1e-12 * max(1.0, abs(self.busy_until)):
            raise ValueError(
                f"link {self.name}: occupy start {start} before busy_until {self.busy_until}"
            )
        end = start + self.wire_time(nbytes)
        self.busy_until = end
        self.busy_time += end - start
        self.bytes_carried += nbytes
        self.messages_carried += 1
        return end

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` this link spent transmitting."""
        return self.busy_time / elapsed if elapsed > 0 else 0.0
