"""Message model for the simulated NOW.

Every unit of communication is a :class:`Message` with a *kind* (protocol
discriminator), a payload (arbitrary Python data — never serialized; the
wire cost is modelled by ``size_bytes``), and routing metadata.  Request /
reply correlation uses ``req_id``; the NIC routes replies back to the
issuing coroutine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_req_counter = itertools.count(1)


def next_req_id() -> int:
    """A globally unique request id (monotonic, deterministic)."""
    return next(_req_counter)


# -- message kinds used across the DSM / adaptive layers -------------------
# Transport-level
DATA = "data"
# DSM protocol
PAGE_REQ = "page_req"
PAGE_REPLY = "page_reply"
#: Bulk fetch of several pages from one owner in one round trip (the
#: opt-in ``PerfParams.bulk_fetch`` fast path; payload bytes equal the
#: per-page exchanges it replaces).
PAGE_BATCH_REQ = "page_batch_req"
PAGE_BATCH_REPLY = "page_batch_reply"
DIFF_REQ = "diff_req"
DIFF_REPLY = "diff_reply"
LOCK_REQ = "lock_req"
LOCK_FORWARD = "lock_forward"
LOCK_GRANT = "lock_grant"
BARRIER_ARRIVE = "barrier_arrive"
BARRIER_RELEASE = "barrier_release"
# Tree-structured barrier (PerfParams.barrier_tree, PROTOCOL.md §11):
# combined subtree arrival sent to the tree parent, release relayed down.
BARRIER_TREE_ARRIVE = "barrier_tree_arrive"
BARRIER_TREE_RELEASE = "barrier_tree_release"
GC_REQ = "gc_req"
GC_DONE = "gc_done"
GC_GO = "gc_go"
FORK = "fork"
JOIN_DONE = "join_done"
STOP = "stop"
# Adaptivity
CONNECT = "connect"
CONNECT_ACK = "connect_ack"
PAGE_MAP = "page_map"
OWNER_UPDATE = "owner_update"
PROC_EXIT = "proc_exit"
MIGRATE_IMAGE = "migrate_image"
CKPT_PAGE_REQ = "ckpt_page_req"
CKPT_PAGE_REPLY = "ckpt_page_reply"
# Failure detection
HEARTBEAT = "heartbeat"
HEARTBEAT_ACK = "heartbeat_ack"


@dataclass(slots=True)
class Message:
    """One message on the simulated network.

    ``size_bytes`` is the *payload* size; the per-message protocol header
    is added by the traffic accounting (see
    :class:`~repro.config.NetworkParams.header_bytes`).
    """

    kind: str
    src: int
    dst: int
    size_bytes: int = 0
    payload: Any = None
    req_id: Optional[int] = None
    is_reply: bool = False
    #: Process-level addressing: needed when two DSM processes are
    #: multiplexed on one node (urgent leaves) and share its NIC.
    src_pid: Optional[int] = None
    dst_pid: Optional[int] = None
    #: Set by the transport on delivery: simulated arrival time.
    arrived_at: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")

    def reply(self, kind: str, size_bytes: int = 0, payload: Any = None) -> "Message":
        """Construct the reply to this request (swapped route, same req_id)."""
        return Message(
            kind=kind,
            src=self.dst,
            dst=self.src,
            size_bytes=size_bytes,
            payload=payload,
            req_id=self.req_id,
            is_reply=True,
            src_pid=self.dst_pid,
            dst_pid=self.src_pid,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f"#{self.req_id}" if self.req_id is not None else ""
        arrow = "->" if not self.is_reply else "=>"
        return f"<{self.kind}{tag} {self.src}{arrow}{self.dst} {self.size_bytes}B>"
