"""Per-node network interface.

A :class:`Nic` separates incoming *requests* (served by the node's handler
loop) from *replies* (routed back to the coroutine that issued the matching
request).  This mirrors TreadMarks, where requests arrive via SIGIO at any
time while the main thread may itself be blocked waiting for a reply.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import NetworkError
from ..simcore import Channel, Simulator, Waitable
from .message import Message, next_req_id

if TYPE_CHECKING:  # pragma: no cover
    from .switch import Switch


class Nic:
    """Network interface of one node."""

    def __init__(self, sim: Simulator, switch: "Switch", node_id: int):
        self.sim = sim
        self.switch = switch
        self.node_id = node_id
        #: Incoming requests, consumed by the node's server loop.
        self.inbox = Channel(sim, name=f"nic{node_id}.inbox")
        #: Incoming replies, matched by ``req_id``.
        self.replies = Channel(sim, name=f"nic{node_id}.replies")
        self.attached = True
        #: Outstanding reliable request ids (duplicate replies are dropped).
        self._pending_reqs: set = set()
        #: Request re-sends performed by this NIC's retransmit timers.
        self.retransmissions = 0
        #: Cached :meth:`_unreliable_wire` answer (None = not derivable
        #: yet).  The switch's ``faults`` setter resets it on install.
        self._wire_unreliable = None

    # -- sending ----------------------------------------------------------
    def send(self, msg: Message) -> float:
        """Transmit ``msg``; returns its scheduled arrival time."""
        if not self.attached:
            raise NetworkError(f"node {self.node_id} NIC is detached")
        if msg.src != self.node_id:
            raise NetworkError(
                f"message src {msg.src} sent through NIC of node {self.node_id}"
            )
        return self.switch.transmit(msg)

    def request(self, msg: Message) -> Waitable:
        """Send a request and return a waitable for its reply.

        Usage inside a simulated process::

            reply = yield nic.request(Message(PAGE_REQ, src=me, dst=owner, ...))
        """
        if msg.req_id is None:
            msg.req_id = next_req_id()
        rid = msg.req_id
        if self._unreliable_wire():
            from .reliability import ReliableRequest

            self._pending_reqs.add(rid)
            self.send(msg)
            return ReliableRequest(self, msg)
        self.send(msg)
        return self.replies.recv(match=lambda m, rid=rid: m.req_id == rid)

    def send_flight(self, msgs, on_error=None) -> None:
        """Transmit messages issued back-to-back in one event as a flight.

        Identical to sending each message through :meth:`send` in order
        (see :meth:`Switch.transmit_flight <repro.network.switch.Switch.transmit_flight>`);
        the per-leg attachment check moves into the flight loop so error
        reporting keeps the per-message sequence points.
        """
        self.switch.transmit_flight(msgs, on_error, src_nic=self)

    def _unreliable_wire(self) -> bool:
        """True when messages may be lost or duplicated in transit.

        Requests then go through :class:`ReliableRequest` and the
        outstanding-request table filters duplicate replies.  The answer
        is evaluated on every request *and* every reply delivery — the
        hottest path in the simulator — so static configurations are
        cached: a lossy wire stays lossy (the loss model is fixed at
        switch construction), a healthy wire with no fault state stays
        healthy until the switch's ``faults`` setter invalidates the
        cache, and a fault state that turned unreliable is latched
        (``LinkFaults.unreliable`` never clears).  Only the transient
        "fault state installed but still reliable" case re-derives the
        answer each call, since injection may flip it at any time.
        """
        cached = self._wire_unreliable
        if cached is not None:
            return cached
        switch = self.switch
        loss = switch.loss
        if loss is not None and loss.rate > 0:
            self._wire_unreliable = True
            return True
        faults = switch.faults
        if faults is None:
            self._wire_unreliable = False
            return False
        if faults.unreliable:
            self._wire_unreliable = True
            return True
        return False

    def count_retransmission(self) -> None:
        """Account one request re-send (local and switch-wide counters)."""
        self.retransmissions += 1
        self.switch.stats.count_retransmission()

    def wait_reply(self, req_id: int) -> Waitable:
        """Waitable for the reply to an already-sent request."""
        return self.replies.recv(match=lambda m: m.req_id == req_id)

    # -- delivery (called by the switch) -----------------------------------
    def _complete_request(self, req_id: int) -> None:
        self._pending_reqs.discard(req_id)

    def deliver(self, msg: Message, _exc=None) -> None:
        """Route an arriving message to the proper queue.

        ``_exc`` is unused; it makes ``deliver`` a valid tuple-action
        target (the event queue invokes ``(f, v)`` actions as
        ``f(v, None)``), so the switch schedules deliveries without
        allocating a closure per message.
        """
        if msg.is_reply:
            if (
                self._unreliable_wire()
                and msg.req_id is not None
                and msg.req_id not in self._pending_reqs
            ):
                return  # duplicate reply to a retransmitted/injected request
            self.replies.put(msg)
        else:
            self.inbox.put(msg)

    def detach(self) -> None:
        """Disconnect from the switch (node left the pool)."""
        self.attached = False

    def reattach(self) -> None:
        """Reconnect (node re-joined)."""
        self.attached = True
