"""Message loss and request retransmission (the UDP reality of §5.1).

TreadMarks runs over UDP: requests time out and are retransmitted.  The
simulated switch can drop *data-plane* messages (page/diff requests and
replies — large, idempotent, and the overwhelming share of packets) with
a seeded loss model; :class:`ReliableRequest` wraps a reply wait with a
retransmit timer, so protocol runs survive the losses with nothing but
added latency.

Control-plane messages (barrier/fork/lock/GC traffic) are excluded from
the loss model: the real system retransmits those too, but they are not
idempotent, and modelling their dedup machinery adds nothing to the
paper's questions.  The split is configurable via ``LossModel.kinds``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional

import numpy as np

from ..simcore import Waitable
from . import message as mk
from .message import Message

#: Message kinds subject to loss by default: the idempotent data plane.
DATA_PLANE: FrozenSet[str] = frozenset(
    {mk.PAGE_REQ, mk.PAGE_REPLY, mk.DIFF_REQ, mk.DIFF_REPLY,
     mk.CKPT_PAGE_REQ, mk.CKPT_PAGE_REPLY}
)

#: Initial retransmission timeout: a page round trip is ~1.3 ms; 4 ms
#: gives slow replies room before the first duplicate goes out.  The
#: timeout doubles per retry (capped) so a congested server is not buried
#: under duplicates — without backoff, service queues longer than the RTO
#: trigger a classic retransmission collapse.
DEFAULT_RTO = 4.0e-3
MAX_RTO = 128.0e-3


@dataclass
class LossModel:
    """Seeded, per-message drop decisions for the switch."""

    rate: float = 0.0
    seed: int = 0xD20
    kinds: FrozenSet[str] = DATA_PLANE
    dropped: int = 0
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self._rng = np.random.default_rng(self.seed)

    def should_drop(self, msg: Message) -> bool:
        """Decide (deterministically, given the seed) whether to drop."""
        if self.rate <= 0.0 or msg.kind not in self.kinds:
            return False
        if float(self._rng.random()) < self.rate:
            self.dropped += 1
            return True
        return False


class ReliableRequest(Waitable):
    """A reply wait that retransmits the request on timeout.

    Behaves exactly like ``nic.replies.recv(match=req_id)`` when nothing
    is lost; every ``rto`` without a reply, the original request message
    is re-sent (a fresh transmission with the same ``req_id``, so a late
    original reply still matches).  Duplicate replies are filtered by the
    NIC's outstanding-request table.
    """

    def __init__(self, nic, msg: Message, rto: float = DEFAULT_RTO,
                 max_retries: int = 25):
        self._nic = nic
        self._msg = msg
        self._rto = rto
        self._max_retries = max_retries
        self._inner = None
        self._timer = None
        self._callback = None
        self._retries = 0
        self.retransmissions = 0

    def subscribe(self, callback) -> None:
        self._callback = callback
        rid = self._msg.req_id
        self._inner = self._nic.replies.recv(
            match=lambda m, rid=rid: m.req_id == rid
        )
        self._inner.subscribe(self._on_reply)
        self._arm_timer()

    def unsubscribe(self, callback) -> None:
        if self._inner is not None:
            self._inner.unsubscribe(self._on_reply)
        self._disarm_timer()
        self._callback = None

    # -- internals ---------------------------------------------------------
    def _arm_timer(self) -> None:
        backoff = min(self._rto * (2 ** self._retries), MAX_RTO)
        self._timer = self._nic.sim.schedule(backoff, self._on_timeout)

    def _disarm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_reply(self, msg, exc) -> None:
        self._disarm_timer()
        self._nic._complete_request(self._msg.req_id)
        cb, self._callback = self._callback, None
        if cb is not None:
            cb(msg, exc)

    def _on_timeout(self) -> None:
        from ..errors import NetworkError

        if self._callback is None:
            return
        self._retries += 1
        if self._retries > self._max_retries:
            # The peer is unreachable: surface it rather than spin forever.
            # Completing the request here is essential — otherwise the
            # req_id entry leaks in the NIC's outstanding-request table and
            # a late duplicate reply would be misdelivered to a waiter that
            # has long since errored out.
            if self._inner is not None:
                self._inner.unsubscribe(self._on_reply)
            self._nic._complete_request(self._msg.req_id)
            cb, self._callback = self._callback, None
            cb(None, NetworkError(
                f"request {self._msg.kind}#{self._msg.req_id} to node "
                f"{self._msg.dst} timed out after {self._max_retries} retries"
            ))
            return
        self.retransmissions += 1
        self._nic.count_retransmission()
        try:
            self._nic.send(self._msg)
        except NetworkError:
            pass  # detached peer: keep waiting for the final timeout
        self._arm_timer()
