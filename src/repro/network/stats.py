"""Traffic accounting.

The paper reports network traffic as pages / MB / messages / diffs
(Table 1) and identifies **max traffic per link** as the key determinant of
adaptation cost (§5.4).  :class:`TrafficStats` tracks totals plus per-link
byte counters and supports snapshot/delta so an experiment can measure the
traffic attributable to one adaptation (the paper's §5.4 methodology:
statistics recorded from a chosen adaptation point onwards).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from .message import DIFF_REPLY, PAGE_BATCH_REPLY, PAGE_REPLY, Message

#: Kinds whose delivery counts one page (hoisted: record() runs per message).
_PAGE_KINDS = (PAGE_REPLY, "sc_data")


@dataclass(slots=True)
class TrafficSnapshot:
    """Immutable view of the counters at one instant."""

    messages: int = 0
    bytes: int = 0
    pages: int = 0
    diffs: int = 0
    #: Messages the seeded loss model dropped on the wire.
    dropped: int = 0
    #: Messages discarded at a cut (partitioned) switch path.
    cut: int = 0
    #: Extra copies delivered by duplicate injection.
    duplicated: int = 0
    #: Messages delivered late by delay injection.
    delayed: int = 0
    #: Request re-sends performed by :class:`ReliableRequest` timers.
    retransmissions: int = 0
    per_link_bytes: Counter = field(default_factory=Counter)
    by_kind_messages: Counter = field(default_factory=Counter)
    by_kind_bytes: Counter = field(default_factory=Counter)

    def delta(self, earlier: "TrafficSnapshot") -> "TrafficSnapshot":
        """Traffic accumulated since ``earlier``."""
        return TrafficSnapshot(
            messages=self.messages - earlier.messages,
            bytes=self.bytes - earlier.bytes,
            pages=self.pages - earlier.pages,
            diffs=self.diffs - earlier.diffs,
            dropped=self.dropped - earlier.dropped,
            cut=self.cut - earlier.cut,
            duplicated=self.duplicated - earlier.duplicated,
            delayed=self.delayed - earlier.delayed,
            retransmissions=self.retransmissions - earlier.retransmissions,
            per_link_bytes=Counter(
                {
                    k: v - earlier.per_link_bytes.get(k, 0)
                    for k, v in self.per_link_bytes.items()
                    if v - earlier.per_link_bytes.get(k, 0)
                }
            ),
            by_kind_messages=Counter(
                {
                    k: v - earlier.by_kind_messages.get(k, 0)
                    for k, v in self.by_kind_messages.items()
                    if v - earlier.by_kind_messages.get(k, 0)
                }
            ),
            by_kind_bytes=Counter(
                {
                    k: v - earlier.by_kind_bytes.get(k, 0)
                    for k, v in self.by_kind_bytes.items()
                    if v - earlier.by_kind_bytes.get(k, 0)
                }
            ),
        )

    @property
    def megabytes(self) -> float:
        """Traffic in MB (decimal, as the paper reports)."""
        return self.bytes / 1.0e6

    def max_link_bytes(self) -> int:
        """Bytes on the busiest directional link — the §5.4 bottleneck metric."""
        return max(self.per_link_bytes.values(), default=0)

    def busiest_link(self) -> Optional[str]:
        """Name of the busiest directional link."""
        if not self.per_link_bytes:
            return None
        return max(self.per_link_bytes.items(), key=lambda kv: (kv[1], kv[0]))[0]


class TrafficStats:
    """Mutable traffic counters updated by the switch on every delivery."""

    def __init__(self, header_bytes: int):
        self.header_bytes = header_bytes
        self._snap = TrafficSnapshot()

    def record(self, msg: Message, uplink: str, downlink: str,
               via: tuple = ()) -> None:
        """Account one delivered message.

        ``via`` names any intermediate (trunk) links the message crossed in
        a hierarchical topology; each carries the same wire bytes as the
        endpoint links.  The star topology never passes it.
        """
        wire = msg.size_bytes + self.header_bytes
        s = self._snap
        s.messages += 1
        s.bytes += wire
        s.by_kind_messages[msg.kind] += 1
        s.by_kind_bytes[msg.kind] += wire
        s.per_link_bytes[uplink] += wire
        s.per_link_bytes[downlink] += wire
        for name in via:
            s.per_link_bytes[name] += wire
        if msg.kind in _PAGE_KINDS:
            s.pages += 1
        elif msg.kind == PAGE_BATCH_REPLY:
            s.pages += int(msg.payload.get("n_pages", 1)) if isinstance(msg.payload, dict) else 1
        elif msg.kind == DIFF_REPLY:
            s.diffs += int(msg.payload.get("n_diffs", 1)) if isinstance(msg.payload, dict) else 1

    def count_drop(self) -> None:
        """Account one loss-model drop."""
        self._snap.dropped += 1

    def count_cut(self) -> None:
        """Account one message discarded at a partitioned path."""
        self._snap.cut += 1

    def count_duplicate(self) -> None:
        """Account one injected duplicate delivery."""
        self._snap.duplicated += 1

    def count_delay(self) -> None:
        """Account one injected delayed delivery."""
        self._snap.delayed += 1

    def count_retransmission(self) -> None:
        """Account one request re-send by a retransmit timer."""
        self._snap.retransmissions += 1

    def snapshot(self) -> TrafficSnapshot:
        """A copy of the current counters."""
        s = self._snap
        return TrafficSnapshot(
            messages=s.messages,
            bytes=s.bytes,
            pages=s.pages,
            diffs=s.diffs,
            dropped=s.dropped,
            cut=s.cut,
            duplicated=s.duplicated,
            delayed=s.delayed,
            retransmissions=s.retransmissions,
            per_link_bytes=Counter(s.per_link_bytes),
            by_kind_messages=Counter(s.by_kind_messages),
            by_kind_bytes=Counter(s.by_kind_bytes),
        )
