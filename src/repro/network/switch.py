"""Switched full-duplex Ethernet model.

The testbed is a *switched* 100 Mbps Ethernet: every node has a private
full-duplex port, so the only contention is per-port serialization.  A
message from ``p`` to ``q`` jointly reserves ``p``'s uplink and ``q``'s
downlink (cut-through) and arrives one latency plus one wire time later::

    start   = max(now, up(p).busy_until, down(q).busy_until)
    arrival = start + one_way_latency + payload_bytes * per_byte

This reproduces the property §5.4 builds on: traffic between disjoint node
pairs is fully parallel, while fan-in to one node (e.g. the master
collecting a leaver's pages) serializes on that node's downlink.
"""

from __future__ import annotations

from typing import Dict

from ..config import NetworkParams
from ..errors import NetworkError
from ..simcore import Simulator
from .link import Link
from .message import Message
from .nic import Nic
from .stats import TrafficStats


class Switch:
    """The star-topology interconnect of the simulated NOW."""

    def __init__(self, sim: Simulator, params: NetworkParams | None = None):
        self.sim = sim
        self.params = params or NetworkParams()
        self.params.validate()
        self.nics: Dict[int, Nic] = {}
        self.uplinks: Dict[int, Link] = {}
        self.downlinks: Dict[int, Link] = {}
        self.stats = TrafficStats(header_bytes=self.params.header_bytes)
        #: Optional seeded message-loss model (None = lossless wire).
        self.loss = None
        if self.params.loss_rate > 0:
            from .reliability import LossModel

            self.loss = LossModel(
                rate=self.params.loss_rate, seed=self.params.loss_seed
            )
        #: Optional fault-injection state (:class:`~repro.faults.LinkFaults`);
        #: installed by a :class:`~repro.faults.FaultInjector` (through the
        #: :attr:`faults` property, which drops the NICs' cached wire
        #: reliability).
        self._faults = None
        #: Flights the batched transport compiled / legs they carried —
        #: host-side instrumentation only (never part of simulated state),
        #: so tests can assert the fast path engaged.
        self.flights_compiled = 0
        self.flight_legs = 0

    @property
    def faults(self):
        """Fault-injection state (``None`` = healthy wire)."""
        return self._faults

    @faults.setter
    def faults(self, value) -> None:
        self._faults = value
        # Installing (or clearing) fault state changes whether requests
        # must go through the reliable-delivery layer; every NIC re-derives
        # its cached answer lazily (see Nic._unreliable_wire).
        for nic in self.nics.values():
            nic._wire_unreliable = None

    # -- topology -----------------------------------------------------------
    def attach(self, node_id: int) -> Nic:
        """Create (or re-activate) the port for ``node_id``."""
        if node_id in self.nics:
            nic = self.nics[node_id]
            nic.reattach()
            return nic
        nic = Nic(self.sim, self, node_id)
        self.nics[node_id] = nic
        per_byte = self.params.per_byte
        self.uplinks[node_id] = Link(name=f"up{node_id}", per_byte=per_byte)
        self.downlinks[node_id] = Link(name=f"down{node_id}", per_byte=per_byte)
        return nic

    def detach(self, node_id: int) -> None:
        """Deactivate the port for ``node_id`` (node withdrew)."""
        if node_id not in self.nics:
            raise NetworkError(f"detach of unknown node {node_id}")
        self.nics[node_id].detach()

    # -- transmission ---------------------------------------------------------
    def transmit(self, msg: Message) -> float:
        """Deliver ``msg``; returns the simulated arrival time."""
        if msg.dst not in self.nics:
            raise NetworkError(f"message to unknown node {msg.dst}: {msg!r}")
        dst_nic = self.nics[msg.dst]
        if not dst_nic.attached:
            raise NetworkError(f"message to detached node {msg.dst}: {msg!r}")

        if msg.src == msg.dst:
            # Local delivery never touches the wire (and costs no wire time).
            msg.arrived_at = self.sim.now
            self.sim.schedule(0.0, (dst_nic.deliver, msg))
            return self.sim.now

        params = self.params
        size_bytes = msg.size_bytes
        wire_bytes = size_bytes + params.header_bytes
        up = self.uplinks[msg.src]
        down = self.downlinks[msg.dst]
        now = self.sim.now
        up_busy = up.busy_until
        down_busy = down.busy_until
        start = now if now >= up_busy else up_busy
        if down_busy > start:
            start = down_busy
        # Joint cut-through reservation of both links, inlined from
        # Link.occupy (two method calls per message add up on this path;
        # ``start`` >= both links' busy_until by construction, so the
        # stale-start guard inside occupy is vacuous here).
        end = start + wire_bytes * up.per_byte
        busy = end - start
        up.busy_until = end
        up.busy_time += busy
        up.bytes_carried += wire_bytes
        up.messages_carried += 1
        down.busy_until = end
        down.busy_time += busy
        down.bytes_carried += wire_bytes
        down.messages_carried += 1
        # Latency is calibrated against the paper's 1-byte RTT of 126 µs,
        # which already includes header transmission — so only the payload
        # adds wire time here, while occupancy and traffic accounting above
        # include the header bytes.
        arrival = start + params.one_way_latency + size_bytes * params.per_byte
        faults = self._faults
        if faults is not None:
            # Degraded ports add fixed latency on either endpoint's path.
            arrival += faults.extra_latency(msg.src, msg.dst)
        msg.arrived_at = arrival
        self.stats.record(msg, uplink=up.name, downlink=down.name)
        if faults is not None and faults.blocked(msg.src, msg.dst):
            # the packet burned wire time but dies at the partition
            self.stats.count_cut()
            self.sim.tracer.emit("net", "cut", f"{msg.kind} {msg.src}->{msg.dst}")
            return arrival
        if self.loss is not None and self.loss.should_drop(msg):
            # the packet burned wire time but never arrives
            self.stats.count_drop()
            self.sim.tracer.emit("net", "dropped", f"{msg.kind} {msg.src}->{msg.dst}")
            return arrival
        if faults is not None:
            delay = faults.delay_for(msg)
            if delay > 0.0:
                self.stats.count_delay()
                self.sim.tracer.emit(
                    "net", "delayed", f"{msg.kind} {msg.src}->{msg.dst} +{delay:.6f}s"
                )
                arrival += delay
                msg.arrived_at = arrival
            if faults.duplicate(msg):
                # a second copy trails the original by one latency
                self.stats.count_duplicate()
                self.sim.tracer.emit(
                    "net", "duplicated", f"{msg.kind} {msg.src}->{msg.dst}"
                )
                self.sim.at(
                    arrival + self.params.one_way_latency,
                    (dst_nic.deliver, msg),
                )
        self.sim.at(arrival, (dst_nic.deliver, msg))
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit("net", msg.kind, f"{msg.src}->{msg.dst} {wire_bytes}B")
        return arrival

    def transmit_flight(self, msgs, on_error=None, src_nic=None) -> None:
        """Deliver a whole flight of messages issued within one event.

        Semantically identical to ``for m in msgs: self.transmit(m)`` —
        same link reservations, traffic counters, arrival times and
        delivery event order — but compiled as one batched pass over the
        occupancy model (see :mod:`repro.network.flight`).  Loss, fault
        injection and tracing are per-message concerns, so any of them
        active routes the flight through the per-message reference loop.

        ``on_error`` is called as ``on_error(msg, err)`` for a leg whose
        destination is unknown or detached (the remaining legs still
        fly); without it the error propagates from that leg, exactly as
        the per-message loop would.  ``src_nic``, when given, is checked
        per leg like :meth:`Nic.send` checks its attachment.
        """
        if (
            self._faults is not None
            or self.loss is not None
            or self.sim.tracer.enabled
        ):
            for msg in msgs:
                try:
                    if src_nic is not None and not src_nic.attached:
                        raise NetworkError(
                            f"node {src_nic.node_id} NIC is detached"
                        )
                    self.transmit(msg)
                except NetworkError as err:
                    if on_error is None:
                        raise
                    on_error(msg, err)
            return
        self._transmit_flight_fast(msgs, on_error, src_nic)
        self.flights_compiled += 1
        self.flight_legs += len(msgs)

    def _transmit_flight_fast(self, msgs, on_error, src_nic) -> None:
        from .flight import transmit_flight_star

        transmit_flight_star(self, msgs, on_error, src_nic)

    # -- convenience ----------------------------------------------------------
    def message_time(self, payload_bytes: int) -> float:
        """Uncontended one-way delivery time for a payload."""
        return self.params.message_time(payload_bytes + self.params.header_bytes)

    def iter_links(self):
        """Every directional link of the topology (uplinks then downlinks).

        Hierarchical topologies extend this with their trunk links; the
        scale bench and ``repro report --scale`` read per-link
        ``busy_time`` through it.
        """
        yield from self.uplinks.values()
        yield from self.downlinks.values()

    def link_report(self) -> dict:
        """``{link name: busy_time}`` for every link of the topology."""
        return {link.name: link.busy_time for link in self.iter_links()}
