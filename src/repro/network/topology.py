"""Pluggable interconnect topologies (PROTOCOL.md §11).

The paper's testbed is a single switched full-duplex Ethernet segment —
the :class:`~repro.network.switch.Switch` star, which stays the default
and the bitwise-identity reference.  Past a few dozen nodes a single
switch is physically implausible and analytically uninteresting: every
port still gets its private pair of links, so the star never models the
trunk contention a real building-scale NOW would see.  This module adds a
**fat-tree** (two-level switch hierarchy): ``topology_radix`` nodes hang
off each leaf switch, and every leaf switch connects to a root switch
through one full-duplex trunk.

Cross-leaf messages jointly reserve *four* directional links for the same
slot — source uplink, source leaf's trunk uplink, destination leaf's
trunk downlink, destination downlink — the same cut-through scheme the
star applies to two links::

    start   = max(now, busy_until of every hop)
    arrival = start + one_way_latency + extra_switches * switch_hop_latency
                    + payload_bytes * per_byte

Intra-leaf messages cross one switch exactly like the star and keep the
star's arithmetic.  Trunk links appear in per-link traffic accounting
(``TrafficSnapshot.per_link_bytes``) and carry ``busy_time``, so the §5.4
"max traffic per link" metric naturally extends to the trunks — which is
where a flat all-to-one barrier hurts: all N-1 arrivals from remote
leaves serialize on the master leaf's trunk downlink.
"""

from __future__ import annotations

from typing import Dict

from ..config import NetworkParams, PerfParams
from ..errors import ConfigurationError, NetworkError
from ..simcore import Simulator
from .link import Link
from .message import Message
from .nic import Nic
from .switch import Switch


class FatTreeSwitch(Switch):
    """Two-level switch hierarchy: leaf switches under one root switch."""

    #: Extra switches a cross-leaf message forwards through compared to
    #: the star's single switch (the root plus the second leaf).
    EXTRA_HOPS = 2

    def __init__(self, sim: Simulator, params: NetworkParams | None = None,
                 radix: int = 8):
        if radix < 2:
            raise ConfigurationError("fat-tree radix must be >= 2")
        super().__init__(sim, params)
        self.radix = radix
        #: Per-leaf trunk links, keyed by leaf index.
        self.trunk_up: Dict[int, Link] = {}
        self.trunk_down: Dict[int, Link] = {}

    # -- topology -----------------------------------------------------------
    def leaf_of(self, node_id: int) -> int:
        """Index of the leaf switch ``node_id`` hangs off."""
        return node_id // self.radix

    def attach(self, node_id: int) -> Nic:
        nic = super().attach(node_id)
        leaf = self.leaf_of(node_id)
        if leaf not in self.trunk_up:
            per_byte = self.params.per_byte
            self.trunk_up[leaf] = Link(name=f"trunk.up{leaf}", per_byte=per_byte)
            self.trunk_down[leaf] = Link(name=f"trunk.down{leaf}", per_byte=per_byte)
        return nic

    def iter_links(self):
        yield from super().iter_links()
        yield from self.trunk_up.values()
        yield from self.trunk_down.values()

    # -- transmission ---------------------------------------------------------
    def transmit(self, msg: Message) -> float:
        """Deliver ``msg`` across one or three switches."""
        if msg.dst not in self.nics:
            raise NetworkError(f"message to unknown node {msg.dst}: {msg!r}")
        dst_nic = self.nics[msg.dst]
        if not dst_nic.attached:
            raise NetworkError(f"message to detached node {msg.dst}: {msg!r}")

        if msg.src == msg.dst:
            msg.arrived_at = self.sim.now
            self.sim.schedule(0.0, (dst_nic.deliver, msg))
            return self.sim.now

        params = self.params
        size_bytes = msg.size_bytes
        wire_bytes = size_bytes + params.header_bytes
        src_leaf = self.leaf_of(msg.src)
        dst_leaf = self.leaf_of(msg.dst)
        hops = [self.uplinks[msg.src]]
        extra_switches = 0
        if src_leaf != dst_leaf:
            hops.append(self.trunk_up[src_leaf])
            hops.append(self.trunk_down[dst_leaf])
            extra_switches = self.EXTRA_HOPS
        hops.append(self.downlinks[msg.dst])

        # Joint cut-through reservation: every hop gets the same slot, so
        # a message is delayed by the *most* backlogged link on its path.
        start = self.sim.now
        for link in hops:
            if link.busy_until > start:
                start = link.busy_until
        for link in hops:
            link.occupy(start, wire_bytes)

        arrival = (
            start
            + params.one_way_latency
            + extra_switches * params.switch_hop_latency
            + size_bytes * params.per_byte
        )
        faults = self._faults
        if faults is not None:
            arrival += faults.extra_latency(msg.src, msg.dst)
        msg.arrived_at = arrival
        via = ()
        if extra_switches:
            via = (self.trunk_up[src_leaf].name, self.trunk_down[dst_leaf].name)
        self.stats.record(
            msg, uplink=hops[0].name, downlink=hops[-1].name, via=via
        )
        if faults is not None and faults.blocked(msg.src, msg.dst):
            self.stats.count_cut()
            self.sim.tracer.emit("net", "cut", f"{msg.kind} {msg.src}->{msg.dst}")
            return arrival
        if self.loss is not None and self.loss.should_drop(msg):
            self.stats.count_drop()
            self.sim.tracer.emit("net", "dropped", f"{msg.kind} {msg.src}->{msg.dst}")
            return arrival
        if faults is not None:
            delay = faults.delay_for(msg)
            if delay > 0.0:
                self.stats.count_delay()
                self.sim.tracer.emit(
                    "net", "delayed", f"{msg.kind} {msg.src}->{msg.dst} +{delay:.6f}s"
                )
                arrival += delay
                msg.arrived_at = arrival
            if faults.duplicate(msg):
                self.stats.count_duplicate()
                self.sim.tracer.emit(
                    "net", "duplicated", f"{msg.kind} {msg.src}->{msg.dst}"
                )
                self.sim.at(
                    arrival + self.params.one_way_latency,
                    (dst_nic.deliver, msg),
                )
        self.sim.at(arrival, (dst_nic.deliver, msg))
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                "net", msg.kind,
                f"{msg.src}->{msg.dst} {wire_bytes}B hops={2 + 2 * (extra_switches > 0)}",
            )
        return arrival

    def _transmit_flight_fast(self, msgs, on_error, src_nic) -> None:
        from .flight import transmit_flight_fattree

        transmit_flight_fattree(self, msgs, on_error, src_nic)


def build_topology(sim: Simulator, params: NetworkParams | None = None,
                   perf: PerfParams | None = None) -> Switch:
    """Construct the interconnect selected by ``perf.topology``.

    ``star`` (or no perf config at all) returns the plain
    :class:`Switch` — the construction path is byte-for-byte the seed's,
    which is what keeps default runs bitwise identical.
    """
    if perf is None or perf.topology == "star":
        return Switch(sim, params)
    if perf.topology == "fattree":
        return FatTreeSwitch(sim, params, radix=perf.topology_radix)
    raise ConfigurationError(f"unknown topology {perf.topology!r}")
