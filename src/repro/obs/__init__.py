"""Unified observability: spans, counters, cost breakdown, exporters.

The one instrumentation surface for the whole repro.  See
``docs/OBSERVABILITY.md`` for the span-name → paper-cost-term mapping
and ``repro report --help`` for the CLI entry point.
"""

from .breakdown import ADAPT_PHASES, RECOVERY_PHASES, CostBreakdown, PhaseCost
from .core import (
    NULL_OBS,
    TRACK_ADAPT,
    TRACK_MASTER,
    TRACK_NETWORK,
    Counter,
    NullRegistry,
    ObsConfig,
    Registry,
    Span,
)
from .export import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    chrome_trace,
    metrics_dict,
    pool_trace,
    pool_utilization,
    write_chrome_trace,
    write_metrics,
    write_pool_trace,
)
from .schema import (
    SchemaError,
    validate_metrics,
    validate_metrics_file,
    validate_trace,
    validate_trace_file,
)

__all__ = [
    "ADAPT_PHASES",
    "RECOVERY_PHASES",
    "CostBreakdown",
    "PhaseCost",
    "NULL_OBS",
    "TRACK_ADAPT",
    "TRACK_MASTER",
    "TRACK_NETWORK",
    "Counter",
    "NullRegistry",
    "ObsConfig",
    "Registry",
    "Span",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "chrome_trace",
    "metrics_dict",
    "pool_trace",
    "pool_utilization",
    "write_chrome_trace",
    "write_metrics",
    "write_pool_trace",
    "SchemaError",
    "validate_metrics",
    "validate_metrics_file",
    "validate_trace",
    "validate_trace_file",
]
