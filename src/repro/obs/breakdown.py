"""Per-phase adaptation-cost accounting (the paper's §5 decomposition).

The paper's headline cost structure: adaptation takes 1–9 s dominated by
garbage collection; page fetches are proportional to the leavers'
exclusively-owned pages; migration moves the image at ≈8.1 MB/s after a
0.6–0.8 s process creation.  :class:`CostBreakdown` reconstructs exactly
those terms from the span registry: the adaptation-point spans tile the
``adapt.total`` interval, so the phase seconds sum to the adaptation time
the harness already reports (``AdaptationRecord.duration``) — asserted by
``tests/obs/test_breakdown.py`` and printed by ``repro report``.

Span-name → paper-term mapping (docs/OBSERVABILITY.md has the full
table):

========================  ==============================================
``adapt.gc``              §4.1 garbage collection (the dominant term)
``adapt.migration``       §4.4 master migration (spawn + image copy)
``adapt.exclusive_fetch``  §4.2 fetch of the leaver's exclusively-owned
                          pages (max per-leaver pages bound the cost)
``adapt.repartition``     pid reassignment, joiner setup, page-location-
                          map shipment, fixed per-event bookkeeping
``adapt.barrier``         quiesce wait — zero here, because adaptation
                          points sit at fork boundaries where the team
                          is already quiesced (§4.1)
========================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from .core import Registry

#: The adaptation phases, in protocol order.  They tile ``adapt.total``.
ADAPT_PHASES = (
    "adapt.gc",
    "adapt.migration",
    "adapt.exclusive_fetch",
    "adapt.repartition",
    "adapt.barrier",
)

#: Crash-recovery phases (tile ``recovery.total`` the same way).
RECOVERY_PHASES = ("recovery.restore", "recovery.rebuild")


@dataclass(frozen=True)
class PhaseCost:
    """Aggregate of all spans carrying one phase name."""

    phase: str
    seconds: float = 0.0
    count: int = 0

    @property
    def label(self) -> str:
        return self.phase.split(".", 1)[-1].replace("_", " ")


@dataclass
class CostBreakdown:
    """Everything ``repro report`` prints for one run."""

    #: Phase name -> cost, adaptation phases first, in protocol order.
    phases: Dict[str, PhaseCost] = field(default_factory=dict)
    #: Total simulated seconds inside adaptation points.
    adaptation_seconds: float = 0.0
    #: Number of adaptation points executed.
    adaptation_points: int = 0
    #: Total simulated seconds inside crash recoveries.
    recovery_seconds: float = 0.0
    #: Flat counters (page-map bytes, drained pages, migration bytes...).
    counters: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_registry(cls, reg: Registry) -> "CostBreakdown":
        """Aggregate the registry's spans into the paper's cost terms."""
        phases: Dict[str, PhaseCost] = {}
        for name in ADAPT_PHASES + RECOVERY_PHASES:
            spans = reg.select(name=name)
            phases[name] = PhaseCost(
                phase=name,
                seconds=sum(s.duration for s in spans),
                count=len(spans),
            )
        totals = reg.select(name="adapt.total")
        rec_totals = reg.select(name="recovery.total")
        return cls(
            phases=phases,
            adaptation_seconds=sum(s.duration for s in totals),
            adaptation_points=len(totals),
            recovery_seconds=sum(s.duration for s in rec_totals),
            counters={k: c.value for k, c in sorted(reg.counters.items())},
        )

    # -- consistency -----------------------------------------------------
    def adapt_phase_sum(self) -> float:
        """Summed adaptation-phase seconds; equals
        :attr:`adaptation_seconds` because the phase spans tile the
        ``adapt.total`` interval."""
        return sum(self.phases[name].seconds for name in ADAPT_PHASES)

    def consistent(self, tol: float = 1e-9) -> bool:
        """Do the phases account for the whole adaptation time?"""
        return abs(self.adapt_phase_sum() - self.adaptation_seconds) <= tol

    # -- rendering -------------------------------------------------------
    def rows(self) -> List[List[Any]]:
        """``[phase, seconds, share]`` rows for
        :func:`repro.bench.reporting.format_table`."""
        total = self.adaptation_seconds
        rows = []
        for name in ADAPT_PHASES:
            cost = self.phases[name]
            share = cost.seconds / total if total > 0 else 0.0
            rows.append([cost.label, f"{cost.seconds:.6f}", f"{share:6.1%}"])
        rows.append(["total (= harness adapt time)", f"{total:.6f}", f"{1:6.1%}" if total > 0 else "     -"])
        return rows

    def as_dict(self) -> Dict[str, Any]:
        return {
            "adaptation_seconds": self.adaptation_seconds,
            "adaptation_points": self.adaptation_points,
            "recovery_seconds": self.recovery_seconds,
            "phases": {
                name: {"seconds": cost.seconds, "count": cost.count}
                for name, cost in self.phases.items()
            },
            "counters": dict(self.counters),
        }
