"""Span/counter primitives keyed on simulated time.

The observability layer records *what the simulation already did* — it
never yields, never schedules, and never touches the event queue, so an
instrumented run is bitwise-identical to an uninstrumented one (enforced
by ``tests/obs/test_identity.py``).  Instrumentation sites follow one
pattern::

    obs = sim.obs
    t0 = sim.now
    ... protocol work ...
    if obs.enabled:
        obs.span("adapt", "adapt.gc", t0, sim.now)

With observability off ``sim.obs`` is the shared :data:`NULL_OBS`
sentinel whose ``enabled`` is False and whose methods are no-ops, so the
only residual cost on hot paths is reading a local float.

This module is dependency-free on purpose: :mod:`repro.simcore` imports
it, so it must not import anything from the simulator stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: Track names used by the built-in instrumentation.  Per-process tracks
#: are ``P0``, ``P1``, ... (one per simulated DSM process).
TRACK_ADAPT = "adapt"
TRACK_NETWORK = "network"
TRACK_MASTER = "master"


@dataclass(frozen=True)
class Span:
    """One named interval of simulated time on a track."""

    track: str
    name: str
    start: float
    end: float
    category: str = ""
    args: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Counter:
    """A named accumulator (totals, not time series)."""

    name: str
    value: float = 0.0

    def add(self, delta: float) -> None:
        self.value += delta


@dataclass(frozen=True)
class ObsConfig:
    """What :func:`repro.api.run` should record and export.

    ``enabled=False`` runs with the :data:`NULL_OBS` sentinel — the
    pre-observability behaviour, bit for bit.
    """

    enabled: bool = True
    #: Record per-process spans (region bodies, barrier waits, fault
    #: waits).  These are the densest spans; turning them off keeps only
    #: the adaptation/recovery/network tracks.
    per_process: bool = True
    #: Write a Chrome/Perfetto ``trace.json`` here after the run.
    trace_path: Optional[str] = None
    #: Write a flat ``metrics.json`` here after the run.
    metrics_path: Optional[str] = None

    def make_registry(self) -> "Registry":
        return Registry(per_process=self.per_process) if self.enabled else NULL_OBS


class Registry:
    """Collects spans and counters for one simulated run."""

    enabled = True

    def __init__(self, per_process: bool = True):
        self.per_process = per_process
        self.spans: List[Span] = []
        self.counters: Dict[str, Counter] = {}

    # -- recording ------------------------------------------------------
    def span(
        self,
        track: str,
        name: str,
        start: float,
        end: float,
        category: str = "",
        **args: Any,
    ) -> None:
        """Record a completed interval of simulated time."""
        self.spans.append(
            Span(track, name, start, end, category, args or None)
        )

    def count(self, name: str, value: float = 1.0) -> None:
        """Accumulate ``value`` into the counter ``name``."""
        counter = self.counters.get(name)
        if counter is None:
            self.counters[name] = Counter(name, value)
        else:
            counter.add(value)

    # -- queries --------------------------------------------------------
    def select(
        self,
        track: Optional[str] = None,
        name: Optional[str] = None,
        prefix: Optional[str] = None,
    ) -> List[Span]:
        """Spans filtered by exact track/name and/or name prefix."""
        return [
            s
            for s in self.spans
            if (track is None or s.track == track)
            and (name is None or s.name == name)
            and (prefix is None or s.name.startswith(prefix))
        ]

    def total(self, name: Optional[str] = None, prefix: Optional[str] = None) -> float:
        """Summed simulated duration of the matching spans."""
        return sum(s.duration for s in self.select(name=name, prefix=prefix))

    def tracks(self) -> List[str]:
        """All track names, per-process tracks sorted numerically last."""
        seen = {s.track for s in self.spans}

        def key(track: str):
            if len(track) > 1 and track[0] == "P" and track[1:].isdigit():
                return (1, int(track[1:]), track)
            return (0, 0, track)

        return sorted(seen, key=key)

    def counter_value(self, name: str, default: float = 0.0) -> float:
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def merge(self, others: Iterable["Registry"]) -> None:
        """Fold other registries' records into this one (sweep digests)."""
        for other in others:
            self.spans.extend(other.spans)
            for name, counter in other.counters.items():
                self.count(name, counter.value)


class NullRegistry(Registry):
    """The disabled registry: ``enabled`` is False, methods are no-ops."""

    enabled = False

    def __init__(self):
        super().__init__(per_process=False)

    def span(self, *args: Any, **kwargs: Any) -> None:  # pragma: no cover - trivial
        return

    def count(self, *args: Any, **kwargs: Any) -> None:  # pragma: no cover - trivial
        return


#: The shared disabled registry every :class:`~repro.simcore.Simulator`
#: starts with.  Never record into it.
NULL_OBS = NullRegistry()
