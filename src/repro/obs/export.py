"""Exporters: Chrome/Perfetto ``trace.json`` and flat ``metrics.json``.

The Chrome trace uses the JSON-object format ``chrome://tracing`` and
Perfetto load directly: one process (pid 0 = the simulated system), one
thread per track — every simulated DSM process gets its own track (``P0``
is the master), plus ``adapt``, ``network`` and ``master`` tracks for the
runtime-level spans.  Timestamps are *simulated* microseconds.

:func:`pool_trace` renders the execution engine's worker timeline the
same way (one track per worker process, wall-clock microseconds), so a
``repro sweep --jobs N --timeline pool.json`` session can be inspected
with the identical tooling.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .breakdown import CostBreakdown
from .core import Registry

#: Schema identifiers embedded in the exported files.
TRACE_SCHEMA = "repro-trace/1"
METRICS_SCHEMA = "repro-metrics/1"


def _sec_to_us(seconds: float) -> float:
    return seconds * 1.0e6


def chrome_trace(reg: Registry, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The registry as a Chrome/Perfetto trace-object dict."""
    tracks = reg.tracks()
    tids = {track: tid for tid, track in enumerate(tracks)}
    events: List[Dict[str, Any]] = []
    for track in tracks:
        events.append({
            "ph": "M",
            "pid": 0,
            "tid": tids[track],
            "name": "thread_name",
            "args": {"name": track},
        })
    for span in reg.spans:
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": 0,
            "tid": tids[span.track],
            "name": span.name,
            "cat": span.category or "sim",
            "ts": _sec_to_us(span.start),
            "dur": _sec_to_us(span.duration),
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    end_ts = _sec_to_us(max((s.end for s in reg.spans), default=0.0))
    for name in sorted(reg.counters):
        events.append({
            "ph": "C",
            "pid": 0,
            "tid": 0,
            "name": name,
            "ts": end_ts,
            "args": {"value": reg.counters[name].value},
        })
    other = {"schema": TRACE_SCHEMA}
    if meta:
        other.update(meta)
    return {
        "displayTimeUnit": "ms",
        "otherData": other,
        "traceEvents": events,
    }


def write_chrome_trace(
    reg: Registry, path: str, meta: Optional[Dict[str, Any]] = None
) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(reg, meta=meta), fh, indent=1, sort_keys=True)
        fh.write("\n")


def metrics_dict(
    reg: Registry,
    breakdown: Optional[CostBreakdown] = None,
    result: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The flat metrics payload: counters, span totals, cost breakdown."""
    breakdown = breakdown if breakdown is not None else CostBreakdown.from_registry(reg)
    span_totals: Dict[str, Dict[str, float]] = {}
    for span in reg.spans:
        entry = span_totals.setdefault(span.name, {"seconds": 0.0, "count": 0})
        entry["seconds"] += span.duration
        entry["count"] += 1
    payload: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "counters": {k: c.value for k, c in sorted(reg.counters.items())},
        "spans": {k: span_totals[k] for k in sorted(span_totals)},
        "breakdown": breakdown.as_dict(),
    }
    if result is not None:
        payload["result"] = result
    return payload


def write_metrics(
    reg: Registry,
    path: str,
    breakdown: Optional[CostBreakdown] = None,
    result: Optional[Dict[str, Any]] = None,
) -> None:
    with open(path, "w") as fh:
        json.dump(metrics_dict(reg, breakdown=breakdown, result=result),
                  fh, indent=1, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# execution-engine pool timeline (wall clock, one track per worker)
# ---------------------------------------------------------------------------
def pool_trace(outcome) -> Dict[str, Any]:
    """A :class:`~repro.exec.pool.SweepOutcome` as a Chrome trace.

    Cache hits (``worker == -1``) are skipped — they take no pool time.
    """
    reg = Registry(per_process=False)
    for task in outcome.outcomes:
        if task.worker < 0:
            continue
        reg.span(
            f"worker{task.worker}",
            task.spec.display_name,
            task.started_at,
            task.ended_at,
            category="exec",
            digest=task.spec.config_digest()[:12],
            attempts=task.attempts,
        )
    return chrome_trace(reg, meta={
        "jobs": outcome.jobs,
        "executed": outcome.executed,
        "cache_hits": outcome.cache_hits,
        "wall_seconds": outcome.wall_seconds,
        "utilization": pool_utilization(outcome),
    })


def pool_utilization(outcome) -> float:
    """Busy fraction of the pool: worker-busy seconds over jobs × wall."""
    busy = sum(
        task.ended_at - task.started_at
        for task in outcome.outcomes
        if task.worker >= 0
    )
    denom = outcome.jobs * outcome.wall_seconds
    return busy / denom if denom > 0 else 0.0


def write_pool_trace(outcome, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(pool_trace(outcome), fh, indent=1, sort_keys=True)
        fh.write("\n")
