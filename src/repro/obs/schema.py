"""Minimal JSON-Schema validation for the exported artifacts.

CI validates every ``trace.json``/``metrics.json`` against the schemas
checked in under ``docs/schemas/``.  The container deliberately carries
no ``jsonschema`` dependency, so this implements the subset the schemas
use — ``type``, ``properties``, ``required``, ``items``, ``enum``,
``minimum`` — nothing more.  Unknown keywords are ignored (as a real
validator would treat unsupported vocabularies).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict

from ..errors import ReproError

SCHEMA_DIR = pathlib.Path(__file__).resolve().parents[3] / "docs" / "schemas"
TRACE_SCHEMA_PATH = SCHEMA_DIR / "trace.schema.json"
METRICS_SCHEMA_PATH = SCHEMA_DIR / "metrics.schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ReproError):
    """The instance does not conform to the schema."""


def validate(instance: Any, schema: Dict[str, Any], path: str = "$") -> None:
    """Raise :class:`SchemaError` if ``instance`` violates ``schema``."""
    typ = schema.get("type")
    if typ is not None:
        expected = _TYPES[typ]
        ok = isinstance(instance, expected)
        # bool is an int subclass in Python; keep them distinct.
        if typ in ("number", "integer") and isinstance(instance, bool):
            ok = False
        if not ok:
            raise SchemaError(f"{path}: expected {typ}, got {type(instance).__name__}")
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            raise SchemaError(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaError(f"{path}: missing required property {name!r}")
        props = schema.get("properties", {})
        for name, sub in props.items():
            if name in instance:
                validate(instance[name], sub, f"{path}.{name}")
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for name, value in instance.items():
                if name not in props:
                    validate(value, extra, f"{path}.{name}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate(item, schema["items"], f"{path}[{i}]")


def _load(path) -> Dict[str, Any]:
    with open(path) as fh:
        return json.load(fh)


def validate_trace(payload: Dict[str, Any]) -> None:
    validate(payload, _load(TRACE_SCHEMA_PATH))


def validate_metrics(payload: Dict[str, Any]) -> None:
    validate(payload, _load(METRICS_SCHEMA_PATH))


def validate_trace_file(path: str) -> None:
    """Validate an exported ``trace.json`` (CI entry point)."""
    validate_trace(_load(path))


def validate_metrics_file(path: str) -> None:
    """Validate an exported ``metrics.json`` (CI entry point)."""
    validate_metrics(_load(path))
