"""OpenMP front end: program model, schedules, and the SUIF-style
lowering to TreadMarks fork/join code."""

from .compiler import compile_openmp
from .dynamic import DynamicLoop, Reduction
from .program import BodyFn, OmpApi, OmpProgram, ParallelFor
from .transform import strip_mine
from .schedule import (
    InterleavedSchedule,
    Schedule,
    StaticChunkSchedule,
    StaticSchedule,
    WeightedSchedule,
    coverage,
)

__all__ = [
    "BodyFn",
    "InterleavedSchedule",
    "OmpApi",
    "OmpProgram",
    "ParallelFor",
    "Schedule",
    "StaticChunkSchedule",
    "StaticSchedule",
    "WeightedSchedule",
    "DynamicLoop",
    "Reduction",
    "compile_openmp",
    "strip_mine",
    "coverage",
]
