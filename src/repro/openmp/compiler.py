"""OpenMP → TreadMarks lowering (the SUIF-based translator of §2).

The real system encapsulates each parallel-loop body into a procedure,
replaces the loop with ``Tmk_fork(procedure)``, and emits code inside the
procedure that computes the iterations to execute from the TreadMarks
process id and the total process count, ending with ``Tmk_join``.

This module performs exactly that transformation on :class:`OmpProgram`
objects: every :class:`ParallelFor` becomes a TmkProgram *phase* whose
region recomputes its chunks from ``(pid, nprocs)`` at every fork — the
lynchpin of transparent adaptation.
"""

from __future__ import annotations

from typing import Any, Generator

from ..dsm.runtime import MasterApi, RegionCtx, TmkProgram
from .program import OmpApi, OmpProgram, ParallelFor


def _lower_loop(loop: ParallelFor):
    """Encapsulate one parallel loop body into a fork/join region."""

    def region(ctx: RegionCtx, pid: int, nprocs: int, args: Any) -> Generator:
        n = loop.iteration_count(args)
        # The compiler-emitted partitioning code: executed at *every* fork
        # with the then-current (pid, nprocs).
        for lo, hi in loop.schedule.chunks(n, pid, nprocs):
            yield from loop.body(ctx, lo, hi, args)

    region.__name__ = f"omp_region_{loop.name}"
    return region


def compile_openmp(program: OmpProgram) -> TmkProgram:
    """Lower an OpenMP program to TreadMarks fork/join form."""
    phases = {loop.name: _lower_loop(loop) for loop in program.loops}

    def driver(api: MasterApi) -> Generator:
        omp = OmpApi(api, program)
        yield from program.driver(omp)

    tmk = TmkProgram(phases, driver, name=program.name)
    # Carry the §4.4 adaptivity-inhibit switch through to the runtime.
    tmk.adaptable = program.adaptable
    return tmk
