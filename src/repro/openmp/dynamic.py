"""OpenMP ``schedule(dynamic)`` and ``reduction`` support.

Static schedules partition the iteration space arithmetically; *dynamic*
scheduling doles out chunks from a shared counter protected by a
TreadMarks lock — exactly how shared-memory OpenMP runtimes implement it,
and a natural fit for the DSM since the counter is just one more shared
page.  Under adaptation nothing changes: the counter is reset by the
master before each fork, and however many processes the next fork has,
they drain the same queue.

``reduction`` gives each process a private accumulator slot in a shared
array (one cache...page-padded slot per possible pid) and combines the
slots in sequential master code after the join — the standard
tree-free OpenMP lowering for small reductions.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

import numpy as np

from ..dsm import Protocol, SharedArray
from ..errors import ConfigurationError
from .program import OmpProgram, ParallelFor

#: Lock ids below this are reserved for user code; dynamic loops allocate
#: from here upward.
_DYN_LOCK_BASE = 1 << 20


class DynamicLoop:
    """A ``#pragma OMP for schedule(dynamic, chunk)`` construct.

    Usage::

        dyn = DynamicLoop(rt, "work", iterations=1000, chunk=16, body=body)
        loops = [dyn.parallel_for()]
        # driver:  yield from dyn.enter(omp)   # resets the queue, forks

    ``body(ctx, lo, hi, args)`` is invoked for each chunk a process grabs.
    """

    _counter = 0

    def __init__(
        self,
        rt,
        name: str,
        iterations: int,
        chunk: int,
        body: Callable[..., Generator],
        max_procs: int = 64,
    ):
        if chunk < 1:
            raise ConfigurationError("chunk must be >= 1")
        if iterations < 0:
            raise ConfigurationError("negative iteration count")
        self.name = name
        self.iterations = iterations
        self.chunk = chunk
        self.body = body
        DynamicLoop._counter += 1
        self.lock_id = _DYN_LOCK_BASE + DynamicLoop._counter
        # the shared work-queue head: one int64 (its own page)
        seg = rt.malloc(
            f"__omp_dyn_{name}_{DynamicLoop._counter}",
            shape=(8,),
            dtype="int64",
            protocol=Protocol.MULTIPLE_WRITER,
        )
        self.head = SharedArray(seg)
        #: iterations grabbed per pid (observability / load-balance checks)
        self.grabbed: dict = {}
        self._traced_head = 0

    # -- construct pieces ------------------------------------------------
    def parallel_for(self) -> ParallelFor:
        """The declared construct: every process runs the drain loop once."""
        return ParallelFor(
            self.name,
            lambda args: 1 << 20,  # large enough for any team size
            self._drain_entry,
            schedule=_EveryProcOnce(),
        )

    def _drain_entry(self, ctx, lo, hi, args) -> Generator:
        yield from self._drain(ctx, args)

    def _drain(self, ctx, args: Any) -> Generator:
        """Grab chunks off the shared queue until it runs dry."""
        mine = 0
        while True:
            yield from ctx.lock(self.lock_id)
            yield from ctx.access(
                self.head.seg,
                reads=self.head.elements(0, 1),
                writes=self.head.elements(0, 1),
            )
            if ctx.materialized:
                lo = int(self.head.view(ctx)[0])
                self.head.view(ctx)[0] = min(lo + self.chunk, self.iterations)
            else:
                # traced mode: model the same number of queue operations
                lo = self._traced_head
                self._traced_head = min(lo + self.chunk, self.iterations)
            ctx.unlock(self.lock_id)
            if lo >= self.iterations:
                break
            hi = min(lo + self.chunk, self.iterations)
            mine += hi - lo
            yield from self.body(ctx, lo, hi, args)
        self.grabbed[ctx.pid] = self.grabbed.get(ctx.pid, 0) + mine

    def enter(self, omp) -> Generator:
        """Reset the queue (sequential master code), then fork the drain."""
        ctx = omp.ctx
        yield from ctx.access(
            self.head.seg,
            reads=self.head.elements(0, 1),
            writes=self.head.elements(0, 1),
        )
        if ctx.materialized:
            self.head.view(ctx)[0] = 0
        self._traced_head = 0
        yield from omp.parallel_for(self.name)


class _EveryProcOnce:
    """A schedule that gives every process exactly one unit of work."""

    def chunks(self, n_iterations: int, pid: int, nprocs: int):
        return [(pid, pid + 1)]


class Reduction:
    """An ``omp reduction`` helper: padded per-pid slots + master combine.

    ``op`` is a binary numpy ufunc-compatible callable; ``identity`` its
    neutral element.  One page per slot avoids all write sharing.
    """

    _counter = 0

    def __init__(self, rt, name: str, op=np.add, identity: float = 0.0,
                 max_procs: int = 64):
        Reduction._counter += 1
        self.op = op
        self.identity = identity
        self.max_procs = max_procs
        # one 4096-byte page (512 float64) per slot: no false sharing
        seg = rt.malloc(
            f"__omp_red_{name}_{Reduction._counter}",
            shape=(max_procs, 512),
            dtype="float64",
            protocol=Protocol.SINGLE_WRITER,
        )
        self.slots = SharedArray(seg)
        self.result: Optional[float] = None

    def reset(self, ctx) -> Generator:
        """Master: clear all slots before the parallel construct."""
        yield from ctx.access(self.slots.seg, writes=self.slots.full())
        if ctx.materialized:
            self.slots.view(ctx)[:, 0] = self.identity

    def contribute(self, ctx, value: float) -> Generator:
        """Worker: accumulate into the private slot (no locking needed)."""
        pid = ctx.pid
        if pid >= self.max_procs:
            raise ConfigurationError("reduction slot table too small")
        yield from ctx.access(
            self.slots.seg,
            reads=self.slots.rows(pid, pid + 1),
            writes=self.slots.rows(pid, pid + 1),
        )
        if ctx.materialized:
            v = self.slots.view(ctx)
            v[pid, 0] = self.op(v[pid, 0], value)

    def combine(self, ctx, nprocs: Optional[int] = None) -> Generator:
        """Master (after the join): fold the slots into ``self.result``."""
        n = nprocs if nprocs is not None else ctx.nprocs
        yield from ctx.access(self.slots.seg, reads=self.slots.rows(0, n))
        if ctx.materialized:
            acc = self.identity
            for pid in range(n):
                acc = self.op(acc, self.slots.view(ctx)[pid, 0])
            self.result = float(acc)
