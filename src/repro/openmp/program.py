"""The OpenMP-level program model.

An :class:`OmpProgram` is what the user writes: declared parallel loops
(the ``#pragma OMP for`` constructs of Figure 1) plus a driver of
sequential master code that enters them.  The driver only names loops —
it never mentions process counts or partitions; those appear when the
compiler (:mod:`.compiler`) lowers the program to TreadMarks fork/join
form, which is what makes the adaptivity transparent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Union

from ..errors import ConfigurationError
from .schedule import Schedule, StaticSchedule

#: A loop body covering iterations ``[lo, hi)``:
#: ``body(ctx, lo, hi, args) -> generator`` declaring accesses & compute.
BodyFn = Callable[..., Generator]
#: Iteration count: fixed, or computed from the fork args.
IterCount = Union[int, Callable[[Any], int]]


@dataclass(frozen=True)
class ParallelFor:
    """One ``#pragma OMP for`` construct."""

    name: str
    iterations: IterCount
    body: BodyFn
    schedule: Schedule = field(default_factory=StaticSchedule)

    def iteration_count(self, args: Any) -> int:
        n = self.iterations(args) if callable(self.iterations) else self.iterations
        if n < 0:
            raise ConfigurationError(f"loop {self.name!r}: negative trip count")
        return int(n)


class OmpApi:
    """What the sequential (master) driver of an OpenMP program sees."""

    def __init__(self, master_api, program: "OmpProgram"):
        self._api = master_api
        self._program = program
        self.ctx = master_api.ctx

    @property
    def num_procs(self) -> int:
        """``omp_get_num_threads`` at the next construct."""
        return self._api.nprocs

    def parallel_for(self, name: str, args: Any = None) -> Generator:
        """Enter a declared parallel construct (a fork/join)."""
        if name not in self._program.loop_names:
            raise ConfigurationError(f"undeclared parallel loop {name!r}")
        yield from self._api.fork_join(name, args)

    def serial(self, fn: Callable) -> Generator:
        """Sequential master-only code between constructs."""
        yield from self._api.seq(fn)


@dataclass
class OmpProgram:
    """A complete OpenMP application."""

    name: str
    loops: List[ParallelFor]
    #: ``driver(omp: OmpApi) -> generator`` — the sequential control flow.
    driver: Callable[[OmpApi], Generator]
    #: The OpenMP switch that inhibits adaptivity (§4.4): when False the
    #: adaptive runtime never changes the team during this program.
    adaptable: bool = True

    def __post_init__(self) -> None:
        names = [loop.name for loop in self.loops]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate loop names in program {self.name!r}")

    @property
    def loop_names(self) -> set:
        return {loop.name for loop in self.loops}

    def loop(self, name: str) -> ParallelFor:
        for candidate in self.loops:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(f"no loop named {name!r}")
