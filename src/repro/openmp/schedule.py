"""Iteration-space scheduling (the partitioning code the compiler emits).

The crucial property for transparent adaptivity (§2, §7): the chunk
computation depends only on ``(pid, nprocs)`` and is re-executed at every
fork, so changing the team size re-partitions both iterations and — via
the DSM — data, with no application involvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError

Chunk = Tuple[int, int]


class Schedule:
    """Base class: maps an iteration count to per-process chunks."""

    def chunks(self, n_iterations: int, pid: int, nprocs: int) -> List[Chunk]:
        raise NotImplementedError

    def _check(self, n_iterations: int, pid: int, nprocs: int) -> None:
        if nprocs < 1:
            raise ConfigurationError("nprocs must be >= 1")
        if not 0 <= pid < nprocs:
            raise ConfigurationError(f"pid {pid} outside team of {nprocs}")
        if n_iterations < 0:
            raise ConfigurationError("negative iteration count")


@dataclass(frozen=True)
class StaticSchedule(Schedule):
    """OpenMP ``schedule(static)``: one contiguous block per process.

    Remainder iterations go to the lowest pids, matching the block rule
    used for data partitioning (``SharedArray.block``).
    """

    def chunks(self, n_iterations: int, pid: int, nprocs: int) -> List[Chunk]:
        self._check(n_iterations, pid, nprocs)
        base, extra = divmod(n_iterations, nprocs)
        lo = pid * base + min(pid, extra)
        hi = lo + base + (1 if pid < extra else 0)
        return [(lo, hi)] if hi > lo else []


@dataclass(frozen=True)
class StaticChunkSchedule(Schedule):
    """OpenMP ``schedule(static, chunk)``: round-robin fixed-size chunks."""

    chunk: int

    def __post_init__(self) -> None:
        if self.chunk < 1:
            raise ConfigurationError("chunk must be >= 1")

    def chunks(self, n_iterations: int, pid: int, nprocs: int) -> List[Chunk]:
        self._check(n_iterations, pid, nprocs)
        out = []
        start = pid * self.chunk
        stride = nprocs * self.chunk
        while start < n_iterations:
            out.append((start, min(start + self.chunk, n_iterations)))
            start += stride
        return out


@dataclass(frozen=True)
class InterleavedSchedule(Schedule):
    """Cyclic (``static, 1``) distribution, expressed as unit chunks."""

    def chunks(self, n_iterations: int, pid: int, nprocs: int) -> List[Chunk]:
        self._check(n_iterations, pid, nprocs)
        return [(i, i + 1) for i in range(pid, n_iterations, nprocs)]


@dataclass(frozen=True)
class WeightedSchedule(Schedule):
    """Block partition proportional to per-process weights.

    For heterogeneous NOWs (nodes of different speeds): iteration counts
    follow the weight vector, so a half-speed node gets half the block.
    Like every schedule here it is a pure function of (pid, nprocs) plus
    the weights, so it re-partitions transparently at every fork; weights
    beyond ``nprocs`` are ignored, missing ones default to 1.0.
    """

    weights: tuple

    def __post_init__(self) -> None:
        if any(w <= 0 for w in self.weights):
            raise ConfigurationError("weights must be positive")

    def _weight(self, pid: int) -> float:
        return self.weights[pid] if pid < len(self.weights) else 1.0

    def chunks(self, n_iterations: int, pid: int, nprocs: int) -> List[Chunk]:
        self._check(n_iterations, pid, nprocs)
        total = sum(self._weight(p) for p in range(nprocs))
        # largest-remainder apportionment: exact, deterministic, dense
        raw = [self._weight(p) * n_iterations / total for p in range(nprocs)]
        base = [int(r) for r in raw]
        leftover = n_iterations - sum(base)
        order = sorted(
            range(nprocs), key=lambda p: (-(raw[p] - base[p]), p)
        )
        for p in order[:leftover]:
            base[p] += 1
        lo = sum(base[:pid])
        hi = lo + base[pid]
        return [(lo, hi)] if hi > lo else []


def coverage(schedule: Schedule, n_iterations: int, nprocs: int) -> List[int]:
    """How many times each iteration is assigned across the team.

    A correct schedule yields all-ones; used by property tests.
    """
    counts = [0] * n_iterations
    for pid in range(nprocs):
        for lo, hi in schedule.chunks(n_iterations, pid, nprocs):
            for i in range(lo, hi):
                counts[i] += 1
    return counts
