"""Compiler transformations on OpenMP programs (§7).

"The compiler can control the frequency of adaptation points by
transformations similar to loop tiling or strip mining. ... the compiler
can generate code that determines at runtime the trip counts or tiling of
the loops, subject to the characteristics of the execution environment."

:func:`strip_mine` rewrites a driver's single ``parallel_for`` entry into
``k`` successive fork/joins over iteration strips.  Each strip boundary
is a fork boundary — i.e. an adaptation point — so a leave request is
serviced up to ``k``× sooner, at the cost of ``k-1`` extra fork/join
synchronizations per construct.  The ablation bench
(``benchmarks/test_strip_mining.py``) quantifies the trade.
"""

from __future__ import annotations

from typing import Generator

from ..errors import ConfigurationError
from .program import OmpProgram, ParallelFor


def strip_mine(program: OmpProgram, loop_name: str, strips: int) -> OmpProgram:
    """Split ``loop_name`` into ``strips`` successive parallel constructs.

    The returned program declares one loop per strip; its driver is the
    original driver with every entry into ``loop_name`` replaced by the
    strip sequence.  Semantics are preserved for loops whose iterations
    are independent (the OpenMP contract for a work-shared ``for``).
    """
    if strips < 1:
        raise ConfigurationError("strips must be >= 1")
    original = program.loop(loop_name)
    if strips == 1:
        return program

    def strip_loop(index: int) -> ParallelFor:
        def iterations(args) -> int:
            # runtime trip count of this strip (§7: determined at runtime)
            n = original.iteration_count(args)
            base, extra = divmod(n, strips)
            return base + (1 if index < extra else 0)

        def body(ctx, lo, hi, args) -> Generator:
            n = original.iteration_count(args)
            offset = _strip_offset(n, strips, index)
            yield from original.body(ctx, offset + lo, offset + hi, args)

        return ParallelFor(
            f"{loop_name}#strip{index}",
            iterations,
            body,
            schedule=original.schedule,
        )

    strip_loops = [strip_loop(i) for i in range(strips)]
    other_loops = [l for l in program.loops if l.name != loop_name]

    class _StripApi:
        """Driver shim: entering the original loop runs all strips."""

        def __init__(self, omp):
            self._omp = omp
            self.ctx = omp.ctx

        @property
        def num_procs(self):
            return self._omp.num_procs

        def parallel_for(self, name, args=None):
            if name == loop_name:
                for strip in strip_loops:
                    yield from self._omp.parallel_for(strip.name, args)
            else:
                yield from self._omp.parallel_for(name, args)

        def serial(self, fn):
            yield from self._omp.serial(fn)

    def driver(omp) -> Generator:
        yield from program.driver(_StripApi(omp))

    return OmpProgram(
        name=f"{program.name}[strip-mined x{strips}]",
        loops=other_loops + strip_loops,
        driver=driver,
        adaptable=program.adaptable,
    )


def _strip_offset(n: int, strips: int, index: int) -> int:
    """First global iteration of strip ``index`` (remainder to low strips)."""
    base, extra = divmod(n, strips)
    return index * base + min(index, extra)
