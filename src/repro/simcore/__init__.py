"""Deterministic discrete-event simulation core.

This subpackage is the substrate every other component runs on: a virtual
clock, generator-based processes, channels, resources, tracing, and seeded
random streams.
"""

from .channel import Channel
from .events import BatchedEventQueue, Event, EventQueue, LATE, NORMAL, URGENT
from .process import ComputeSpan, Signal, SimProcess, Timeout, Waitable
from .rand import RandomStreams, substream_seed
from .resources import Resource, Store
from .simulator import Simulator
from .trace import TraceRecord, Tracer

__all__ = [
    "BatchedEventQueue",
    "Channel",
    "ComputeSpan",
    "Event",
    "EventQueue",
    "LATE",
    "NORMAL",
    "URGENT",
    "RandomStreams",
    "Resource",
    "Signal",
    "SimProcess",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "Waitable",
    "substream_seed",
]
