"""Point-to-point mailboxes for simulated processes.

A :class:`Channel` is an unbounded FIFO of messages.  ``recv()`` returns a
waitable; if a message is queued the receiver resumes immediately (at the
current simulated time), otherwise it parks until ``put`` is called.
Multiple receivers are served in FIFO order, one message each.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .process import Callback, Waitable
from .simulator import Simulator


class _Recv(Waitable):
    """Waitable handed out by :meth:`Channel.recv`."""

    def __init__(self, channel: "Channel", match: Optional[Callable[[Any], bool]]):
        self._channel = channel
        self._match = match
        self._callback: Optional[Callback] = None

    def subscribe(self, callback: Callback) -> None:
        self._callback = callback
        self._channel._subscribe(self)

    def unsubscribe(self, callback: Callback) -> None:
        self._callback = None
        self._channel._unsubscribe(self)

    def _matches(self, item: Any) -> bool:
        return self._match is None or self._match(item)

    def _deliver(self, item: Any) -> None:
        assert self._callback is not None
        cb, self._callback = self._callback, None
        # Pre-bound (callback, value) action: the engine calls cb(item, None)
        # directly, with no closure allocated per delivery.
        self._channel._sim._queue.push(self._channel._sim.now, (cb, item))


class Channel:
    """Unbounded FIFO message queue usable from simulated processes."""

    def __init__(self, sim: Simulator, name: str = "chan"):
        self._sim = sim
        self.name = name
        self._items: deque = deque()
        self._waiters: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking a matching waiter if one is parked."""
        for i, waiter in enumerate(self._waiters):
            if waiter._matches(item):
                del self._waiters[i]
                waiter._deliver(item)
                return
        self._items.append(item)

    def recv(self, match: Optional[Callable[[Any], bool]] = None) -> Waitable:
        """Waitable yielding the next (optionally matching) message."""
        return _Recv(self, match)

    def try_recv(self, match: Optional[Callable[[Any], bool]] = None) -> Any:
        """Non-blocking receive; returns ``None`` when nothing matches."""
        for i, item in enumerate(self._items):
            if match is None or match(item):
                del self._items[i]
                return item
        return None

    # -- internal ---------------------------------------------------------
    def _subscribe(self, recv: _Recv) -> None:
        if recv._callback is None:
            raise SimulationError("recv subscribed without callback")
        for i, item in enumerate(self._items):
            if recv._matches(item):
                del self._items[i]
                recv._deliver(item)
                return
        self._waiters.append(recv)

    def _unsubscribe(self, recv: _Recv) -> None:
        try:
            self._waiters.remove(recv)
        except ValueError:
            pass
