"""Event queue primitives for the discrete-event simulator.

The queue is a binary heap ordered by ``(time, priority, seq)``.  ``seq`` is
a monotonically increasing counter so that events scheduled earlier run
earlier among equals — this makes every simulation fully deterministic.

The heap stores ``(time, priority, seq, event)`` tuples rather than the
:class:`Event` objects themselves: the heap performs millions of
comparisons per run and tuple comparison runs entirely in C, whereas
comparing events directly dispatches a Python-level ``__lt__`` per sift
step.  ``seq`` is unique, so comparisons never reach the event field.
:class:`Event` keeps its hand-written ``__lt__`` for callers that sort
events, with identical ordering semantics.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from ..errors import SimulationError

#: Default priority; lower runs first among events at the same time.
NORMAL = 10
#: Priority for bookkeeping that must run before normal events.
URGENT = 0
#: Priority for watchers that should observe the effects of normal events.
LATE = 20


class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``."""

    __slots__ = ("time", "priority", "seq", "action", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, action: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:  # pragma: no cover - identity semantics
        return id(self)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority} seq={self.seq}{flag}>"


class EventQueue:
    """Deterministic min-heap of ``(time, priority, seq, event)`` tuples."""

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None], priority: int = NORMAL) -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        seq = next(self._seq)
        # Inline Event construction (bypassing __init__) — push runs once
        # per scheduled event and the extra call frame is measurable.
        ev = Event.__new__(Event)
        ev.time = time
        ev.priority = priority
        ev.seq = seq
        ev.action = action
        ev.cancelled = False
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
