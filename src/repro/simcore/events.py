"""Event queue primitives for the discrete-event simulator.

The queue is a binary heap ordered by ``(time, priority, seq)``.  ``seq`` is
a monotonically increasing counter so that events scheduled earlier run
earlier among equals — this makes every simulation fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError

#: Default priority; lower runs first among events at the same time.
NORMAL = 10
#: Priority for bookkeeping that must run before normal events.
URGENT = 0
#: Priority for watchers that should observe the effects of normal events.
LATE = 20


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Instances are ordered by ``(time, priority, seq)`` which is exactly the
    heap order used by :class:`EventQueue`.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None], priority: int = NORMAL) -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        ev = Event(time=time, priority=priority, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
