"""Event queue primitives for the discrete-event simulator.

The queue is a binary heap ordered by ``(time, priority, seq)``.  ``seq`` is
a monotonically increasing counter so that events scheduled earlier run
earlier among equals — this makes every simulation fully deterministic.

The heap stores ``(time, priority, seq, event)`` tuples rather than the
:class:`Event` objects themselves: the heap performs millions of
comparisons per run and tuple comparison runs entirely in C, whereas
comparing events directly dispatches a Python-level ``__lt__`` per sift
step.  ``seq`` is unique, so comparisons never reach the event field.
:class:`Event` keeps its hand-written ``__lt__`` for callers that sort
events, with identical ordering semantics.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from ..errors import SimulationError

#: Default priority; lower runs first among events at the same time.
NORMAL = 10
#: Priority for bookkeeping that must run before normal events.
URGENT = 0
#: Priority for watchers that should observe the effects of normal events.
LATE = 20


class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``."""

    __slots__ = ("time", "priority", "seq", "action", "cancelled", "span")

    def __init__(self, time: float, priority: int, seq: int, action: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.cancelled = False
        #: True for quiescent compute-span completions (see ``push_span``):
        #: events whose execution the engine may fast-forward through when
        #: nothing else is outstanding.  Ordering and execution semantics
        #: are unaffected; the flag only feeds the quiescence counter.
        self.span = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:  # pragma: no cover - identity semantics
        return id(self)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} prio={self.priority} seq={self.seq}{flag}>"


class EventQueue:
    """Deterministic min-heap of ``(time, priority, seq, event)`` tuples."""

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None], priority: int = NORMAL) -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        seq = next(self._seq)
        # Inline Event construction (bypassing __init__) — push runs once
        # per scheduled event and the extra call frame is measurable.
        ev = Event.__new__(Event)
        ev.time = time
        ev.priority = priority
        ev.seq = seq
        ev.action = action
        ev.cancelled = False
        ev.span = False
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def push_span(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule a compute-span completion.

        The reference engine has no fast-forward, so this is a plain
        :meth:`push` — the flag changes nothing about ordering or
        execution, which is what keeps the two engines bitwise identical.
        """
        ev = self.push(time, action)
        ev.span = True
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[3]
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without removing it."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None


class BatchedEventQueue:
    """Bucketed deterministic queue for the macro-event engine.

    Same ordering contract as :class:`EventQueue` — events run in
    ``(time, priority, seq)`` order — but organized for batch draining:
    the heap holds one entry per *distinct* ``(time, priority)`` key and a
    dict maps each live key to its bucket, a list of events in push (=
    ``seq``) order behind a consume cursor.  Pushing at a live key is a
    plain list append with zero heap traffic, which is the common case for
    same-time event cascades (message delivery chains, signal fan-out).

    Ordering is exactly the reference order: within a bucket, push order
    is ``seq`` order; across buckets, keys compare as ``(time, priority)``
    and ``seq`` never decides between distinct keys, so the heap of unique
    keys reproduces the reference heap's total order.

    The bucket cell is the bare :class:`Event` while a key holds a single
    event — the overwhelmingly common case for staggered timeouts and
    compute spans — and is promoted to ``[cursor, ev0, ev1, ...]`` (index
    0 is the next un-consumed position, starting at 1) on the second
    same-key push.  Singletons therefore cost no list allocation and no
    cursor maintenance.  The simulator's batched drain reads
    ``_heap``/``_buckets`` directly and distinguishes the two layouts with
    one ``__class__ is list`` check.

    ``_nonspan`` counts the un-consumed events that are *not* compute-span
    completions.  When it reaches zero the queue is *quiescent*: everything
    outstanding is a pre-computed span completion, and the engine may
    fast-forward through the buckets in key order without per-event heap
    maintenance (see ``Simulator._run_batched``).  The counter is
    conservative by construction: an event cancelled in place stays
    counted until its bucket is drained, so quiescence is never declared
    while a non-span event could still run.

    ``_draining``/``_preempted`` implement the priority-preemption check
    as a push-side flag: while the engine drains bucket ``_draining``, a
    push that creates a *smaller* key (URGENT at the current time) sets
    ``_preempted``, and the drain yields its bucket.  This moves the
    reference engine's per-event heap-top comparison to the rare
    preempting push.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._buckets: dict = {}
        self._seq = itertools.count()
        #: Un-consumed events that are not span completions (quiescence
        #: is ``_nonspan == 0``); maintained by push and every drain path.
        self._nonspan = 0
        #: Key of the bucket the engine is currently draining, or None.
        self._draining: Optional[tuple] = None
        #: Set by push when a new key preempts ``_draining``.
        self._preempted = False

    def __len__(self) -> int:
        return sum(
            len(cell) - cell[0] if cell.__class__ is list else 1
            for cell in self._buckets.values()
        )

    def push(self, time: float, action: Callable[[], None], priority: int = NORMAL) -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        if time != time:  # NaN guard
            raise SimulationError("event time is NaN")
        ev = Event.__new__(Event)
        ev.time = time
        ev.priority = priority
        ev.seq = next(self._seq)
        ev.action = action
        ev.cancelled = False
        ev.span = False
        self._nonspan += 1
        key = (time, priority)
        buckets = self._buckets
        cell = buckets.get(key)
        if cell is None:
            buckets[key] = ev
            heapq.heappush(self._heap, key)
            d = self._draining
            if d is not None and key < d:
                # A smaller key than the bucket being drained can only
                # appear through a push (smaller live keys would have
                # drained first), so this flag is exactly the reference
                # heap-top comparison.
                self._preempted = True
        elif cell.__class__ is list:
            cell.append(ev)
        else:
            buckets[key] = [1, cell, ev]
        return ev

    def push_span(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule a compute-span completion (quiescence-exempt event)."""
        ev = self.push(time, action)
        ev.span = True
        self._nonspan -= 1
        return ev

    def pop(self) -> Optional[Event]:
        """Remove and return the next non-cancelled event, or ``None``."""
        heap = self._heap
        buckets = self._buckets
        while heap:
            key = heap[0]
            cell = buckets.get(key)
            if cell is None:  # stale key: bucket fully drained earlier
                heapq.heappop(heap)
                continue
            if cell.__class__ is not list:
                del buckets[key]
                if heap[0] is key:
                    heapq.heappop(heap)
                if not cell.span:
                    self._nonspan -= 1
                if not cell.cancelled:
                    return cell
                continue
            i = cell[0]
            n = len(cell)
            while i < n:
                ev = cell[i]
                i += 1
                if not ev.span:
                    self._nonspan -= 1
                if not ev.cancelled:
                    cell[0] = i
                    if i == n:
                        del buckets[key]
                        if heap[0] is key:
                            heapq.heappop(heap)
                    return ev
            cell[0] = i
            del buckets[key]
            if heap[0] is key:
                heapq.heappop(heap)
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without removing it."""
        heap = self._heap
        buckets = self._buckets
        while heap:
            key = heap[0]
            cell = buckets.get(key)
            if cell is None:
                heapq.heappop(heap)
                continue
            if cell.__class__ is not list:
                if not cell.cancelled:
                    return key[0]
                if not cell.span:
                    self._nonspan -= 1
                del buckets[key]
                if heap[0] is key:
                    heapq.heappop(heap)
                continue
            i = cell[0]
            n = len(cell)
            while i < n and cell[i].cancelled:
                if not cell[i].span:
                    self._nonspan -= 1
                i += 1
            cell[0] = i
            if i < n:
                return key[0]
            del buckets[key]
            if heap[0] is key:
                heapq.heappop(heap)
        return None
