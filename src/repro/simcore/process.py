"""Coroutine-style simulated processes.

A simulated process is a Python generator that ``yield``s *waitables*:

* :class:`Timeout` — resume after simulated time passes,
* :class:`Signal` — resume when another process fires the signal,
* a :class:`SimProcess` — resume when that process terminates (join),
* anything else implementing :class:`Waitable`.

The value sent back into the generator is the waitable's result (e.g. the
message received on a channel, or the value passed to ``Signal.fire``).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import InterruptedError_, SimulationError
from . import events as _ev

#: Callback signature used by waitables: (value, exception).
Callback = Callable[[Any, Optional[BaseException]], None]


class Waitable:
    """Base class for objects a simulated process may ``yield`` on."""

    def subscribe(self, callback: Callback) -> None:
        """Arrange for ``callback(value, exc)`` to run when ready."""
        raise NotImplementedError

    def unsubscribe(self, callback: Callback) -> None:
        """Best-effort cancellation of a pending subscription."""
        raise NotImplementedError


class Timeout(Waitable):
    """Resumes the waiter after ``delay`` simulated seconds."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self._sim = sim
        self.delay = delay
        self.value = value
        self._event: Optional[_ev.Event] = None

    def subscribe(self, callback: Callback) -> None:
        self._event = self._sim._queue.push(
            self._sim.now + self.delay, (callback, self.value)
        )

    def unsubscribe(self, callback: Callback) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None


class ComputeSpan(Timeout):
    """A :class:`Timeout` declared to the engine as a *compute span*.

    Semantically identical to a plain timeout — same ordering, same
    resumption, same ``events_executed`` accounting.  The only difference
    is that its completion event is pushed with ``push_span``, marking it
    quiescence-exempt: when every outstanding event in the batched engine
    is a span completion, the engine fast-forwards the clock through them
    arithmetically instead of running the heap (see
    ``Simulator._run_batched``).  Model layers use this for pre-computed
    work charges whose completion cannot be influenced by other events —
    per-process compute spans in particular.
    """

    def subscribe(self, callback: Callback) -> None:
        sim = self._sim
        self._event = sim._queue.push_span(
            sim.now + self.delay, (callback, self.value)
        )


class Signal(Waitable):
    """A one-shot broadcast event.

    Processes yielding on a signal are resumed (in subscription order) when
    :meth:`fire` is called.  Subscribing after the signal fired resumes the
    subscriber immediately with the fired value.
    """

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Callback] = []

    def subscribe(self, callback: Callback) -> None:
        if self.fired:
            self._sim._queue.push(self._sim.now, (callback, self.value))
        else:
            self._waiters.append(callback)

    def unsubscribe(self, callback: Callback) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def fire(self, value: Any = None) -> None:
        """Fire the signal, resuming all current waiters."""
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        push = self._sim._queue.push
        now = self._sim.now
        for cb in waiters:
            push(now, (cb, value))


class SimProcess(Waitable):
    """A running simulated process wrapping a generator.

    Yielding a :class:`SimProcess` from another process joins it: the
    waiter resumes with the process's return value when it terminates.
    """

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Waitable, Any, Any],
        name: str = "proc",
        daemon: bool = False,
    ):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.daemon = daemon
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: Completion signal, created lazily on the first join — most
        #: processes (request handlers in particular) are never joined,
        #: and the signal allocation sits on the spawn hot path.
        self._done: Optional[Signal] = None
        self._current_wait: Optional[Waitable] = None
        self._resume_cb: Callback = self._step
        sim._queue.push(sim.now, (self._step, None), priority=_ev.NORMAL)
        sim._register(self)

    # -- Waitable interface (join) ------------------------------------
    def _done_signal(self) -> Signal:
        done = self._done
        if done is None:
            done = self._done = Signal(self._sim, name=f"{self.name}.done")
            if not self.alive:
                # Terminated before anyone joined: pre-fire so late
                # subscribers resume immediately, as Signal guarantees.
                done.fired = True
                done.value = self.result
        return done

    def subscribe(self, callback: Callback) -> None:
        self._done_signal().subscribe(callback)

    def unsubscribe(self, callback: Callback) -> None:
        self._done_signal().unsubscribe(callback)

    # -- engine --------------------------------------------------------
    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self.alive:
            return
        self._current_wait = None
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except InterruptedError_ as err:
            self._finish(error=err)
            return
        except BaseException as err:  # noqa: BLE001 - report through simulator
            self._finish(error=err)
            self._sim._report_failure(self, err)
            return
        if not isinstance(target, Waitable):
            err = SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
            self._finish(error=err)
            self._sim._report_failure(self, err)
            return
        self._current_wait = target
        target.subscribe(self._resume_cb)

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.alive = False
        self.result = result
        self.error = error
        self._sim._unregister(self)
        done = self._done
        if done is not None:
            done.fire(result)

    def kill(self) -> None:
        """Fail-stop termination: the process stops where it stands.

        Unlike :meth:`interrupt`, nothing is thrown *into* the generator at
        a resumption point it can react to — the generator is closed on the
        spot (``finally`` blocks still run, so held resources are released)
        and any pending wait is cancelled.  This models a node losing power
        mid-computation.  Killing a dead process is a no-op.
        """
        if not self.alive:
            return
        if self._current_wait is not None:
            self._current_wait.unsubscribe(self._resume_cb)
            self._current_wait = None
        try:
            self._gen.close()
        except BaseException as err:  # noqa: BLE001 - a finally block misbehaved
            self._finish(error=err)
            self._sim._report_failure(self, err)
            return
        self._finish(result=None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`InterruptedError_` into the process.

        Only a process blocked on a waitable can be interrupted; the pending
        wait is cancelled.  Interrupting a dead process is a no-op.
        """
        if not self.alive:
            return
        if self._current_wait is not None:
            self._current_wait.unsubscribe(self._resume_cb)
            self._current_wait = None
        self._sim._queue.push(
            self._sim.now,
            lambda: self._step(None, InterruptedError_(cause)),
            priority=_ev.URGENT,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<SimProcess {self.name} {state}>"


# Resolved lazily to avoid a circular import at type-check time.
from .simulator import Simulator  # noqa: E402  (re-export for typing)
