"""Seeded random streams.

Each subsystem draws from its own named stream derived from the master
seed, so adding randomness to one component never perturbs another — a
requirement for reproducible experiments and for the resume-style
comparisons the paper's methodology performs (adaptive run vs interpolated
non-adaptive reference).
"""

from __future__ import annotations

import hashlib

import numpy as np


def substream_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit seed for the named substream."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int):
        self.master_seed = master_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                substream_seed(self.master_seed, name)
            )
        return self._streams[name]

    def uniform(self, name: str) -> float:
        """One U[0,1) sample from the named stream."""
        return float(self.stream(name).random())
