"""Shared resources for simulated processes.

:class:`Resource` models a capacity-limited server (e.g. a CPU or a disk)
with FIFO queueing.  :class:`Store` is a produce/consume buffer.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .process import Callback, Waitable
from .simulator import Simulator


class _Acquire(Waitable):
    def __init__(self, resource: "Resource"):
        self._resource = resource
        self._callback: Optional[Callback] = None

    def subscribe(self, callback: Callback) -> None:
        self._callback = callback
        self._resource._enqueue(self)

    def unsubscribe(self, callback: Callback) -> None:
        self._callback = None
        self._resource._dequeue(self)

    def _grant(self) -> None:
        assert self._callback is not None
        cb, self._callback = self._callback, None
        sim = self._resource._sim
        sim._queue.push(sim.now, (cb, self._resource))


class Resource:
    """FIFO resource with integer capacity.

    Usage from a process::

        yield cpu.acquire()
        try:
            yield sim.timeout(work)
        finally:
            cpu.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "res"):
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._queue: deque = deque()

    def acquire(self) -> Waitable:
        """Waitable granting one unit of the resource (FIFO order)."""
        return _Acquire(self)

    def release(self) -> None:
        """Return one unit and grant it to the next waiter, if any."""
        if self.in_use <= 0:
            raise RuntimeError(f"resource {self.name!r} released more than acquired")
        self.in_use -= 1
        self._drain()

    # -- internal ---------------------------------------------------------
    def _enqueue(self, req: _Acquire) -> None:
        self._queue.append(req)
        self._drain()

    def _dequeue(self, req: _Acquire) -> None:
        try:
            self._queue.remove(req)
        except ValueError:
            pass

    def _drain(self) -> None:
        while self._queue and self.in_use < self.capacity:
            req = self._queue.popleft()
            self.in_use += 1
            req._grant()


class Store:
    """Unbounded buffer of items with blocking ``get``.

    Semantically a :class:`~repro.simcore.channel.Channel` without message
    matching; kept separate so model code reads naturally (items vs
    messages).
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        from .channel import Channel

        self._chan = Channel(sim, name=name)
        self.name = name

    def __len__(self) -> int:
        return len(self._chan)

    def put(self, item: Any) -> None:
        self._chan.put(item)

    def get(self) -> Waitable:
        return self._chan.recv()

    def try_get(self) -> Any:
        return self._chan.try_recv()
