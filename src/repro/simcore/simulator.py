"""The discrete-event simulator engine.

A :class:`Simulator` owns the virtual clock and the event queue.  Model
code runs inside generator-based processes (see :mod:`.process`); the
engine advances time to the next scheduled event and executes it.  With a
fixed seed the entire simulation is deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

import heapq

from ..errors import DeadlockError, SimulationError
from ..obs.core import NULL_OBS, Registry
from .events import BatchedEventQueue, EventQueue, NORMAL
from .process import ComputeSpan, Signal, SimProcess, Timeout
from .trace import Tracer


class Simulator:
    """Deterministic discrete-event simulation engine.

    ``batch=True`` selects the macro-event engine: a bucketed queue whose
    ``(time, priority)`` runs drain in one call (see
    :class:`~repro.simcore.events.BatchedEventQueue`).  The event order,
    ``events_executed`` count, and every simulated output are bitwise
    identical to the default event-by-event engine, which is retained as
    the identity-test reference (``PerfParams.macro_events=False``).
    """

    def __init__(
        self,
        trace: bool = False,
        obs: Optional[Registry] = None,
        batch: bool = False,
    ):
        self.now: float = 0.0
        self.batch = batch
        self._queue = BatchedEventQueue() if batch else EventQueue()
        self._processes: set = set()
        self._failure: Optional[BaseException] = None
        self.tracer = Tracer(self, enabled=trace)
        #: Observability registry.  Instrumentation sites record spans and
        #: counters into it; :data:`~repro.obs.core.NULL_OBS` (the default)
        #: is a no-op, so an un-instrumented run pays nothing.
        self.obs: Registry = obs if obs is not None else NULL_OBS
        #: Events executed so far (cancelled events are not counted).  The
        #: perfbench harness reports events/second from this.
        self.events_executed: int = 0
        #: Quiescent phases the batched engine fast-forwarded through
        #: (incremented once per engagement, not per event — it exists so
        #: tests can assert the fast-forward path actually ran).
        self.ff_phases: int = 0

    # -- scheduling -----------------------------------------------------
    def schedule(
        self, delay: float, action: Callable[[], None], priority: int = NORMAL
    ):
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, action, priority)

    def at(self, time: float, action: Callable[[], None], priority: int = NORMAL):
        """Run ``action`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past (t={time} < {self.now})")
        return self._queue.push(time, action, priority)

    # -- process management ----------------------------------------------
    def process(
        self,
        gen: Generator,
        name: str = "proc",
        daemon: bool = False,
    ):
        """Start a new simulated process running ``gen``."""
        return SimProcess(self, gen, name=name, daemon=daemon)

    def timeout(self, delay: float, value: Any = None):
        """A waitable that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def compute_span(self, delay: float, value: Any = None):
        """A timeout marked as a quiescent compute-span completion.

        Use for pre-computed work charges that no other event can alter
        (application CPU bursts).  Behaviour is identical to
        :meth:`timeout`; the batched engine additionally fast-forwards
        through phases where *only* span completions are outstanding.
        """
        return ComputeSpan(self, delay, value)

    def signal(self, name: str = ""):
        """A fresh one-shot :class:`~repro.simcore.process.Signal`."""
        return Signal(self, name)

    def _register(self, proc) -> None:
        self._processes.add(proc)

    def _unregister(self, proc) -> None:
        self._processes.discard(proc)

    def _report_failure(self, proc, err: BaseException) -> None:
        if self._failure is None:
            self._failure = SimulationError(
                f"process {proc.name!r} failed at t={self.now:.6f}: {err!r}"
            )
            self._failure.__cause__ = err

    # -- execution --------------------------------------------------------
    def run(self, until: Optional[float] = None, check_deadlock: bool = True) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the final simulated time.  If ``check_deadlock`` and live
        non-daemon processes remain while no event can ever wake them,
        :class:`DeadlockError` is raised — this catches lost messages and
        barrier mismatches in the DSM protocol immediately.
        """
        if self.batch:
            return self._run_batched(until, check_deadlock)
        queue = self._queue
        executed = 0
        try:
            if until is None:
                # Run-to-drain fast path: no horizon check means the next
                # event can be popped directly, skipping the per-event
                # peek (this loop is the engine's innermost).
                pop = queue.pop
                while True:
                    if self._failure is not None:
                        raise self._failure
                    ev = pop()
                    if ev is None:
                        break
                    t = ev.time
                    if t < self.now - 1e-12:
                        raise SimulationError("event queue went backwards in time")
                    if t > self.now:
                        self.now = t
                    executed += 1
                    a = ev.action
                    if a.__class__ is tuple:
                        a[0](a[1], None)
                    else:
                        a()
            else:
                while True:
                    if self._failure is not None:
                        raise self._failure
                    nxt = queue.peek_time()
                    if nxt is None:
                        break
                    if nxt > until:
                        self.now = until
                        return self.now
                    ev = queue.pop()
                    assert ev is not None
                    if ev.time < self.now - 1e-12:
                        raise SimulationError("event queue went backwards in time")
                    if ev.time > self.now:
                        self.now = ev.time
                    executed += 1
                    a = ev.action
                    if a.__class__ is tuple:
                        a[0](a[1], None)
                    else:
                        a()
        finally:
            self.events_executed += executed
        if self._failure is not None:
            raise self._failure
        if check_deadlock:
            stuck = [p for p in self._processes if p.alive and not p.daemon]
            if stuck:
                names = ", ".join(sorted(p.name for p in stuck))
                raise DeadlockError(
                    f"simulation deadlocked at t={self.now:.6f}; blocked: {names}"
                )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_batched(self, until: Optional[float], check_deadlock: bool) -> float:
        """Macro-event drain: consume whole ``(time, priority)`` runs.

        Executes the exact reference event order.  The only subtlety is
        priority preemption: an action may push at the *current* time with
        a smaller priority (``SimProcess.interrupt`` schedules URGENT at
        ``now``), in which case the reference heap would run that event
        before the rest of the current run — the queue's push sets
        ``_preempted`` when a new key undercuts the bucket being drained,
        and the drain yields its bucket.  Same-key pushes append to the
        live bucket and are consumed by the same drain, which is what
        makes same-time cascades (message chains, signal fan-out) cheap.
        Singleton buckets (the bare-Event cell layout) take a dedicated
        path with no cursor bookkeeping and no preemption flag: the
        bucket is consumed before its action runs, so the main loop's
        next heap read already sees any preempting push.
        """
        queue = self._queue
        heap = queue._heap
        buckets = queue._buckets
        pop_key = heapq.heappop
        executed = 0
        try:
            while heap:
                if not queue._nonspan and until is None:
                    # Analytic fast-forward (quiescence): every outstanding
                    # event is a compute-span completion.  A span action
                    # can only push NORMAL-priority events at the current
                    # time or later — a same-key push appends to the live
                    # bucket, a later key cannot preempt — so while
                    # quiescence holds the drain needs no preemption check
                    # and no horizon check: advance clock and buckets in
                    # the cheapest possible loop.  The first action that
                    # schedules a non-span event (a message, a fault, an
                    # adaptation trigger) flips ``_nonspan`` and control
                    # returns to the fully-checked drain below.
                    self.ff_phases += 1
                    while heap and not queue._nonspan:
                        key = heap[0]
                        cell = buckets.get(key)
                        if cell is None:  # stale key from an earlier drain
                            pop_key(heap)
                            continue
                        t = key[0]
                        if cell.__class__ is not list:
                            # Singleton bucket: consume it outright, then
                            # run the action (any same-key re-push starts
                            # a fresh bucket and re-enters the heap).
                            del buckets[key]
                            if heap[0] is key:
                                pop_key(heap)
                            if not cell.span:
                                queue._nonspan -= 1
                            if cell.cancelled:
                                continue
                            if self._failure is not None:
                                raise self._failure
                            if t > self.now:
                                self.now = t
                            executed += 1
                            a = cell.action
                            if a.__class__ is tuple:
                                a[0](a[1], None)
                            else:
                                a()
                            continue
                        i = cell[0]
                        while i < len(cell):
                            ev = cell[i]
                            i += 1
                            if not ev.span:
                                queue._nonspan -= 1
                            if ev.cancelled:
                                continue
                            if self._failure is not None:
                                cell[0] = i
                                raise self._failure
                            # Advance only for a live event — a bucket of
                            # nothing but cancellations must not move the
                            # clock (the reference pop() skips those
                            # without advancing).
                            if t > self.now:
                                self.now = t
                            executed += 1
                            a = ev.action
                            if a.__class__ is tuple:
                                a[0](a[1], None)
                            else:
                                a()
                            if queue._nonspan:
                                break
                        cell[0] = i
                        if i == len(cell):
                            del buckets[key]
                            if heap[0] is key:
                                pop_key(heap)
                    continue
                key = heap[0]
                cell = buckets.get(key)
                if cell is None:  # stale key: bucket fully drained earlier
                    pop_key(heap)
                    continue
                t = key[0]
                if cell.__class__ is not list:
                    # Singleton bucket.  Cancelled singletons are consumed
                    # without touching the clock (the reference pop()
                    # skips them without advancing), and the horizon check
                    # only fires for a live event.
                    if cell.cancelled:
                        del buckets[key]
                        if heap[0] is key:
                            pop_key(heap)
                        if not cell.span:
                            queue._nonspan -= 1
                        continue
                    if until is not None and t > until:
                        self.now = until
                        return self.now
                    del buckets[key]
                    if heap[0] is key:
                        pop_key(heap)
                    if not cell.span:
                        queue._nonspan -= 1
                    if self._failure is not None:
                        raise self._failure
                    if t > self.now:
                        self.now = t
                    elif t < self.now - 1e-12:
                        raise SimulationError("event queue went backwards in time")
                    executed += 1
                    a = cell.action
                    if a.__class__ is tuple:
                        a[0](a[1], None)
                    else:
                        a()
                    continue
                if until is not None and t > until:
                    # Mirror the reference peek: only a live (non-cancelled)
                    # event beyond the horizon stops the run.
                    i = cell[0]
                    n = len(cell)
                    while i < n and cell[i].cancelled:
                        if not cell[i].span:
                            queue._nonspan -= 1
                        i += 1
                    cell[0] = i
                    if i == n:
                        del buckets[key]
                        if heap[0] is key:
                            pop_key(heap)
                        continue
                    self.now = until
                    return self.now
                # Skip a cancelled prefix before touching the clock: the
                # reference engine's pop() consumes cancelled events
                # without advancing time, so an all-cancelled bucket must
                # leave ``now`` where it was.
                i = cell[0]
                n = len(cell)
                while i < n and cell[i].cancelled:
                    if not cell[i].span:
                        queue._nonspan -= 1
                    i += 1
                cell[0] = i
                if i == n:
                    del buckets[key]
                    if heap[0] is key:
                        pop_key(heap)
                    continue
                if t > self.now:
                    self.now = t
                elif t < self.now - 1e-12:
                    raise SimulationError("event queue went backwards in time")
                queue._draining = key
                queue._preempted = False
                preempted = False
                while i < len(cell):  # actions may append to this bucket
                    ev = cell[i]
                    i += 1
                    if not ev.span:
                        queue._nonspan -= 1
                    if ev.cancelled:
                        continue
                    if self._failure is not None:
                        cell[0] = i
                        queue._draining = None
                        raise self._failure
                    executed += 1
                    a = ev.action
                    if a.__class__ is tuple:
                        a[0](a[1], None)
                    else:
                        a()
                    if queue._preempted:
                        queue._preempted = False
                        preempted = True
                        break
                queue._draining = None
                cell[0] = i
                if not preempted:
                    del buckets[key]
                    if heap and heap[0] is key:
                        pop_key(heap)
        finally:
            self.events_executed += executed
        if self._failure is not None:
            raise self._failure
        if check_deadlock:
            stuck = [p for p in self._processes if p.alive and not p.daemon]
            if stuck:
                names = ", ".join(sorted(p.name for p in stuck))
                raise DeadlockError(
                    f"simulation deadlocked at t={self.now:.6f}; blocked: {names}"
                )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Execute a single event.  Returns False if the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self.now = max(self.now, ev.time)
        self.events_executed += 1
        a = ev.action
        if a.__class__ is tuple:
            a[0](a[1], None)
        else:
            a()
        if self._failure is not None:
            raise self._failure
        return True
