"""The discrete-event simulator engine.

A :class:`Simulator` owns the virtual clock and the event queue.  Model
code runs inside generator-based processes (see :mod:`.process`); the
engine advances time to the next scheduled event and executes it.  With a
fixed seed the entire simulation is deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..errors import DeadlockError, SimulationError
from ..obs.core import NULL_OBS, Registry
from .events import EventQueue, NORMAL
from .process import Signal, SimProcess, Timeout
from .trace import Tracer


class Simulator:
    """Deterministic discrete-event simulation engine."""

    def __init__(self, trace: bool = False, obs: Optional[Registry] = None):
        self.now: float = 0.0
        self._queue = EventQueue()
        self._processes: set = set()
        self._failure: Optional[BaseException] = None
        self.tracer = Tracer(self, enabled=trace)
        #: Observability registry.  Instrumentation sites record spans and
        #: counters into it; :data:`~repro.obs.core.NULL_OBS` (the default)
        #: is a no-op, so an un-instrumented run pays nothing.
        self.obs: Registry = obs if obs is not None else NULL_OBS
        #: Events executed so far (cancelled events are not counted).  The
        #: perfbench harness reports events/second from this.
        self.events_executed: int = 0

    # -- scheduling -----------------------------------------------------
    def schedule(
        self, delay: float, action: Callable[[], None], priority: int = NORMAL
    ):
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, action, priority)

    def at(self, time: float, action: Callable[[], None], priority: int = NORMAL):
        """Run ``action`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past (t={time} < {self.now})")
        return self._queue.push(time, action, priority)

    # -- process management ----------------------------------------------
    def process(
        self,
        gen: Generator,
        name: str = "proc",
        daemon: bool = False,
    ):
        """Start a new simulated process running ``gen``."""
        return SimProcess(self, gen, name=name, daemon=daemon)

    def timeout(self, delay: float, value: Any = None):
        """A waitable that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def signal(self, name: str = ""):
        """A fresh one-shot :class:`~repro.simcore.process.Signal`."""
        return Signal(self, name)

    def _register(self, proc) -> None:
        self._processes.add(proc)

    def _unregister(self, proc) -> None:
        self._processes.discard(proc)

    def _report_failure(self, proc, err: BaseException) -> None:
        if self._failure is None:
            self._failure = SimulationError(
                f"process {proc.name!r} failed at t={self.now:.6f}: {err!r}"
            )
            self._failure.__cause__ = err

    # -- execution --------------------------------------------------------
    def run(self, until: Optional[float] = None, check_deadlock: bool = True) -> float:
        """Execute events until the queue drains or ``until`` is reached.

        Returns the final simulated time.  If ``check_deadlock`` and live
        non-daemon processes remain while no event can ever wake them,
        :class:`DeadlockError` is raised — this catches lost messages and
        barrier mismatches in the DSM protocol immediately.
        """
        queue = self._queue
        executed = 0
        try:
            if until is None:
                # Run-to-drain fast path: no horizon check means the next
                # event can be popped directly, skipping the per-event
                # peek (this loop is the engine's innermost).
                pop = queue.pop
                while True:
                    if self._failure is not None:
                        raise self._failure
                    ev = pop()
                    if ev is None:
                        break
                    t = ev.time
                    if t < self.now - 1e-12:
                        raise SimulationError("event queue went backwards in time")
                    if t > self.now:
                        self.now = t
                    executed += 1
                    ev.action()
            else:
                while True:
                    if self._failure is not None:
                        raise self._failure
                    nxt = queue.peek_time()
                    if nxt is None:
                        break
                    if nxt > until:
                        self.now = until
                        return self.now
                    ev = queue.pop()
                    assert ev is not None
                    if ev.time < self.now - 1e-12:
                        raise SimulationError("event queue went backwards in time")
                    if ev.time > self.now:
                        self.now = ev.time
                    executed += 1
                    ev.action()
        finally:
            self.events_executed += executed
        if self._failure is not None:
            raise self._failure
        if check_deadlock:
            stuck = [p for p in self._processes if p.alive and not p.daemon]
            if stuck:
                names = ", ".join(sorted(p.name for p in stuck))
                raise DeadlockError(
                    f"simulation deadlocked at t={self.now:.6f}; blocked: {names}"
                )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Execute a single event.  Returns False if the queue is empty."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self.now = max(self.now, ev.time)
        self.events_executed += 1
        ev.action()
        if self._failure is not None:
            raise self._failure
        return True
