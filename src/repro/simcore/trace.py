"""Structured event tracing.

The tracer records ``(time, category, subject, detail)`` tuples.  It is
used by the Figure-2 benchmark to reconstruct join / normal-leave /
urgent-leave timelines, and by tests to assert protocol event ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    subject: str
    detail: Any = None

    def __str__(self) -> str:
        extra = f" {self.detail}" if self.detail is not None else ""
        return f"[{self.time:12.6f}] {self.category:<18} {self.subject}{extra}"


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, sim: "Simulator", enabled: bool = False):
        self._sim = sim
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(self, category: str, subject: str, detail: Any = None) -> None:
        """Record an event at the current simulated time (if enabled)."""
        if self.enabled:
            self.records.append(TraceRecord(self._sim.now, category, subject, detail))

    def select(
        self, category: Optional[str] = None, subject: Optional[str] = None
    ) -> list[TraceRecord]:
        """Records filtered by exact category and/or subject."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (subject is None or r.subject == subject)
        ]

    def categories(self) -> set[str]:
        """All categories present in the trace."""
        return {r.category for r in self.records}

    def format(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Human-readable rendering of the trace."""
        return "\n".join(str(r) for r in (records if records is not None else self.records))
