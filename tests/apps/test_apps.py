"""Tests for the evaluation kernels: correctness through the DSM at
several team sizes, correctness across adaptations, and the protocol
signatures Table 1 documents (diffs only for Jacobi at aligned sizes)."""

import numpy as np
import pytest

from repro.apps import FFT3D, Gauss, Jacobi, NBF, PAPER, TINY, auto_protocol
from repro.dsm import Protocol

from ..helpers import build_adaptive, build_system

ALL_TINY = sorted(TINY)


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL_TINY)
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_kernels_match_sequential_reference(self, name, nprocs):
        sim, rt, pool = build_system(nprocs=nprocs)
        app = TINY[name].make()
        res = rt.run(app.program(rt))
        assert app.verify(rtol=1e-7, atol=1e-9), f"{name} diverged on {nprocs} procs"
        assert res.forks > 0

    @pytest.mark.parametrize("name", ALL_TINY)
    def test_kernels_survive_leave_and_join(self, name):
        sim, rt, pool = build_adaptive(nprocs=4, extra_nodes=0)
        app = TINY[name].make()
        prog = app.program(rt)
        # drop a node early, re-admit it mid-run
        sim.schedule(0.001, lambda: rt.submit_leave(2, grace=30.0))
        sim.schedule(0.02, lambda: rt.submit_join(2))
        res = rt.run(prog)
        assert res.adaptations >= 1
        assert app.verify(rtol=1e-7, atol=1e-9), f"{name} diverged across adaptation"

    def test_jacobi_deterministic_across_team_sizes(self):
        finals = []
        for nprocs in (1, 3):
            sim, rt, pool = build_system(nprocs=nprocs)
            app = TINY["jacobi"].make()
            rt.run(app.program(rt))
            finals.append(app.final["grid"])
        np.testing.assert_array_equal(finals[0], finals[1])


class TestProtocolSignatures:
    """Table 1: zero diffs for Gauss/FFT/NBF, diffs for Jacobi."""

    def test_gauss_aligned_rows_no_diffs(self):
        sim, rt, pool = build_system(nprocs=4)
        app = Gauss(n=64, iterations=20)  # 512 B rows... still sub-page
        # use a size whose rows are page aligned: 512 doubles = 4096 B
        sim, rt, pool = build_system(nprocs=4)
        app = Gauss(n=512, iterations=24)
        rt.run(app.program(rt))
        assert rt.switch.stats.snapshot().diffs == 0

    def test_fft_aligned_planes_no_diffs(self):
        sim, rt, pool = build_system(nprocs=4)
        # both a-planes (ny*nz*16) and b-planes (ny*nx*16) = 4096 B
        app = FFT3D(nx=16, ny=16, nz=16, iterations=2)
        rt.run(app.program(rt))
        assert rt.switch.stats.snapshot().diffs == 0
        assert app.verify(rtol=1e-7, atol=1e-9)

    def test_nbf_aligned_blocks_no_diffs(self):
        sim, rt, pool = build_system(nprocs=4)
        app = NBF(natoms=4096, npartners=4, iterations=3)  # blocks 8192 B
        rt.run(app.program(rt))
        assert rt.switch.stats.snapshot().diffs == 0

    def test_jacobi_unaligned_rows_produce_diffs(self):
        sim, rt, pool = build_system(nprocs=4)
        app = Jacobi(n=100, iterations=4)  # 800 B rows: unaligned
        rt.run(app.program(rt))
        assert rt.switch.stats.snapshot().diffs > 0

    def test_auto_protocol(self):
        assert auto_protocol(4096) is Protocol.SINGLE_WRITER
        assert auto_protocol(8192) is Protocol.SINGLE_WRITER
        assert auto_protocol(20000) is Protocol.MULTIPLE_WRITER


class TestJacobi:
    def test_boundary_rows_never_written(self):
        app = Jacobi(n=16, iterations=3)
        ref = app.reference()["grid"]
        init = app.initial_grid()
        np.testing.assert_array_equal(ref[0], init[0])
        np.testing.assert_array_equal(ref[-1], init[-1])
        np.testing.assert_array_equal(ref[:, 0], init[:, 0])

    def test_relaxation_converges_toward_smooth(self):
        app = Jacobi(n=16, iterations=200)
        ref = app.reference()["grid"]
        # after many iterations the interior varies smoothly
        assert np.abs(np.diff(ref[8])).max() < 0.2

    def test_rejects_tiny_grids(self):
        with pytest.raises(ValueError):
            Jacobi(n=2)


class TestGauss:
    def test_reference_is_lu_decomposition(self):
        app = Gauss(n=24)
        m0 = app.initial_matrix()
        m = app.reference()["m"]
        lower = np.tril(m, -1) + np.eye(24)
        upper = np.triu(m)
        np.testing.assert_allclose(lower @ upper, m0, rtol=1e-9, atol=1e-9)

    def test_partial_iterations(self):
        app = Gauss(n=16, iterations=4)
        assert app.reference()["m"].shape == (16, 16)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            Gauss(n=8, iterations=100)


class TestFFT3D:
    def test_single_iteration_is_fftn(self):
        app = FFT3D(nx=8, ny=4, nz=4, iterations=1)
        a0 = app.initial_a() * FFT3D.EVOLVE
        expected = np.fft.fftn(a0, norm="ortho")
        got = app.reference()["b"]
        # b[z, y, x] == fftn(a)[x, y, z]
        np.testing.assert_allclose(
            got, np.transpose(expected, (2, 1, 0)), rtol=1e-9, atol=1e-12
        )

    def test_values_stay_bounded(self):
        app = FFT3D(nx=4, ny=4, nz=4, iterations=50)
        b = app.reference()["b"]
        assert np.isfinite(b).all()
        assert np.abs(b).max() < 10.0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            FFT3D(nx=12, ny=4, nz=4)


class TestNBF:
    def test_partner_table_properties(self):
        app = NBF(natoms=512, npartners=8)
        table = app.partner_table()
        assert table.shape == (512, 8)
        assert table.min() >= 0 and table.max() < 512
        # no self-interaction
        base = np.arange(512)[:, None]
        assert not (table == base).any()

    def test_partner_table_is_local(self):
        app = NBF(natoms=10000, npartners=8, cutoff_locality=0.01)
        table = app.partner_table()
        base = np.arange(10000)[:, None]
        dist = np.abs(((table - base) + 5000) % 10000 - 5000)
        assert dist.max() <= 101

    def test_partner_table_cached_and_deterministic(self):
        a1 = NBF(natoms=128, npartners=4, seed=5)
        a2 = NBF(natoms=128, npartners=4, seed=5)
        np.testing.assert_array_equal(a1.partner_table(), a2.partner_table())
        assert a1.partner_table() is a1.partner_table()

    def test_pair_force_antisymmetric_and_bounded(self):
        x = np.linspace(-3, 3, 101)
        f = NBF.pair_force(x, np.zeros_like(x))
        np.testing.assert_allclose(f, -f[::-1], atol=1e-12)
        assert np.abs(f).max() <= 0.51


class TestWorkloads:
    def test_paper_presets_match_published_sizes(self):
        gauss = PAPER["gauss"].make()
        assert (gauss.n, gauss.iterations) == (3072, 3071)
        jacobi = PAPER["jacobi"].make()
        assert (jacobi.n, jacobi.iterations) == (2500, 1000)
        fft = PAPER["fft3d"].make()
        assert (fft.nx, fft.ny, fft.nz, fft.iterations) == (128, 64, 64, 100)
        nbf = PAPER["nbf"].make()
        assert (nbf.natoms, nbf.npartners, nbf.iterations) == (131072, 80, 100)

    def test_paper_shared_memory_same_order_as_published(self):
        """Allocated shared bytes against Table 1's MB column.

        Exact agreement is impossible from the paper alone (it does not
        say which arrays were shared or their precision); the deltas are
        documented in EXPERIMENTS.md.  This guards the order of magnitude.
        """
        for name, wl in PAPER.items():
            sim, rt, pool = build_system(nprocs=1, materialized=False)
            app = wl.make()
            app.allocate(rt)
            got_mb = app.shared_bytes() / 1e6
            ratio = got_mb / wl.paper_shared_mb
            assert 0.3 <= ratio <= 2.5, f"{name}: {got_mb:.1f} MB vs {wl.paper_shared_mb}"

