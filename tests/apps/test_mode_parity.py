"""Traced mode must generate the same protocol traffic as materialized.

The benches run traced (no payload bytes); their validity rests on the
two modes producing identical message streams.  The only permitted
difference: materialized diffs can be *smaller* (writing identical bytes
produces no run), never larger.
"""

import pytest

from repro.apps import TINY

from ..helpers import build_system


def traffic(name, materialized, nprocs=4):
    sim, rt, pool = build_system(nprocs=nprocs, materialized=materialized)
    app = TINY[name].make()
    app.do_collect = False  # identical drivers in both modes
    res = rt.run(app.program(rt))
    return res


@pytest.mark.parametrize("name", sorted(TINY))
def test_message_and_page_counts_identical(name):
    mat = traffic(name, True)
    tra = traffic(name, False)
    assert tra.traffic.messages == mat.traffic.messages
    assert tra.traffic.pages == mat.traffic.pages


@pytest.mark.parametrize("name", sorted(TINY))
def test_diff_counts_bounded_by_traced(name):
    mat = traffic(name, True)
    tra = traffic(name, False)
    assert mat.traffic.diffs <= tra.traffic.diffs


@pytest.mark.parametrize("name", sorted(TINY))
def test_runtime_close_between_modes(name):
    """Diff sizing differs between the modes (traced diffs cover the
    declared ranges contiguously; materialized diffs carry only changed
    bytes but fragment into per-run headers), which shifts diff service
    time — the runs must still agree within a modest band."""
    mat = traffic(name, True)
    tra = traffic(name, False)
    assert tra.runtime_seconds == pytest.approx(mat.runtime_seconds, rel=0.25)
