"""Tests for the post-run analysis utilities."""

import pytest

from repro.bench import (
    adaptation_timeline,
    breakdown_table,
    busiest_links,
    link_reports,
    link_table,
    make_jacobi,
    speedup_table,
    time_breakdown,
)
from repro.bench.harness import run_experiment


@pytest.fixture(scope="module")
def run():
    return run_experiment(lambda: make_jacobi(200, 40), nprocs=4)


@pytest.fixture(scope="module")
def adaptive_run():
    return run_experiment(
        lambda: make_jacobi(200, 30),
        nprocs=4,
        adaptive=True,
        events=lambda rt: rt.sim.schedule(0.05, lambda: rt.submit_leave(3, grace=60.0)),
    )


class TestTimeBreakdown:
    def test_every_process_present(self, run):
        breakdown = time_breakdown(run)
        assert [b.pid for b in breakdown] == [0, 1, 2, 3]

    def test_compute_and_stalls_recorded(self, run):
        for b in time_breakdown(run):
            assert b.compute > 0
            assert b.fault_wait > 0  # remote pages were fetched
            assert b.fault_wait < run.runtime_seconds

    def test_balanced_kernel_has_equal_compute_shares(self, run):
        computes = [b.compute for b in time_breakdown(run)]
        assert max(computes) < 1.1 * min(computes)

    def test_accounted_not_exceeding_runtime_grossly(self, run):
        for b in time_breakdown(run):
            assert b.accounted <= run.runtime_seconds * 1.5

    def test_overhead_fraction_bounds(self, run):
        for b in time_breakdown(run):
            frac = b.overhead_fraction(run.runtime_seconds)
            assert 0.0 <= frac <= 1.0

    def test_table_renders(self, run):
        text = breakdown_table(run)
        assert "pid" in text and "compute" in text
        assert "overhead" in text


class TestLinkReports:
    def test_all_links_reported(self, run):
        reports = link_reports(run)
        names = {r.name for r in reports}
        assert {"up0", "down0", "up3", "down3"} <= names

    def test_busiest_sorted(self, run):
        top = busiest_links(run, top=4)
        assert all(a.bytes >= b.bytes for a, b in zip(top, top[1:]))

    def test_utilization_in_unit_range(self, run):
        for r in link_reports(run):
            assert 0.0 <= r.utilization <= 1.0

    def test_master_links_busiest_during_leave(self, adaptive_run):
        """Leave drains concentrate on the master port (§5.4/§7)."""
        top = busiest_links(adaptive_run, top=2)
        assert any(l.name in ("down0", "up0") for l in top)

    def test_link_table_renders(self, run):
        assert "utilization" in link_table(run)


class TestSpeedupTable:
    def test_requires_baseline(self):
        with pytest.raises(ValueError):
            speedup_table({4: 2.0})

    def test_contents(self):
        text = speedup_table({1: 8.0, 4: 2.5})
        assert "3.20" in text  # speedup at 4
        assert "80.0%" in text  # efficiency


class TestAdaptationTimeline:
    def test_empty_without_events(self, run):
        assert adaptation_timeline(run) == []

    def test_records_leave(self, adaptive_run):
        timeline = adaptation_timeline(adaptive_run)
        assert len(timeline) == 1
        entry = timeline[0]
        assert entry["kind"] == "leave"
        assert entry["nodes"] == [3]
        assert entry["team"] == (4, 3)
        assert entry["cost"] > 0
        assert entry["drained_pages"] > 0
