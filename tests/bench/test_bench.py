"""Tests for the benchmark harness: paper data, calibration math,
adaptation-cost methodology, reporting."""

import pytest
from hypothesis import given, strategies as st

from repro.bench import (
    MICRO,
    MIGRATION_COST,
    TABLE1,
    TABLE2,
    adaptation_delay,
    average_nprocs,
    calibrated_rates,
    expected_1node_seconds,
    format_table,
    interpolated_reference,
    make_fft3d,
    make_gauss,
    make_jacobi,
    make_nbf,
    ratio_note,
    speedup,
)
from repro.bench.harness import run_experiment
from repro.bench.calibrate import fft_ops, gauss_ops, jacobi_ops, nbf_ops


class TestPaperData:
    def test_table1_complete(self):
        apps = {"gauss", "jacobi", "fft3d", "nbf"}
        assert {a for a, _ in TABLE1} == apps
        assert {n for _, n in TABLE1} == {1, 4, 8}

    def test_adaptive_overhead_nil_in_paper(self):
        """The published numbers themselves show <1% overhead."""
        for row in TABLE1.values():
            assert row.time_adaptive == pytest.approx(row.time_standard, rel=0.05)

    def test_one_node_rows_have_no_traffic(self):
        for (app, nodes), row in TABLE1.items():
            if nodes == 1:
                assert row.pages == row.messages == row.diffs == 0

    def test_table2_eight_always_cheaper_than_six(self):
        """The relation our Table 2 bench must reproduce holds in the
        published data itself."""
        for app in ("gauss", "jacobi", "fft3d", "nbf"):
            for leaver in ("end", "middle"):
                assert (
                    TABLE2[(app, leaver, 8)].seconds
                    < TABLE2[(app, leaver, 6)].seconds
                )

    def test_table2_worst_case_below_ten_seconds(self):
        assert max(c.seconds for c in TABLE2.values()) < 10.0

    def test_speedup_helper(self):
        assert speedup("gauss", 8) == pytest.approx(1404.20 / 243.46)

    def test_migration_costs_exceed_spawn_floor(self):
        for cost in MIGRATION_COST.values():
            assert cost > MICRO.spawn_min


class TestCalibration:
    def test_rates_positive_and_plausible(self):
        rates = calibrated_rates()
        assert set(rates) == {"gauss", "jacobi", "fft3d", "nbf"}
        for rate in rates.values():
            # 1999-era per-op costs: between 10 ns and 10 us
            assert 1e-8 < rate < 1e-5

    def test_paper_size_one_node_times_match_table1(self):
        """The calibration must invert exactly."""
        checks = [
            (make_jacobi(2500, 1000), TABLE1[("jacobi", 1)].time_standard),
            (make_gauss(3072), TABLE1[("gauss", 1)].time_standard),
            (make_fft3d(128, 64, 64, 100), TABLE1[("fft3d", 1)].time_standard),
            (make_nbf(131072, 80, 100), TABLE1[("nbf", 1)].time_standard),
        ]
        for app, published in checks:
            assert expected_1node_seconds(app) == pytest.approx(published, rel=1e-9)

    def test_simulated_1node_run_matches_calibration(self):
        res = run_experiment(lambda: make_jacobi(128, 4), nprocs=1)
        assert res.runtime_seconds == pytest.approx(
            expected_1node_seconds(make_jacobi(128, 4)), rel=0.02
        )

    @given(st.integers(2, 64), st.integers(1, 20))
    def test_op_counts_positive_monotonic(self, n, iters):
        assert jacobi_ops(n, iters) > 0
        assert gauss_ops(n, min(iters, n - 1)) >= 0
        assert nbf_ops(n, 4, iters) > 0
        assert jacobi_ops(n, iters + 1) > jacobi_ops(n, iters)


class TestAdaptationCostMethod:
    def test_interpolation_endpoints(self):
        times = {4: 10.0, 8: 5.0}
        assert interpolated_reference(times, 4) == 10.0
        assert interpolated_reference(times, 8) == 5.0

    def test_interpolation_in_rate_space(self):
        times = {4: 10.0, 8: 5.0}
        mid = interpolated_reference(times, 6)
        # rate interpolation: 1/t = (0.5/10 + 0.5/5) => t = 20/3
        assert mid == pytest.approx(20.0 / 3.0)

    def test_interpolation_clamps_outside(self):
        times = {4: 10.0, 8: 5.0}
        assert interpolated_reference(times, 2) == 10.0
        assert interpolated_reference(times, 12) == 5.0

    def test_interpolation_needs_data(self):
        with pytest.raises(ValueError):
            interpolated_reference({}, 4)

    @given(
        st.floats(1.0, 100.0),
        st.floats(1.0, 100.0),
        st.floats(4.0, 8.0),
    )
    def test_interpolation_between_bounds(self, t_lo, t_hi, avg):
        times = {4: max(t_lo, t_hi), 8: min(t_lo, t_hi)}
        ref = interpolated_reference(times, avg)
        lo, hi = min(times.values()), max(times.values())
        assert lo * (1 - 1e-9) <= ref <= hi * (1 + 1e-9)

    def test_average_nprocs_no_adaptations(self):
        res = run_experiment(lambda: make_jacobi(64, 2), nprocs=2)
        assert average_nprocs(res, 2) == 2.0

    def test_adaptation_delay_zero_without_events(self):
        res = run_experiment(lambda: make_jacobi(64, 2), nprocs=2, adaptive=True)
        per, total = adaptation_delay(res, {2: res.runtime_seconds}, 2)
        assert per == total == 0.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_format_large_numbers_with_commas(self):
        text = format_table(["x"], [[1234567]])
        assert "1,234,567" in text

    def test_ratio_note(self):
        note = ratio_note(2.0, 4.0)
        assert "x0.50" in note
        assert ratio_note(1.0, 0) == "1.00 (paper: 0)"


class TestHarness:
    def test_run_experiment_deterministic(self):
        def once():
            res = run_experiment(lambda: make_gauss(64, 20), nprocs=3)
            return res.runtime_seconds, res.traffic.bytes, res.traffic.messages

        assert once() == once()

    def test_traced_run_has_no_app_payloads(self):
        res = run_experiment(lambda: make_jacobi(64, 2), nprocs=2, materialized=False)
        assert res.app.final == {}  # collect skipped in traced mode

    def test_materialized_run_verifies(self):
        res = run_experiment(
            lambda: make_jacobi(48, 3), nprocs=2, materialized=True
        )
        assert res.app.verify(rtol=1e-7, atol=1e-9)

    def test_events_hook_called(self):
        seen = []
        run_experiment(
            lambda: make_jacobi(64, 2),
            nprocs=2,
            adaptive=True,
            events=lambda rt: seen.append(rt),
        )
        assert len(seen) == 1
