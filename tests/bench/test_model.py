"""The closed-form cost models must agree with the simulation."""

import pytest

from repro.bench import (
    LeaveCostModel,
    MigrationCostModel,
    make_jacobi,
    predicted_max_link_bytes,
)
from repro.bench.harness import run_experiment
from repro.config import SystemConfig


def leave_record(n, nprocs=8):
    res = run_experiment(
        lambda: make_jacobi(n, 16),
        nprocs=nprocs,
        adaptive=True,
        events=lambda rt: rt.sim.schedule(
            0.2, lambda: rt.submit_leave(rt.team.node_of(nprocs - 1), grace=1e9)
        ),
    )
    return res.adapt_records[0]


class TestLeaveCostModel:
    @pytest.mark.parametrize("n", [352, 704, 1408])
    def test_predicts_simulated_adaptation_cost(self, n):
        rec = leave_record(n)
        model = LeaveCostModel(SystemConfig())
        predicted = model.adaptation_seconds(rec.drained_pages)
        assert predicted == pytest.approx(rec.duration, rel=0.25), (
            f"n={n}: model {predicted:.4f}s vs simulated {rec.duration:.4f}s"
        )

    def test_predicts_max_link_bytes(self):
        rec = leave_record(704)
        predicted = predicted_max_link_bytes(rec.drained_pages, SystemConfig())
        assert predicted == pytest.approx(rec.max_link_bytes, rel=0.10)

    def test_zero_pages_zero_drain(self):
        model = LeaveCostModel(SystemConfig())
        assert model.drain_seconds(0) == 0.0

    def test_linear_in_pages(self):
        model = LeaveCostModel(SystemConfig())
        d100 = model.drain_seconds(100)
        d200 = model.drain_seconds(200)
        # slope dominates the fixed fill for these sizes
        assert d200 / d100 == pytest.approx(2.0, rel=0.05)


class TestMigrationCostModel:
    def test_matches_simulated_migration(self):
        res = run_experiment(
            lambda: make_jacobi(700, 8),
            nprocs=3,
            adaptive=True,
            events=lambda rt: rt.sim.schedule(
                0.4, lambda: rt.submit_leave(2, grace=0.1)
            ),
        )
        mig = res.migrations[0]
        model = MigrationCostModel(SystemConfig())
        lo = model.seconds(mig.image_bytes, spawn_u=0.0)
        hi = model.seconds(mig.image_bytes, spawn_u=1.0)
        assert lo <= mig.total_seconds <= hi
