"""Tests for the wall-clock performance benchmark suite (repro.bench.perf)."""

import json

import pytest

from repro.bench.perf import (
    SCHEMA,
    PerfScenario,
    calibrate_spin,
    compare_to_baseline,
    load_report,
    micro_notice_apply,
    micro_plan_lookup,
    run_scenario,
    scenarios,
    write_report,
)


def entry(score):
    return {"normalized_score": score}


def report(scores):
    return {"schema": SCHEMA, "results": {k: entry(v) for k, v in scores.items()}}


class TestCompareToBaseline:
    def test_no_regression(self):
        base = report({"a": 1.0, "b": 0.5})
        new = report({"a": 1.1, "b": 0.45})  # b drops 10% < 30% gate
        assert compare_to_baseline(new, base, max_regression=0.30) == []

    def test_regression_detected(self):
        base = report({"a": 1.0})
        new = report({"a": 0.5})
        regs = compare_to_baseline(new, base, max_regression=0.30)
        assert len(regs) == 1
        name, old, cur, drop = regs[0]
        assert name == "a" and old == 1.0 and cur == 0.5
        assert drop == pytest.approx(0.5)

    def test_boundary_not_a_regression(self):
        """A drop of exactly max_regression passes (strict inequality)."""
        base = report({"a": 1.0})
        new = report({"a": 0.75})  # drop == 0.25 exactly in binary FP
        assert compare_to_baseline(new, base, max_regression=0.25) == []

    def test_scenario_missing_from_baseline_ignored(self):
        base = report({"a": 1.0})
        new = report({"a": 1.0, "brand-new": 0.001})
        assert compare_to_baseline(new, base) == []

    def test_scenario_missing_from_report_ignored(self):
        base = report({"a": 1.0, "retired": 1.0})
        new = report({"a": 1.0})
        assert compare_to_baseline(new, base) == []

    def test_nonpositive_baseline_ignored(self):
        base = report({"a": 0.0})
        new = report({"a": 0.0})
        assert compare_to_baseline(new, base) == []

    def test_improvement_never_flags(self):
        base = report({"a": 0.1})
        new = report({"a": 10.0})
        assert compare_to_baseline(new, base, max_regression=0.0) == []


class TestReportIO:
    def test_write_load_roundtrip(self, tmp_path):
        rep = report({"a": 1.25})
        path = tmp_path / "BENCH_perf.json"
        write_report(rep, str(path))
        assert load_report(str(path)) == rep
        # Stable serialization: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == rep


class TestScenarios:
    def test_default_and_quick_presets(self):
        default = scenarios()
        quick = scenarios(quick=True)
        assert [s.name for s in default] == ["jacobi-8", "gauss-8"]
        assert [s.name for s in quick] == ["jacobi-8-quick", "gauss-8-quick"]
        assert all(isinstance(s, PerfScenario) and s.nprocs == 8 for s in default + quick)

    def test_paper_preset_appends_table1_jacobi(self):
        names = [s.name for s in scenarios(paper=True)]
        assert names[-1] == "jacobi-8-paper"


class TestMeasurement:
    def test_calibrate_spin_positive(self):
        assert calibrate_spin(2_000) > 0

    def test_micro_benchmarks_positive(self):
        assert micro_notice_apply(2_000) > 0
        assert micro_plan_lookup(2_000) > 0

    def test_run_scenario_fields_consistent(self):
        from repro.exec import ScenarioSpec

        spec = ScenarioSpec(kernel="jacobi", params={"n": 48, "iterations": 3},
                            nprocs=4, calibrated=True)
        entry = run_scenario(PerfScenario("tiny", spec))
        for key in (
            "wall_seconds", "sim_seconds", "events", "events_per_sec",
            "sim_per_wall", "messages", "pages", "diffs",
        ):
            assert key in entry
        assert entry["events"] > 0 and entry["wall_seconds"] > 0
        assert entry["events_per_sec"] == pytest.approx(
            entry["events"] / entry["wall_seconds"]
        )
        assert entry["sim_per_wall"] == pytest.approx(
            entry["sim_seconds"] / entry["wall_seconds"]
        )
