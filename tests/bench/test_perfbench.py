"""Tests for the wall-clock performance benchmark suite (repro.bench.perf)."""

import json

import pytest

from repro.bench.perf import (
    SCHEMA,
    PerfScenario,
    calibrate_spin,
    compare_to_baseline,
    load_report,
    micro_notice_apply,
    micro_plan_lookup,
    ratio_confidence_interval,
    run_scenario,
    run_scenario_paired,
    scenarios,
    write_report,
)


def entry(score, samples=None):
    e = {"normalized_score": score}
    if samples is not None:
        e["samples"] = list(samples)
    return e


def report(scores):
    return {"schema": SCHEMA, "results": {k: entry(v) for k, v in scores.items()}}


def sampled_report(sample_map):
    results = {
        k: entry(sum(v) / len(v), samples=v) for k, v in sample_map.items()
    }
    return {"schema": SCHEMA, "results": results}


class TestCompareToBaseline:
    def test_no_regression(self):
        base = report({"a": 1.0, "b": 0.5})
        new = report({"a": 1.1, "b": 0.45})  # b drops 10% < 30% gate
        assert compare_to_baseline(new, base, max_regression=0.30) == []

    def test_regression_detected(self):
        base = report({"a": 1.0})
        new = report({"a": 0.5})
        regs = compare_to_baseline(new, base, max_regression=0.30)
        assert len(regs) == 1
        name, old, cur, drop = regs[0]
        assert name == "a" and old == 1.0 and cur == 0.5
        assert drop == pytest.approx(0.5)

    def test_boundary_not_a_regression(self):
        """A drop of exactly max_regression passes (strict inequality)."""
        base = report({"a": 1.0})
        new = report({"a": 0.75})  # drop == 0.25 exactly in binary FP
        assert compare_to_baseline(new, base, max_regression=0.25) == []

    def test_scenario_missing_from_baseline_ignored(self):
        base = report({"a": 1.0})
        new = report({"a": 1.0, "brand-new": 0.001})
        assert compare_to_baseline(new, base) == []

    def test_scenario_missing_from_report_ignored(self):
        base = report({"a": 1.0, "retired": 1.0})
        new = report({"a": 1.0})
        assert compare_to_baseline(new, base) == []

    def test_nonpositive_baseline_ignored(self):
        base = report({"a": 0.0})
        new = report({"a": 0.0})
        assert compare_to_baseline(new, base) == []

    def test_improvement_never_flags(self):
        base = report({"a": 0.1})
        new = report({"a": 10.0})
        assert compare_to_baseline(new, base, max_regression=0.0) == []


class TestRatioConfidenceInterval:
    def test_requires_two_samples_each_side(self):
        assert ratio_confidence_interval([1.0], [1.0, 1.1]) is None
        assert ratio_confidence_interval([1.0, 1.1], [1.0]) is None
        assert ratio_confidence_interval([], []) is None
        # Non-positive samples are discarded before the count check.
        assert ratio_confidence_interval([1.0, 0.0], [1.0, 1.1]) is None

    def test_identical_samples_give_point_interval(self):
        lo, hi = ratio_confidence_interval([2.0, 2.0], [1.0, 1.0])
        assert lo == pytest.approx(2.0) and hi == pytest.approx(2.0)

    def test_interval_brackets_true_ratio(self):
        new = [0.50, 0.52, 0.48, 0.51]
        base = [1.00, 1.04, 0.96, 1.02]
        lo, hi = ratio_confidence_interval(new, base)
        assert lo < 0.5 < hi
        assert hi < 0.6  # tight samples resolve a clear 2x drop

    def test_noise_widens_interval(self):
        tight = ratio_confidence_interval([1.0, 1.01], [1.0, 1.01])
        loose = ratio_confidence_interval([0.5, 2.0], [0.5, 2.0])
        assert (tight[1] - tight[0]) < (loose[1] - loose[0])


class TestConfidenceGate:
    def test_resolved_regression_flags(self):
        base = sampled_report({"a": [1.00, 1.02, 0.98]})
        new = sampled_report({"a": [0.50, 0.51, 0.49]})
        regs = compare_to_baseline(new, base, max_regression=0.10)
        assert len(regs) == 1
        name, old, cur, drop = regs[0]
        assert name == "a"
        assert drop == pytest.approx(0.5, abs=0.02)

    def test_noisy_drop_within_interval_passes(self):
        # Point scores drop ~35% (would fail the old 20% point gate), but
        # the samples are too noisy to resolve the drop at 95% confidence.
        base = sampled_report({"a": [0.6, 1.0, 1.6]})
        new = sampled_report({"a": [0.4, 0.65, 1.05]})
        assert compare_to_baseline(new, base, max_regression=0.10) == []

    def test_small_confident_drop_within_allowance_passes(self):
        base = sampled_report({"a": [1.00, 1.01, 0.99]})
        new = sampled_report({"a": [0.95, 0.96, 0.94]})  # clear 5% drop
        assert compare_to_baseline(new, base, max_regression=0.10) == []

    def test_falls_back_to_point_compare_without_samples(self):
        base = report({"a": 1.0})  # e.g. a baseline from an older schema
        new = sampled_report({"a": [0.5, 0.51, 0.49]})
        regs = compare_to_baseline(new, base, max_regression=0.30)
        assert len(regs) == 1 and regs[0][0] == "a"

    def test_improvement_with_samples_never_flags(self):
        base = sampled_report({"a": [1.0, 1.01, 0.99]})
        new = sampled_report({"a": [2.0, 2.02, 1.98]})
        assert compare_to_baseline(new, base, max_regression=0.0) == []


class TestPairedMeasurement:
    def test_run_scenario_paired_records_samples(self):
        from repro.exec import ScenarioSpec

        spec = ScenarioSpec(kernel="jacobi", params={"n": 48, "iterations": 3},
                            nprocs=4, calibrated=True)
        result, wall, samples = run_scenario_paired(spec, repeats=2)
        assert result.events > 0 and wall > 0
        assert len(samples) == 2
        assert all(s > 0 for s in samples)


class TestReportIO:
    def test_write_load_roundtrip(self, tmp_path):
        rep = report({"a": 1.25})
        path = tmp_path / "BENCH_perf.json"
        write_report(rep, str(path))
        assert load_report(str(path)) == rep
        # Stable serialization: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == rep


class TestScenarios:
    def test_default_and_quick_presets(self):
        default = scenarios()
        quick = scenarios(quick=True)
        assert [s.name for s in default] == ["jacobi-8", "gauss-8"]
        assert [s.name for s in quick] == [
            "jacobi-8-quick", "gauss-8-quick", "gauss-32-quick",
            "gauss-64-quick",
        ]
        assert all(isinstance(s, PerfScenario) for s in default + quick)
        assert all(s.nprocs == 8 for s in default)
        assert quick[-1].nprocs == 64

    def test_paper_preset_appends_table1_jacobi(self):
        names = [s.name for s in scenarios(paper=True)]
        assert names[-1] == "jacobi-8-paper"


class TestMeasurement:
    def test_calibrate_spin_positive(self):
        assert calibrate_spin(2_000) > 0

    def test_micro_benchmarks_positive(self):
        assert micro_notice_apply(2_000) > 0
        assert micro_plan_lookup(2_000) > 0

    def test_run_scenario_fields_consistent(self):
        from repro.exec import ScenarioSpec

        spec = ScenarioSpec(kernel="jacobi", params={"n": 48, "iterations": 3},
                            nprocs=4, calibrated=True)
        entry = run_scenario(PerfScenario("tiny", spec))
        for key in (
            "wall_seconds", "sim_seconds", "events", "events_per_sec",
            "sim_per_wall", "messages", "pages", "diffs",
        ):
            assert key in entry
        assert entry["events"] > 0 and entry["wall_seconds"] > 0
        assert entry["events_per_sec"] == pytest.approx(
            entry["events"] / entry["wall_seconds"]
        )
        assert entry["sim_per_wall"] == pytest.approx(
            entry["sim_seconds"] / entry["wall_seconds"]
        )
