"""The scaling sweep: report shape, determinism, and the perfbench hook."""

import json

from repro.bench.perf import compare_to_baseline
from repro.bench.scale import (
    SCALE_SCHEMA,
    format_scale_table,
    run_scale,
    run_scale_point,
    write_scale_report,
)


class TestScalePoint:
    def test_entry_shape(self):
        e = run_scale_point(8, "flat", "star", quick=True)
        for key in (
            "sim_seconds", "events_per_sec", "fork_join_mean_s",
            "max_link_busy_s", "master_uplink_busy_s", "max_link_bytes",
            "digest",
        ):
            assert key in e
        assert e["nodes"] == 8 and e["sync"] == "flat"
        assert e["sim_seconds"] > 0 and e["fork_join_mean_s"] > 0
        assert e["max_link_busy_s"] >= e["master_uplink_busy_s"] > 0

    def test_modelled_outputs_deterministic(self):
        a = run_scale_point(8, "tree", "star", quick=True)
        b = run_scale_point(8, "tree", "star", quick=True)
        assert a["digest"] == b["digest"]
        assert a["sim_seconds"] == b["sim_seconds"]
        assert a["max_link_busy_s"] == b["max_link_busy_s"]

    def test_flat_and_tree_model_differently(self):
        flat = run_scale_point(8, "flat", "star", quick=True)
        tree = run_scale_point(8, "tree", "star", quick=True)
        assert flat["digest"] != tree["digest"]

    def test_fattree_charges_trunk_hops(self):
        """With a radix splitting the team, cross-leaf latency appears."""
        star = run_scale_point(8, "flat", "star", quick=True)
        fat = run_scale_point(8, "flat", "fattree", quick=True)
        # 8 nodes fit one radix-8 leaf, so intra-leaf traffic matches the
        # star model exactly.
        assert fat["sim_seconds"] == star["sim_seconds"]


class TestScaleReport:
    def test_report_and_table(self, tmp_path):
        report = run_scale(nodes=[8], quick=True, gate_scenario=False)
        assert report["schema"] == SCALE_SCHEMA
        assert len(report["scale"]) == 4  # 2 syncs x 2 topologies
        table = format_scale_table(report)
        assert "flat" in table and "tree" in table and "fattree" in table
        assert "reduction" in table
        path = tmp_path / "scale.json"
        write_scale_report(report, str(path))
        assert json.loads(path.read_text())["schema"] == SCALE_SCHEMA

    def test_gate_entry_feeds_perfbench_compare(self):
        """The committed curve doubles as a perfbench --compare baseline."""
        baseline = {
            "results": {
                "gauss-32-quick": {
                    "normalized_score": 1.0,
                    "samples": [1.0, 1.0, 1.0],
                }
            }
        }
        # identical report: no regression flagged
        assert compare_to_baseline(baseline, baseline, 0.10) == []
        # a resolved collapse is flagged through the sample CI path
        bad = {
            "results": {
                "gauss-32-quick": {
                    "normalized_score": 0.1,
                    "samples": [0.1, 0.1001, 0.0999],
                }
            }
        }
        flagged = compare_to_baseline(bad, baseline, 0.10)
        assert [name for name, *_ in flagged] == ["gauss-32-quick"]

    def test_committed_curve_shows_tree_win(self):
        """benchmarks/BENCH_scale_pr8.json: the headline claim, pinned —
        tree sync cuts master-uplink busy time at 64 and 128 nodes."""
        with open("benchmarks/BENCH_scale_pr8.json") as fh:
            report = json.load(fh)
        scale = report["scale"]
        for n in (64, 128):
            flat = scale[f"jacobi-{n}-flat-star"]["master_uplink_busy_s"]
            tree = scale[f"jacobi-{n}-tree-star"]["master_uplink_busy_s"]
            assert tree < 0.5 * flat, (n, flat, tree)
        assert "gauss-32-quick" in report["results"]
        assert report["results"]["gauss-32-quick"]["samples"]
