"""Tests for nodes, pools, and adapt-event daemons."""

import pytest

from repro.cluster import (
    DaySchedule,
    EventScript,
    NodePool,
    OwnerSchedule,
    PeriodicAlternator,
    PoissonOwnerActivity,
    ScriptedEvent,
    select_pid,
)
from repro.errors import AdaptationError, NodeUnavailableError
from repro.network import Switch
from repro.simcore import Simulator

from ..helpers import build_adaptive
from ..core.test_adaptive_runtime import iterative_program


class TestNode:
    def _node(self, speed=1.0):
        sim = Simulator()
        switch = Switch(sim)
        pool = NodePool(sim, switch)
        return sim, pool.add_node(speed)

    def test_compute_charges_time(self):
        sim, node = self._node()

        def worker():
            yield from node.compute(2.0)

        sim.process(worker())
        sim.run()
        assert sim.now == 2.0
        assert node.busy_time == 2.0

    def test_speed_scales_compute(self):
        sim, node = self._node(speed=2.0)

        def worker():
            yield from node.compute(2.0)

        sim.process(worker())
        sim.run()
        assert sim.now == 1.0

    def test_multiplexing_stretches_compute(self):
        sim, node = self._node()
        node.add_process()
        node.add_process()

        def worker():
            yield from node.compute(1.0)

        sim.process(worker())
        sim.run()
        assert sim.now == 2.0

    def test_service_serializes_per_node(self):
        sim, node = self._node()
        spans = []

        def handler(i):
            yield from node.service(0.1)
            spans.append((i, sim.now))

        for i in range(3):
            sim.process(handler(i))
        sim.run()
        assert [t for _, t in spans] == pytest.approx([0.1, 0.2, 0.3])

    def test_negative_compute_rejected(self):
        sim, node = self._node()
        with pytest.raises(ValueError):
            list(node.compute(-1.0))

    def test_remove_without_process_raises(self):
        sim, node = self._node()
        with pytest.raises(RuntimeError):
            node.remove_process()

    def test_withdraw_and_rejoin(self):
        sim, node = self._node()
        node.withdraw()
        assert not node.in_pool and not node.nic.attached
        node.rejoin()
        assert node.in_pool and node.nic.attached


class TestPool:
    def test_add_and_lookup(self):
        sim = Simulator()
        pool = NodePool(sim, Switch(sim))
        nodes = pool.add_nodes(3)
        assert len(pool) == 3
        assert pool.node(1) is nodes[1]
        with pytest.raises(NodeUnavailableError):
            pool.node(9)

    def test_available_and_idle(self):
        sim = Simulator()
        pool = NodePool(sim, Switch(sim))
        nodes = pool.add_nodes(3)
        nodes[0].add_process()
        nodes[2].withdraw()
        assert [n.node_id for n in pool.available_nodes()] == [0, 1]
        assert [n.node_id for n in pool.idle_nodes()] == [1]


class TestSelectPid:
    def test_end(self):
        assert select_pid(8, "end") == 7

    def test_middle(self):
        assert select_pid(8, "middle") == 4
        assert select_pid(7, "middle") == 3

    def test_explicit(self):
        assert select_pid(8, 3) == 3

    def test_master_not_selectable(self):
        with pytest.raises(AdaptationError):
            select_pid(8, 0)

    def test_unknown_selector(self):
        with pytest.raises(AdaptationError):
            select_pid(8, "first")


class TestEventScript:
    def test_script_fires_in_order(self):
        sim, rt, pool = build_adaptive(nprocs=4)
        prog = iterative_program(rt, n_iter=40)
        script = EventScript(
            rt,
            [
                ScriptedEvent(0.10, "leave", 3),
                ScriptedEvent(0.05, "leave", 2, grace=9.0),
            ],
        )
        script.install()
        res = rt.run(prog)
        assert [e.node_id for e in script.submitted] == [2, 3]
        assert rt.team.nprocs == 2
        assert res.adaptations == 2


class TestPeriodicAlternator:
    def test_alternating_leave_join_end(self):
        sim, rt, pool = build_adaptive(nprocs=4)
        prog = iterative_program(rt, n_iter=120, compute=0.02)
        alt = PeriodicAlternator(rt, selector="end", gap=0.2, max_events=4)
        alt.install()
        res = rt.run(prog)
        actions = [a for _, a, _, _ in alt.events]
        assert actions == ["leave", "join", "leave", "join"]
        assert res.adaptations == 4
        assert rt.team.nprocs == 4  # back to full strength

    def test_alternator_middle_targets_middle_pid(self):
        sim, rt, pool = build_adaptive(nprocs=4, trace=True)
        prog = iterative_program(rt, n_iter=120, compute=0.02)
        alt = PeriodicAlternator(rt, selector="middle", gap=0.2, max_events=2)
        alt.install()
        rt.run(prog)
        # the first leave targeted pid 2's node (= node 2 initially)
        assert alt.events[0][2] == 2

    def test_at_most_one_event_per_adaptation_point(self):
        sim, rt, pool = build_adaptive(nprocs=4)
        prog = iterative_program(rt, n_iter=150, compute=0.02)
        alt = PeriodicAlternator(rt, selector="end", gap=0.1, max_events=6)
        alt.install()
        res = rt.run(prog)
        for record in res.adapt_log:
            assert len(record.joins) + len(record.leaves) + len(record.urgent_leaves) == 1


class TestOwnerSchedule:
    def test_presence_window_leaves_then_rejoins(self):
        sim, rt, pool = build_adaptive(nprocs=4)
        prog = iterative_program(rt, n_iter=200, compute=0.02)
        sched = OwnerSchedule(rt, [DaySchedule(node_id=3, present=((0.2, 1.5),))])
        sched.install()
        res = rt.run(prog)
        actions = [(a, n) for _, a, n in sched.fired]
        assert actions == [("leave", 3), ("join", 3)]
        leaves = [r for r in res.adapt_log if r.leaves or r.urgent_leaves]
        joins = [r for r in res.adapt_log if r.joins]
        assert leaves and joins

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            DaySchedule(node_id=1, present=((5.0, 2.0),)).transitions()


class TestPoissonOwnerActivity:
    def test_generates_leave_join_stream(self):
        sim, rt, pool = build_adaptive(nprocs=4)
        prog = iterative_program(rt, n_iter=400, compute=0.02)
        daemon = PoissonOwnerActivity(
            rt, node_ids=[2, 3], mean_away=1.0, mean_present=0.5, grace=60.0
        )
        daemon.install()
        res = rt.run(prog)
        assert len(daemon.fired) >= 2
        assert res.adaptations >= 2

    def test_bad_means_rejected(self):
        sim, rt, pool = build_adaptive(nprocs=2)
        with pytest.raises(ValueError):
            PoissonOwnerActivity(rt, [1], mean_away=0, mean_present=1)

    def test_deterministic_given_seed(self):
        def one_run():
            sim, rt, pool = build_adaptive(nprocs=4)
            prog = iterative_program(rt, n_iter=200, compute=0.02)
            daemon = PoissonOwnerActivity(
                rt, node_ids=[3], mean_away=1.0, mean_present=0.5, grace=60.0
            )
            daemon.install()
            rt.run(prog)
            return daemon.fired

        assert one_run() == one_run()
